//! Quickstart: enumerate every instruction-set-extension candidate of a small basic
//! block and print the best one.
//!
//! Run with `cargo run --example quickstart`.

use ise_enum::{enumerate_cuts, estimate_merit, Constraints, EnumContext};
use ise_graph::{DotOptions, LatencyModel};
use ise_workloads::expr::compile_block;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The sum-of-absolute-differences inner step, a classic ISE candidate.
    let dfg = compile_block(
        "sad-step",
        "d = a - b; \
         m = d >> 31; \
         abs = (d ^ m) - m; \
         acc2 = acc + abs; \
         out acc2;",
    )?;
    println!(
        "basic block `{}`: {} nodes, {} live-ins, {} live-outs",
        dfg.name(),
        dfg.len(),
        dfg.external_inputs().len(),
        dfg.external_outputs().len()
    );

    // The paper's standard constraints: 4 register-file read ports, 2 write ports.
    let constraints = Constraints::new(4, 2)?;
    let result = enumerate_cuts(&dfg, &constraints)?;
    println!(
        "enumeration: {} valid convex cuts ({} candidates examined, {} dominator-tree runs)",
        result.cuts.len(),
        result.stats.candidates_checked,
        result.stats.dominator_runs
    );

    // Rank the candidates with the latency-based merit model.
    let ctx = EnumContext::new(dfg.clone());
    let model = LatencyModel::default();
    let mut ranked: Vec<_> = result
        .cuts
        .iter()
        .map(|cut| (estimate_merit(&ctx, cut, &model, 4, 2), cut))
        .collect();
    ranked.sort_by_key(|(merit, _)| std::cmp::Reverse(merit.saved_cycles));

    for (rank, (merit, cut)) in ranked.iter().take(5).enumerate() {
        println!(
            "  #{rank}: {cut} — {} software cycles -> {} custom-instruction cycles ({} saved, {:.2}x)",
            merit.software_cycles,
            merit.hardware_cycles,
            merit.saved_cycles,
            merit.speedup()
        );
    }

    if let Some((_, best)) = ranked.first() {
        let dot = DotOptions::new().with_cut(best.body().clone()).render(&dfg);
        println!("\nGraphviz rendering of the best candidate:\n{dot}");
    }
    Ok(())
}
