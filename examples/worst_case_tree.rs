//! The Figure 4 worst case in miniature: on tree-shaped data-flow graphs the pruned
//! exhaustive baseline explodes while the polynomial algorithm stays tame.
//!
//! Run with `cargo run --release --example worst_case_tree`.

use std::time::Instant;

use ise_enum::{baseline_cuts_bounded, incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::tree::TreeDfgBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let constraints = Constraints::new(4, 2)?;
    let budget = Some(1_000_000);

    println!(
        "depth  nodes  poly-cuts  poly-nodes  baseline-cuts  baseline-nodes  baseline-complete"
    );
    for depth in 3..=5 {
        let dfg = TreeDfgBuilder::new(depth).build();
        let ctx = EnumContext::new(dfg.clone());

        let start = Instant::now();
        let poly = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        let poly_time = start.elapsed();

        let start = Instant::now();
        let base = baseline_cuts_bounded(&ctx, &constraints, budget);
        let base_time = start.elapsed();

        let complete = budget.is_none_or(|limit| base.stats.search_nodes < limit);
        println!(
            "{depth:5}  {:5}  {:9}  {:10}  {:13}  {:14}  {}",
            dfg.len(),
            poly.stats.valid_cuts,
            poly.stats.search_nodes,
            base.stats.valid_cuts,
            base.stats.search_nodes,
            if complete { "yes" } else { "NO (truncated)" }
        );
        eprintln!(
            "  (poly {:.3}s, baseline {:.3}s{})",
            poly_time.as_secs_f64(),
            base_time.as_secs_f64(),
            if complete {
                ""
            } else {
                ", baseline stopped at its search budget"
            }
        );
    }
    Ok(())
}
