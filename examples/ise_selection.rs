//! End-to-end instruction-set extension flow over a whole (synthetic) application:
//! enumerate candidates per basic block, estimate their merit, and greedily select a
//! small set of custom instructions — the downstream use the paper motivates in §1 and
//! §7 ("speedups up to 6x").
//!
//! Run with `cargo run --release --example ise_selection`.

use ise_enum::{incremental_cuts, select_ises, Constraints, EnumContext, PruningConfig};
use ise_graph::LatencyModel;
use ise_workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let constraints = Constraints::new(4, 2)?;
    let pruning = PruningConfig::all();
    let model = LatencyModel::default();

    // A small MiBench-like "application": 12 basic blocks, capped in size so the
    // example finishes quickly (use the ise-bench harness for full-scale runs).
    let blocks: Vec<_> = suite(12, 123)
        .into_iter()
        .filter(|b| b.dfg.len() <= 90)
        .collect();

    println!("block  nodes  candidates  selected  saved-cycles  speedup");
    let mut total_before = 0u32;
    let mut total_after = 0u32;
    for block in &blocks {
        let ctx = EnumContext::new(block.dfg.clone());
        let result = incremental_cuts(&ctx, &constraints, &pruning);
        let selection = select_ises(&ctx, &result.cuts, &model, 4, 2, 4);
        println!(
            "{:5}  {:5}  {:10}  {:8}  {:12}  {:6.2}x",
            block.id,
            block.dfg.len(),
            result.cuts.len(),
            selection.chosen.len(),
            selection.total_saved_cycles,
            selection.block_speedup()
        );
        total_before += selection.block_software_cycles;
        total_after += selection.block_software_cycles
            - selection
                .total_saved_cycles
                .min(selection.block_software_cycles);
    }
    if total_after > 0 {
        println!(
            "\nwhole-application estimate: {total_before} cycles -> {total_after} cycles \
             ({:.2}x speedup from custom instructions)",
            f64::from(total_before) / f64::from(total_after)
        );
    }
    Ok(())
}
