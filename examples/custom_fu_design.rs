//! Designing a custom functional unit under microarchitectural restrictions.
//!
//! This example mirrors the paper's motivation (§1, §3): the custom functional unit has
//! no memory port, so loads and stores are forbidden inside the instruction; the target
//! accelerator is depth-limited (as in CCA-style accelerators, §5.3); and we compare an
//! unconstrained enumeration against connected-only and depth-limited enumerations of
//! the same crypto-style basic block.
//!
//! Run with `cargo run --example custom_fu_design`.

use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::expr::compile_block;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One round of a toy ARX (add-rotate-xor) cipher with a key load in the middle:
    // the load partitions the block, exactly the situation §5.3 exploits for pruning.
    let dfg = compile_block(
        "arx-round",
        "t1 = a + b; \
         t2 = t1 ^ (c << 7); \
         k  = load(kp + 4); \
         t3 = t2 + k; \
         t4 = t3 ^ (t1 >> 3); \
         t5 = t4 + c; \
         store(sp, t5); \
         out t4;",
    )?;
    println!(
        "block `{}`: {} nodes ({} forbidden memory operations)",
        dfg.name(),
        dfg.len(),
        dfg.forbidden().len()
    );

    let ctx = EnumContext::new(dfg);
    let pruning = PruningConfig::all();

    let scenarios = [
        ("4-in/2-out, unrestricted", Constraints::new(4, 2)?),
        (
            "4-in/2-out, connected only",
            Constraints::new(4, 2)?.connected_only(true),
        ),
        (
            "4-in/2-out, depth <= 2",
            Constraints::new(4, 2)?.with_max_depth(2),
        ),
        ("2-in/1-out (narrow register file)", Constraints::new(2, 1)?),
    ];

    for (label, constraints) in scenarios {
        let result = incremental_cuts(&ctx, &constraints, &pruning);
        let largest = result
            .cuts
            .iter()
            .map(ise_enum::Cut::len)
            .max()
            .unwrap_or(0);
        println!(
            "{label:38} -> {:4} candidates, largest spans {largest} operations, \
             {} search nodes",
            result.cuts.len(),
            result.stats.search_nodes
        );
        // The custom functional unit has no memory port: no candidate may contain the
        // load or the store.
        assert!(result
            .cuts
            .iter()
            .all(|cut| cut.body().iter().all(|v| !ctx.rooted().is_forbidden(v))));
    }
    Ok(())
}
