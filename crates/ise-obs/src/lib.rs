//! Unified observability for the ISE reproduction stack.
//!
//! This crate provides the [`Recorder`] trait — the single instrumentation
//! surface used by the enumeration engine, the work-stealing pool, the
//! canonicalization memo, the serve caches, and the daemon — together with
//! two implementations:
//!
//! * [`NoopRecorder`]: every method is a no-op. Call sites hold an
//!   `Option<&dyn Recorder>` (one branch when disabled) or a pre-registered
//!   [`Counter`] handle (one null check when disabled), so the disabled path
//!   costs at most a predictable branch per event. The `obs_overhead` bench
//!   asserts the end-to-end cost stays within 1% of an uninstrumented run.
//! * [`MetricsRegistry`]: lock-striped named counters, gauges, power-of-two
//!   bucketed histograms, monotonic span timers feeding a bounded
//!   Chrome-trace event buffer, and renderers for Prometheus text exposition
//!   ([`MetricsRegistry::render_prometheus`]) and Chrome trace-event JSON
//!   ([`MetricsRegistry::render_chrome_trace`]).
//!
//! Design rules enforced throughout the workspace:
//!
//! * Observability is **write-only** from the algorithms' perspective: nothing
//!   recorded here may influence enumeration order, cache keys, or any byte of
//!   result payloads. The integration test `tests/obs_identity.rs` pins this.
//! * Hot paths never format strings or take locks: they hold [`Counter`]
//!   handles (a single relaxed `fetch_add` when enabled) and flush bulk
//!   statistics once per task/run boundary.
//! * Metric names follow Prometheus conventions; labels are embedded in the
//!   registered name (e.g. `ise_engine_phase_ns_total{phase="dedup"}`) and
//!   the renderer groups series by the base name before the `{`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of independent counter-map shards in a [`MetricsRegistry`].
///
/// Registration (name -> atomic) is striped so concurrent workers registering
/// handles do not serialize on one map; increments never touch the maps.
const COUNTER_SHARDS: usize = 16;

/// Maximum number of buffered trace events before new spans are counted but
/// dropped from the timeline (the drop count is exported as a counter).
const TRACE_CAPACITY: usize = 65_536;

/// Number of power-of-two histogram buckets (covers the full `u64` range).
const HIST_BUCKETS: usize = 64;

// ---------------------------------------------------------------------------
// Counter handles
// ---------------------------------------------------------------------------

/// A cheap, cloneable handle to a named monotonic counter.
///
/// A disabled handle (from [`Counter::disabled`] or any [`NoopRecorder`])
/// carries no allocation; `add`/`incr` reduce to a single `None` check.
/// An enabled handle performs one relaxed `fetch_add` per event.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A handle that ignores every increment. This is the `Default`.
    pub fn disabled() -> Self {
        Counter(None)
    }

    /// Wrap a shared atomic cell as a live counter handle.
    pub fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Counter(Some(cell))
    }

    /// True when increments on this handle are discarded.
    pub fn is_disabled(&self) -> bool {
        self.0.is_none()
    }

    /// Add `n` to the counter (no-op when disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one to the counter (no-op when disabled).
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        match &self.0 {
            Some(cell) => cell.load(Ordering::Relaxed),
            None => 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Span tokens
// ---------------------------------------------------------------------------

/// Opaque handle returned by [`Recorder::span_begin`] and consumed by
/// [`Recorder::span_end`]. The zero token is inert ("no span open").
#[derive(Clone, Copy, Debug, Eq, PartialEq)]
pub struct SpanToken(u64);

impl SpanToken {
    /// The inert token: ending it is a no-op.
    pub const NONE: SpanToken = SpanToken(0);
}

// ---------------------------------------------------------------------------
// Recorder trait + no-op implementation
// ---------------------------------------------------------------------------

/// The instrumentation surface threaded through every subsystem.
///
/// All methods default to no-ops so implementations opt into exactly the
/// signals they care about, and so call sites can be written once against
/// `&dyn Recorder` regardless of whether recording is live.
pub trait Recorder: Send + Sync {
    /// True when this recorder actually persists events. Call sites may use
    /// this to skip building expensive event descriptions.
    fn enabled(&self) -> bool {
        false
    }

    /// Register (or look up) a named counter and return a cheap handle for
    /// hot-path increments.
    fn counter(&self, name: &str) -> Counter {
        let _ = name;
        Counter::disabled()
    }

    /// One-shot add to a named counter (cold paths; hot paths should hold a
    /// [`Counter`] handle instead).
    fn add(&self, name: &str, n: u64) {
        let _ = (name, n);
    }

    /// Record one observation into a named power-of-two bucketed histogram.
    fn observe(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Set a named gauge to an absolute value (last write wins).
    fn set_gauge(&self, name: &str, value: u64) {
        let _ = (name, value);
    }

    /// Open a timed span in category `cat`. The returned token must be passed
    /// to [`Recorder::span_end`] exactly once; dropping it leaks the span (the
    /// enter/exit ledger makes that visible).
    fn span_begin(&self, cat: &str, name: &str) -> SpanToken {
        let _ = (cat, name);
        SpanToken::NONE
    }

    /// Close a span opened by [`Recorder::span_begin`].
    fn span_end(&self, token: SpanToken) {
        let _ = token;
    }

    /// Name the calling thread in trace output (e.g. `worker-3`).
    fn set_thread_name(&self, name: &str) {
        let _ = name;
    }
}

/// A recorder that drops every event. Used when no `--trace-out`,
/// `--progress`, or daemon metrics endpoint is active.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Fixed-size power-of-two bucketed histogram (bucket `i` counts values
/// `v` with `v < 2^i`, cumulative at render time).
#[derive(Clone)]
struct Histogram {
    /// `buckets[i]` counts observations whose bucket index is `i`.
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        // Bucket index = number of bits needed, so value 0 lands in bucket 0
        // (le 1), values 1..=1 in bucket 1 (le 2), 2..=3 in bucket 2, etc.
        let idx = (64 - value.leading_zeros()) as usize;
        self.buckets[idx.min(HIST_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }
}

// ---------------------------------------------------------------------------
// Trace events
// ---------------------------------------------------------------------------

/// A completed span destined for the Chrome trace-event JSON output.
struct TraceEvent {
    name: String,
    cat: String,
    /// Microseconds since the registry epoch.
    start_us: u64,
    /// Span duration in microseconds.
    dur_us: u64,
    tid: u32,
}

/// A span that has begun but not yet ended; lives in the pending slab.
struct PendingSpan {
    name: String,
    cat: String,
    start: Instant,
    tid: u32,
}

/// Slab of in-flight spans, indexed by `SpanToken - 1`.
#[derive(Default)]
struct PendingSpans {
    slots: Vec<Option<PendingSpan>>,
    free: Vec<usize>,
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

/// The live recorder: lock-striped counters, gauges, histograms, span timers,
/// and a bounded trace buffer, with Prometheus and Chrome-trace renderers.
///
/// One registry is shared (via `Arc`) across all threads of a run or across
/// the whole daemon lifetime; rendering takes point-in-time snapshots and
/// never blocks hot-path increments.
pub struct MetricsRegistry {
    counters: Vec<Mutex<HashMap<String, Arc<AtomicU64>>>>,
    gauges: Mutex<HashMap<String, u64>>,
    histograms: Mutex<HashMap<String, Histogram>>,
    pending: Mutex<PendingSpans>,
    trace: Mutex<Vec<TraceEvent>>,
    trace_dropped: AtomicU64,
    spans_entered: AtomicU64,
    spans_exited: AtomicU64,
    epoch: Instant,
    threads: Mutex<ThreadTable>,
}

/// Maps OS threads to small stable trace tids plus optional display names.
#[derive(Default)]
struct ThreadTable {
    ids: HashMap<std::thread::ThreadId, u32>,
    names: HashMap<u32, String>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// Create an empty registry; the creation instant becomes the trace epoch.
    pub fn new() -> Self {
        MetricsRegistry {
            counters: (0..COUNTER_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            gauges: Mutex::new(HashMap::new()),
            histograms: Mutex::new(HashMap::new()),
            pending: Mutex::new(PendingSpans::default()),
            trace: Mutex::new(Vec::new()),
            trace_dropped: AtomicU64::new(0),
            spans_entered: AtomicU64::new(0),
            spans_exited: AtomicU64::new(0),
            epoch: Instant::now(),
            threads: Mutex::new(ThreadTable::default()),
        }
    }

    fn shard_for(&self, name: &str) -> &Mutex<HashMap<String, Arc<AtomicU64>>> {
        // FNV-1a over the name bytes; only registration hits this path.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        &self.counters[(h as usize) % COUNTER_SHARDS]
    }

    fn cell(&self, name: &str) -> Arc<AtomicU64> {
        let mut shard = self.shard_for(name).lock().expect("counter shard poisoned");
        Arc::clone(shard.entry(name.to_string()).or_default())
    }

    /// Stable small trace tid for the calling thread, assigned on first use.
    fn tid(&self) -> u32 {
        let mut table = self.threads.lock().expect("thread table poisoned");
        let next = table.ids.len() as u32;
        *table.ids.entry(std::thread::current().id()).or_insert(next)
    }

    /// Number of spans opened so far (ledger; compare with
    /// [`MetricsRegistry::spans_exited`]).
    pub fn spans_entered(&self) -> u64 {
        self.spans_entered.load(Ordering::Relaxed)
    }

    /// Number of spans closed so far.
    pub fn spans_exited(&self) -> u64 {
        self.spans_exited.load(Ordering::Relaxed)
    }

    /// Number of completed spans discarded because the trace buffer was full.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped.load(Ordering::Relaxed)
    }

    /// Current value of a named counter (0 if never registered).
    pub fn counter_value(&self, name: &str) -> u64 {
        let shard = self.shard_for(name).lock().expect("counter shard poisoned");
        shard.get(name).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Flat, sorted `(sanitized_name, value)` snapshot of all counters and
    /// gauges, suitable for embedding as a flat JSON object (the daemon's
    /// `stats` op). Label punctuation is folded into `_` so keys contain no
    /// braces or quotes.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for shard in &self.counters {
            let shard = shard.lock().expect("counter shard poisoned");
            for (name, cell) in shard.iter() {
                out.push((sanitize_key(name), cell.load(Ordering::Relaxed)));
            }
        }
        let gauges = self.gauges.lock().expect("gauge map poisoned");
        for (name, value) in gauges.iter() {
            out.push((sanitize_key(name), *value));
        }
        out.push(("obs_spans_entered".to_string(), self.spans_entered()));
        out.push(("obs_spans_exited".to_string(), self.spans_exited()));
        out.sort();
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }

    /// Render every counter, gauge, and histogram in Prometheus text
    /// exposition format (version 0.0.4). Series sharing a base name (the
    /// part before any `{`) are grouped under one `# TYPE` line.
    pub fn render_prometheus(&self) -> String {
        let mut counters: Vec<(String, u64)> = Vec::new();
        for shard in &self.counters {
            let shard = shard.lock().expect("counter shard poisoned");
            for (name, cell) in shard.iter() {
                counters.push((name.clone(), cell.load(Ordering::Relaxed)));
            }
        }
        counters.push((
            "ise_obs_spans_entered_total".to_string(),
            self.spans_entered(),
        ));
        counters.push((
            "ise_obs_spans_exited_total".to_string(),
            self.spans_exited(),
        ));
        counters.push((
            "ise_obs_trace_dropped_total".to_string(),
            self.trace_dropped(),
        ));
        counters.sort();
        let mut gauges: Vec<(String, u64)> = {
            let map = self.gauges.lock().expect("gauge map poisoned");
            map.iter().map(|(k, v)| (k.clone(), *v)).collect()
        };
        gauges.sort();

        let mut out = String::new();
        let mut last_base = String::new();
        for (name, value) in &counters {
            let base = base_name(name);
            if base != last_base {
                out.push_str("# TYPE ");
                out.push_str(base);
                out.push_str(" counter\n");
                last_base = base.to_string();
            }
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        last_base.clear();
        for (name, value) in &gauges {
            let base = base_name(name);
            if base != last_base {
                out.push_str("# TYPE ");
                out.push_str(base);
                out.push_str(" gauge\n");
                last_base = base.to_string();
            }
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }

        let mut hists: Vec<(String, Histogram)> = {
            let map = self.histograms.lock().expect("histogram map poisoned");
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect()
        };
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, hist) in &hists {
            out.push_str("# TYPE ");
            out.push_str(name);
            out.push_str(" histogram\n");
            let mut cumulative = 0u64;
            for (i, n) in hist.buckets.iter().enumerate() {
                cumulative += n;
                if *n == 0 && i != 0 {
                    continue;
                }
                // Upper bound of bucket i is 2^i (bucket 0 holds value 0).
                out.push_str(name);
                out.push_str("_bucket{le=\"");
                if i >= 63 {
                    out.push_str("+Inf");
                } else {
                    out.push_str(&(1u64 << i).to_string());
                }
                out.push_str("\"} ");
                out.push_str(&cumulative.to_string());
                out.push('\n');
            }
            out.push_str(name);
            out.push_str("_bucket{le=\"+Inf\"} ");
            out.push_str(&hist.count.to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_sum ");
            out.push_str(&hist.sum.to_string());
            out.push('\n');
            out.push_str(name);
            out.push_str("_count ");
            out.push_str(&hist.count.to_string());
            out.push('\n');
        }
        out
    }

    /// Render the buffered spans as Chrome trace-event JSON (the
    /// `{"traceEvents": [...]}` object form, loadable in `chrome://tracing`
    /// and Perfetto). Each span is a `ph:"X"` complete event under its
    /// worker thread; named threads get `ph:"M"` `thread_name` metadata.
    pub fn render_chrome_trace(&self) -> String {
        let events = self.trace.lock().expect("trace buffer poisoned");
        let table = self.threads.lock().expect("thread table poisoned");
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        let mut names: Vec<(u32, &String)> = table.names.iter().map(|(k, v)| (*k, v)).collect();
        names.sort();
        for (tid, name) in names {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                tid,
                escape_json(name)
            ));
        }
        for ev in events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                escape_json(&ev.name),
                escape_json(&ev.cat),
                ev.start_us,
                ev.dur_us,
                ev.tid
            ));
        }
        out.push_str("]}");
        out
    }
}

impl Recorder for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &str) -> Counter {
        Counter::from_cell(self.cell(name))
    }

    fn add(&self, name: &str, n: u64) {
        self.cell(name).fetch_add(n, Ordering::Relaxed);
    }

    fn observe(&self, name: &str, value: u64) {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        map.entry(name.to_string())
            .or_insert_with(Histogram::new)
            .observe(value);
    }

    fn set_gauge(&self, name: &str, value: u64) {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        map.insert(name.to_string(), value);
    }

    fn span_begin(&self, cat: &str, name: &str) -> SpanToken {
        self.spans_entered.fetch_add(1, Ordering::Relaxed);
        let span = PendingSpan {
            name: name.to_string(),
            cat: cat.to_string(),
            start: Instant::now(),
            tid: self.tid(),
        };
        let mut pending = self.pending.lock().expect("pending spans poisoned");
        let idx = match pending.free.pop() {
            Some(idx) => {
                pending.slots[idx] = Some(span);
                idx
            }
            None => {
                pending.slots.push(Some(span));
                pending.slots.len() - 1
            }
        };
        SpanToken(idx as u64 + 1)
    }

    fn span_end(&self, token: SpanToken) {
        if token == SpanToken::NONE {
            return;
        }
        let idx = (token.0 - 1) as usize;
        let span = {
            let mut pending = self.pending.lock().expect("pending spans poisoned");
            let span = pending.slots.get_mut(idx).and_then(Option::take);
            if span.is_some() {
                pending.free.push(idx);
            }
            span
        };
        let Some(span) = span else { return };
        self.spans_exited.fetch_add(1, Ordering::Relaxed);
        let end = Instant::now();
        let start_us = span.start.duration_since(self.epoch).as_micros() as u64;
        let dur_us = end.duration_since(span.start).as_micros() as u64;
        let mut trace = self.trace.lock().expect("trace buffer poisoned");
        if trace.len() >= TRACE_CAPACITY {
            drop(trace);
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        trace.push(TraceEvent {
            name: span.name,
            cat: span.cat,
            start_us,
            dur_us,
            tid: span.tid,
        });
    }

    fn set_thread_name(&self, name: &str) {
        let tid = self.tid();
        let mut table = self.threads.lock().expect("thread table poisoned");
        table.names.insert(tid, name.to_string());
    }
}

/// The base series name: everything before the first `{` label delimiter.
fn base_name(name: &str) -> &str {
    name.split('{').next().unwrap_or(name)
}

/// Fold label punctuation (`{`, `}`, `"`, `=`, `,`) into underscores and trim
/// runs so snapshot keys are safe inside a flat JSON object.
fn sanitize_key(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut last_underscore = false;
    for ch in name.chars() {
        let mapped = match ch {
            '{' | '}' | '"' | '=' | ',' | ' ' => '_',
            other => other,
        };
        if mapped == '_' {
            if !last_underscore {
                out.push('_');
            }
            last_underscore = true;
        } else {
            out.push(mapped);
            last_underscore = false;
        }
    }
    while out.ends_with('_') {
        out.pop();
    }
    out
}

/// Minimal JSON string escaping for trace names and categories.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counter_is_inert() {
        let c = Counter::disabled();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 0);
        assert!(c.is_disabled());
    }

    #[test]
    fn noop_recorder_returns_inert_handles() {
        let rec = NoopRecorder;
        assert!(!rec.enabled());
        let c = rec.counter("anything");
        c.add(7);
        assert_eq!(c.get(), 0);
        let token = rec.span_begin("cat", "name");
        assert_eq!(token, SpanToken::NONE);
        rec.span_end(token);
    }

    #[test]
    fn registry_counters_accumulate_and_share_cells() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("ise_test_total");
        let b = reg.counter("ise_test_total");
        a.add(3);
        b.incr();
        assert_eq!(reg.counter_value("ise_test_total"), 4);
        reg.add("ise_test_total", 6);
        assert_eq!(reg.counter_value("ise_test_total"), 10);
    }

    #[test]
    fn span_ledger_balances_and_fills_trace() {
        let reg = MetricsRegistry::new();
        reg.set_thread_name("main");
        let outer = reg.span_begin("engine", "run");
        let inner = reg.span_begin("engine", "phase");
        reg.span_end(inner);
        reg.span_end(outer);
        assert_eq!(reg.spans_entered(), 2);
        assert_eq!(reg.spans_exited(), 2);
        let trace = reg.render_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"phase\""));
        assert!(trace.contains("\"thread_name\""));
        // Double-end is harmless.
        reg.span_end(outer);
        assert_eq!(reg.spans_exited(), 2);
    }

    #[test]
    fn prometheus_rendering_groups_by_base_name() {
        let reg = MetricsRegistry::new();
        reg.add("ise_phase_ns_total{phase=\"dedup\"}", 5);
        reg.add("ise_phase_ns_total{phase=\"pick_output\"}", 7);
        reg.set_gauge("ise_memo_entries", 42);
        reg.observe("ise_task_nodes", 3);
        reg.observe("ise_task_nodes", 900);
        let text = reg.render_prometheus();
        // One TYPE line for the labelled counter family.
        assert_eq!(text.matches("# TYPE ise_phase_ns_total counter").count(), 1);
        assert!(text.contains("ise_phase_ns_total{phase=\"dedup\"} 5\n"));
        assert!(text.contains("ise_phase_ns_total{phase=\"pick_output\"} 7\n"));
        assert!(text.contains("# TYPE ise_memo_entries gauge\nise_memo_entries 42\n"));
        assert!(text.contains("# TYPE ise_task_nodes histogram"));
        assert!(text.contains("ise_task_nodes_sum 903\n"));
        assert!(text.contains("ise_task_nodes_count 2\n"));
        assert!(text.contains("ise_task_nodes_bucket{le=\"+Inf\"} 2\n"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<u64>().is_ok(), "bad value in line: {line}");
        }
    }

    #[test]
    fn snapshot_sanitizes_label_syntax() {
        let reg = MetricsRegistry::new();
        reg.add("ise_phase_ns_total{phase=\"dedup\"}", 9);
        reg.set_gauge("ise_memo_entries", 1);
        let snap = reg.snapshot();
        let keys: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert!(
            keys.contains(&"ise_phase_ns_total_phase_dedup"),
            "keys: {keys:?}"
        );
        assert!(keys.contains(&"ise_memo_entries"));
        for (k, _) in &snap {
            assert!(!k.contains(['{', '}', '"', '=']), "unsanitized key {k}");
        }
        // Sorted for deterministic embedding.
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_output() {
        let reg = MetricsRegistry::new();
        reg.observe("h", 0);
        reg.observe("h", 1);
        reg.observe("h", u64::MAX);
        let text = reg.render_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("h_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn concurrent_span_and_counter_traffic_is_consistent() {
        let reg = Arc::new(MetricsRegistry::new());
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    reg.set_thread_name(&format!("worker-{i}"));
                    let c = reg.counter("ise_thread_events_total");
                    for _ in 0..100 {
                        let t = reg.span_begin("pool", "task");
                        c.incr();
                        reg.span_end(t);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(reg.counter_value("ise_thread_events_total"), 400);
        assert_eq!(reg.spans_entered(), 400);
        assert_eq!(reg.spans_exited(), 400);
    }
}
