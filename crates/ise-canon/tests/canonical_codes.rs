//! Property tests for canonical codes (the ISSUE 5 coverage satellite):
//!
//! * **Permutation invariance** — relabeling the node ids of a graph from any
//!   `ise-workloads` family never changes the canonical code of any enumerated cut
//!   (soundness: isomorphic ⇒ equal code).
//! * **Oracle agreement** — on random small pattern graphs (≤ 8 nodes) code
//!   equality coincides exactly with brute-force isomorphism over all node
//!   bijections (soundness and completeness at once).

use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

use ise_canon::CanonicalCode;
use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_graph::{
    DenseNodeSet, Dfg, DfgBuilder, InterfaceGraph, InterfaceLabel, Node, NodeId, Operation,
};
use ise_workloads::compile_block;
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};
use ise_workloads::tree::{TreeDfgBuilder, TreeOrientation};

/// One small graph per workload family.
fn family_graphs() -> Vec<Dfg> {
    vec![
        TreeDfgBuilder::new(3).build(),
        TreeDfgBuilder::new(3)
            .with_orientation(TreeOrientation::FanIn)
            .build(),
        random_dag(
            &RandomDagConfig::new(14)
                .with_live_ins(3)
                .with_memory_ratio(0.2),
            23,
        ),
        generate_block(&MiBenchLikeConfig::new(20), 5).expect("generator output is valid"),
        compile_block("expr", "x = (a + b) * (c + b); y = (a + b) - c; z = x ^ y;")
            .expect("expression compiles"),
    ]
}

/// Rebuilds `dfg` with node `v` renamed to `perm[v]`, preserving operand order,
/// output marks and user-forbidden marks. Returns the permuted graph.
fn permute_dfg(dfg: &Dfg, perm: &[usize]) -> Dfg {
    let n = dfg.len();
    let mut nodes: Vec<Node> = vec![Node::new(Operation::Input); n];
    for v in dfg.node_ids() {
        nodes[perm[v.index()]] = dfg.node(v).clone();
    }
    // Emitting each node's predecessor list in operand order keeps the stable CSR
    // grouping of the rebuilt graph faithful to the original operand order.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(dfg.edge_count());
    for v in dfg.node_ids() {
        for &p in dfg.preds(v) {
            edges.push((
                NodeId::from_index(perm[p.index()]),
                NodeId::from_index(perm[v.index()]),
            ));
        }
    }
    let outputs: Vec<NodeId> = dfg
        .external_outputs()
        .iter()
        .map(|o| NodeId::from_index(perm[o.index()]))
        .collect();
    let forbidden: Vec<NodeId> = dfg
        .forbidden()
        .iter()
        .map(|f| NodeId::from_index(perm[f.index()]))
        .collect();
    Dfg::from_nodes("permuted", nodes, edges, outputs, forbidden).expect("permutation is valid")
}

fn random_permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    perm
}

fn code_of_body(dfg: &Dfg, body: &DenseNodeSet) -> CanonicalCode {
    CanonicalCode::of(&InterfaceGraph::extract(dfg, body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness on real candidates: for every enumerated cut of every family
    /// graph, relabeling the block's node ids leaves the canonical code unchanged.
    #[test]
    fn node_id_permutations_preserve_canonical_codes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for dfg in family_graphs() {
            let perm = random_permutation(dfg.len(), &mut rng);
            let permuted = permute_dfg(&dfg, &perm);
            let ctx = EnumContext::new(dfg.clone());
            let cuts = incremental_cuts(&ctx, &Constraints::new(3, 2).unwrap(), &PruningConfig::all());
            // A few dozen cuts per family keep the sweep fast while covering many
            // shapes; enumeration order is deterministic.
            for cut in cuts.cuts.iter().take(48) {
                let original = code_of_body(&dfg, cut.body());
                let mapped = DenseNodeSet::from_nodes(
                    permuted.len(),
                    cut.body().iter().map(|v| NodeId::from_index(perm[v.index()])),
                );
                let relabeled = code_of_body(&permuted, &mapped);
                prop_assert_eq!(
                    &original, &relabeled,
                    "code changed under relabeling on `{}`", dfg.name()
                );
            }
        }
    }

    /// Completeness and soundness against a brute-force oracle: on random pattern
    /// graphs of at most 8 nodes, code equality is exactly isomorphism.
    #[test]
    fn code_equality_matches_brute_force_isomorphism(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let a = random_pattern(&mut rng);
            // Half the pairs are independent draws (almost surely non-isomorphic),
            // half are relabelings of `a` (isomorphic by construction).
            let b = if rng.gen_bool(0.5) {
                random_pattern(&mut rng)
            } else {
                shuffled_pattern(&a, &mut rng)
            };
            let ga = InterfaceGraph::extract(&a.dfg, &a.body);
            let gb = InterfaceGraph::extract(&b.dfg, &b.body);
            let codes_equal = CanonicalCode::of(&ga) == CanonicalCode::of(&gb);
            let isomorphic = brute_force_isomorphic(&ga, &gb);
            prop_assert_eq!(codes_equal, isomorphic, "codes must equal exactly on isomorphism");
        }
    }
}

/// A pattern as a host graph plus the body set to extract.
struct PatternSpec {
    dfg: Dfg,
    body: DenseNodeSet,
}

/// Draws a random pattern: 1–3 anonymous inputs and 1–5 body operations wired to
/// earlier nodes, with random output marks. At most 8 interface nodes total.
fn random_pattern(rng: &mut StdRng) -> PatternSpec {
    const OPS: [Operation; 5] = [
        Operation::Add,
        Operation::Mul,
        Operation::Sub,
        Operation::Not,
        Operation::Xor,
    ];
    let num_inputs = rng.gen_range(1usize..=3);
    let num_body = rng.gen_range(1usize..=5);
    let mut b = DfgBuilder::new("pattern");
    let mut nodes: Vec<NodeId> = (0..num_inputs).map(|i| b.input(format!("i{i}"))).collect();
    let mut body_nodes = Vec::new();
    for _ in 0..num_body {
        let op = OPS[rng.gen_range(0..OPS.len())];
        let arity = if op == Operation::Not { 1 } else { 2 };
        let operands: Vec<NodeId> = (0..arity)
            .map(|_| nodes[rng.gen_range(0..nodes.len())])
            .collect();
        let v = b.node(op, &operands);
        if rng.gen_bool(0.3) {
            b.mark_output(v);
        }
        nodes.push(v);
        body_nodes.push(v);
    }
    let dfg = b.build().expect("pattern graph is valid");
    let body = DenseNodeSet::from_nodes(dfg.len(), body_nodes);
    PatternSpec { dfg, body }
}

/// Relabels the host graph of `spec` with a random permutation.
fn shuffled_pattern(spec: &PatternSpec, rng: &mut StdRng) -> PatternSpec {
    let perm = random_permutation(spec.dfg.len(), rng);
    let dfg = permute_dfg(&spec.dfg, &perm);
    let body = DenseNodeSet::from_nodes(
        dfg.len(),
        spec.body
            .iter()
            .map(|v| NodeId::from_index(perm[v.index()])),
    );
    PatternSpec { dfg, body }
}

/// Brute-force isomorphism over all bijections of local ids that respect labels,
/// output flags and operand order. Only usable for tiny graphs (≤ 8 nodes).
fn brute_force_isomorphic(a: &InterfaceGraph, b: &InterfaceGraph) -> bool {
    if a.len() != b.len() || a.num_inputs() != b.num_inputs() {
        return false;
    }
    let n = a.len();
    assert!(n <= 8, "oracle is factorial; keep the graphs tiny");
    let mut mapping: Vec<usize> = (0..n).collect();
    permutations(&mut mapping, 0, &mut |perm| {
        (0..n).all(|v| {
            let w = perm[v];
            label_eq(a.label(v), b.label(w))
                && a.is_output(v) == b.is_output(w)
                && a.operands(v).len() == b.operands(w).len()
                && a.operands(v)
                    .iter()
                    .zip(b.operands(w))
                    .all(|(&x, &y)| perm[x] == y)
        })
    })
}

fn label_eq(a: InterfaceLabel, b: InterfaceLabel) -> bool {
    a == b
}

/// Calls `check` on every permutation of `items[at..]`; returns true as soon as one
/// permutation satisfies it.
fn permutations(
    items: &mut Vec<usize>,
    at: usize,
    check: &mut impl FnMut(&[usize]) -> bool,
) -> bool {
    if at == items.len() {
        return check(items);
    }
    for i in at..items.len() {
        items.swap(at, i);
        if permutations(items, at + 1, check) {
            items.swap(at, i);
            return true;
        }
        items.swap(at, i);
    }
    false
}
