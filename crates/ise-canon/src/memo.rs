//! Fingerprint-keyed raw→canonical memoization — the grouping hot path's cache.
//!
//! `CanonicalCode::of` runs iterative refinement plus backtracking labeling once
//! per cut, yet on real corpora the same few thousand patterns recur tens of
//! thousands of times. Following the memoesu approach (SNIPPETS.md), [`CanonMemo`]
//! memoizes `raw encoding → canonical code` so the labeler runs once per *distinct
//! raw graph*, in three layers (DESIGN.md §6.4):
//!
//! 1. **Raw encoding.** [`ise_graph::RawEncoder`] serializes a cut's interface
//!    graph into one reused `Vec<u32>` straight from `(dfg, body)` — labels,
//!    operand wiring and output flags in local-id order. Equal encodings mean
//!    *identical* (not merely isomorphic) interface graphs, so an exact-raw hit
//!    skips graph construction, merit estimation and labeling entirely.
//! 2. **64-bit fingerprint pre-key.** Entries are bucketed by a cheap fingerprint
//!    of the raw encoding. A fingerprint hit is always confirmed by a full
//!    raw-encoding comparison before the cached code is returned, so a collision
//!    costs one extra comparison and can never produce a wrong code.
//! 3. **Lock-striped sharing.** Buckets are spread over mutex-guarded shards
//!    selected by fingerprint bits, so `canonicalize_cuts_memo` workers on
//!    different blocks share one memo with negligible contention, and `ise serve`
//!    keeps the memo warm in its `ServerState` across requests.
//!
//! Memoization is observably pure: a hit returns exactly the `CodedCut` fields a
//! cold computation would produce (pinned by proptest in `tests/properties.rs` and
//! by byte-identical grouped JSON in `tests/grouping_pipeline.rs` and CI).

use std::collections::HashMap;
use std::sync::Mutex;

use ise_obs::{Counter, Recorder};

use crate::canon::{digest_words, CanonicalCode};

/// A snapshot of one memo's counters, reported by `--memo-stats` and the daemon's
/// `stats` op.
///
/// `raw_hits <= fingerprint_hits` always: a fingerprint hit is a bucket match, a
/// raw hit is a bucket match whose full raw-encoding comparison also succeeded.
/// The difference counts fingerprint collisions (in practice zero).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from the memo (fingerprint matched *and* the full raw
    /// encoding compared equal) — the labeler was skipped.
    pub raw_hits: u64,
    /// Lookups whose fingerprint bucket held at least one candidate entry.
    pub fingerprint_hits: u64,
    /// Times the backtracking labeler actually ran (one per distinct raw graph,
    /// plus at most one per thread racing on the same new graph).
    pub labeler_runs: u64,
    /// Distinct raw encodings currently stored.
    pub entries: u64,
}

impl MemoStats {
    /// Publishes this snapshot into a metrics registry as gauges
    /// (`ise_memo_raw_hits`, `ise_memo_fingerprint_hits`, `ise_memo_labeler_runs`,
    /// `ise_memo_entries`) — the daemon calls this before rendering
    /// `GET /v1/metrics` so the memo surfaces through the shared registry.
    pub fn publish(&self, rec: &dyn Recorder) {
        rec.set_gauge("ise_memo_raw_hits", self.raw_hits);
        rec.set_gauge("ise_memo_fingerprint_hits", self.fingerprint_hits);
        rec.set_gauge("ise_memo_labeler_runs", self.labeler_runs);
        rec.set_gauge("ise_memo_entries", self.entries);
    }
}

/// One memoized raw graph: the confirmed key, the cached pattern facts, and any
/// merit values computed so far (keyed by port configuration).
#[derive(Debug)]
struct MemoEntry {
    raw: Box<[u32]>,
    code: CanonicalCode,
    ops: String,
    /// `(merit key, saved_cycles)` pairs — see [`merit_key`]. Raw-equal graphs are
    /// identical, so the cached merit is bit-identical to a recomputation; a
    /// linear scan suffices because a memo sees one or two port configurations.
    merits: Vec<(u64, u32)>,
}

/// One lock stripe: fingerprint-keyed buckets plus the counters local to it.
#[derive(Debug, Default)]
struct Shard {
    buckets: HashMap<u64, Vec<MemoEntry>>,
    raw_hits: u64,
    fingerprint_hits: u64,
    labeler_runs: u64,
}

/// The packed merit-cache key for a `(ports_in, ports_out)` configuration.
pub(crate) fn merit_key(ports_in: usize, ports_out: usize) -> u64 {
    ((ports_in as u64) << 32) | ports_out as u64
}

/// A cached lookup result: the pattern facts stored for a raw encoding, plus the
/// cached merit for the requested port configuration when one was recorded.
pub(crate) struct MemoHit {
    pub code: CanonicalCode,
    pub ops: String,
    pub saved_cycles: Option<u32>,
}

/// A shared, lock-striped memo from raw interface-graph encodings to canonical
/// codes (plus cached ops summaries and merit values).
///
/// Cheap to share by reference across threads (`&CanonMemo` is `Sync`); lives for
/// a whole `ise group`/`select --global` run, or across requests inside
/// `ise serve`. The three lookup layers (raw encoding, fingerprint pre-key,
/// lock striping) are described at the top of `memo.rs`.
///
/// # Example
///
/// ```
/// use ise_canon::{CanonMemo, canonicalize_cuts_memo, GroupConfig};
/// use ise_enum::{enumerate_cuts, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("twice");
/// for i in 0..2 {
///     let a = b.input(format!("a{i}"));
///     let c = b.input(format!("c{i}"));
///     let s = b.node(Operation::Add, &[a, c]);
///     b.mark_output(s);
/// }
/// let dfg = b.build().unwrap();
/// let cuts = enumerate_cuts(&dfg, &Constraints::new(2, 1).unwrap()).unwrap();
/// let ctx = EnumContext::new(dfg);
///
/// let memo = CanonMemo::new();
/// let coded = canonicalize_cuts_memo(&ctx, &cuts.cuts, &GroupConfig::default(), &memo);
/// assert_eq!(coded[0].code, coded[1].code, "the two adds are one pattern");
/// let stats = memo.stats();
/// assert!(stats.raw_hits >= 1, "the second add hits the memo");
/// assert!(stats.labeler_runs < coded.len() as u64);
/// ```
#[derive(Debug)]
pub struct CanonMemo {
    shards: Box<[Mutex<Shard>]>,
    fingerprint: fn(&[u32]) -> u64,
    obs: MemoCounters,
}

/// Live mirror counters into a metrics registry, incremented at the same sites
/// as the shard-local totals. Disabled (single null-check per event) until
/// [`CanonMemo::set_recorder`] arms them; [`CanonMemo::stats`] stays the source
/// of truth either way.
#[derive(Debug, Default)]
struct MemoCounters {
    raw_hits: Counter,
    fingerprint_hits: Counter,
    labeler_runs: Counter,
}

impl Default for CanonMemo {
    fn default() -> Self {
        CanonMemo::new()
    }
}

impl CanonMemo {
    /// Default shard count: enough stripes that the handful of coding workers a
    /// 1-CPU-to-desktop machine runs almost never collide on a lock.
    const DEFAULT_SHARDS: usize = 16;

    /// An empty memo with the default shard count and fingerprint.
    pub fn new() -> Self {
        CanonMemo::with_fingerprinter(Self::DEFAULT_SHARDS, digest_words)
    }

    /// An empty memo with `shards` lock stripes (rounded up to a power of two).
    pub fn with_shards(shards: usize) -> Self {
        CanonMemo::with_fingerprinter(shards, digest_words)
    }

    /// An empty memo with an explicit fingerprint function — the test seam that
    /// makes fingerprint collisions reproducible (pass a constant function and
    /// every raw encoding shares one bucket). Correctness never depends on the
    /// fingerprint: hits are confirmed against the full raw encoding.
    pub fn with_fingerprinter(shards: usize, fingerprint: fn(&[u32]) -> u64) -> Self {
        let count = shards.next_power_of_two().max(1);
        CanonMemo {
            shards: (0..count).map(|_| Mutex::default()).collect(),
            fingerprint,
            obs: MemoCounters::default(),
        }
    }

    /// Arms live mirror counters (`ise_memo_raw_hits_total`,
    /// `ise_memo_fingerprint_hits_total`, `ise_memo_labeler_runs_total`) in the
    /// given registry, incremented alongside the shard-local totals. Recording
    /// never changes lookup results; call before sharing the memo across threads.
    pub fn set_recorder(&mut self, rec: &dyn Recorder) {
        self.obs = MemoCounters {
            raw_hits: rec.counter("ise_memo_raw_hits_total"),
            fingerprint_hits: rec.counter("ise_memo_fingerprint_hits_total"),
            labeler_runs: rec.counter("ise_memo_labeler_runs_total"),
        };
    }

    fn shard_for(&self, fingerprint: u64) -> &Mutex<Shard> {
        // Shard on the *high* fingerprint bits: the bucket HashMap consumes the
        // full value, so any bits work, but distinct bits keep the two layers of
        // bucketing independent.
        &self.shards[(fingerprint >> 32) as usize & (self.shards.len() - 1)]
    }

    /// Looks up `raw`, returning the cached facts on a confirmed hit. `key` is
    /// the [`merit_key`] whose cached saving to return (when recorded).
    pub(crate) fn lookup(&self, raw: &[u32], key: u64) -> Option<MemoHit> {
        let fingerprint = (self.fingerprint)(raw);
        let mut guard = self.shard_for(fingerprint).lock().unwrap();
        let shard = &mut *guard;
        // An absent bucket is a fingerprint miss and counts nowhere.
        let entries = shard.buckets.get(&fingerprint)?;
        shard.fingerprint_hits += 1;
        self.obs.fingerprint_hits.incr();
        let entry = entries.iter().find(|e| *e.raw == *raw)?;
        shard.raw_hits += 1;
        self.obs.raw_hits.incr();
        Some(MemoHit {
            code: entry.code.clone(),
            ops: entry.ops.clone(),
            saved_cycles: entry
                .merits
                .iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, s)| s),
        })
    }

    /// Records a freshly computed graph: one labeler run, the resulting code and
    /// ops, and the merit for `key`. If another thread raced us to the same raw
    /// encoding the earlier entry wins (the values are identical by construction).
    pub(crate) fn insert(
        &self,
        raw: &[u32],
        code: &CanonicalCode,
        ops: &str,
        key: u64,
        saved_cycles: u32,
    ) {
        let fingerprint = (self.fingerprint)(raw);
        let mut shard = self.shard_for(fingerprint).lock().unwrap();
        shard.labeler_runs += 1;
        self.obs.labeler_runs.incr();
        let bucket = shard.buckets.entry(fingerprint).or_default();
        match bucket.iter_mut().find(|e| *e.raw == *raw) {
            Some(entry) => {
                debug_assert_eq!(entry.code, *code, "raced entries must agree");
                if !entry.merits.iter().any(|&(k, _)| k == key) {
                    entry.merits.push((key, saved_cycles));
                }
            }
            None => bucket.push(MemoEntry {
                raw: raw.into(),
                code: code.clone(),
                ops: ops.to_string(),
                merits: vec![(key, saved_cycles)],
            }),
        }
    }

    /// Records the merit for `key` on an existing entry (a raw hit whose port
    /// configuration had not been costed yet). A no-op if the entry vanished —
    /// the memo never grows an entry without its labeler run.
    pub(crate) fn record_merit(&self, raw: &[u32], key: u64, saved_cycles: u32) {
        let fingerprint = (self.fingerprint)(raw);
        let mut shard = self.shard_for(fingerprint).lock().unwrap();
        if let Some(entry) = shard
            .buckets
            .get_mut(&fingerprint)
            .and_then(|b| b.iter_mut().find(|e| *e.raw == *raw))
        {
            if !entry.merits.iter().any(|&(k, _)| k == key) {
                entry.merits.push((key, saved_cycles));
            }
        }
    }

    /// A snapshot of the counters, summed over all shards.
    pub fn stats(&self) -> MemoStats {
        let mut stats = MemoStats::default();
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap();
            stats.raw_hits += shard.raw_hits;
            stats.fingerprint_hits += shard.fingerprint_hits;
            stats.labeler_runs += shard.labeler_runs;
            stats.entries += shard.buckets.values().map(|b| b.len() as u64).sum::<u64>();
        }
        stats
    }

    /// Number of distinct raw encodings stored.
    pub fn len(&self) -> usize {
        self.stats().entries as usize
    }

    /// Whether the memo holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{canonicalize_cuts, canonicalize_cuts_memo, GroupConfig};
    use ise_enum::{enumerate_cuts, Constraints, EnumContext};
    use ise_graph::{DfgBuilder, Operation};

    /// A block holding `macs` MAC datapaths plus one unique xor-shift tail.
    fn block(name: &str, macs: usize) -> (EnumContext, Vec<ise_enum::Cut>) {
        let mut b = DfgBuilder::new(name);
        for i in 0..macs {
            let a = b.input(format!("a{i}"));
            let x = b.input(format!("x{i}"));
            let acc = b.input(format!("acc{i}"));
            let m = b.node(Operation::Mul, &[a, x]);
            let s = b.node(Operation::Add, &[m, acc]);
            b.mark_output(s);
        }
        let p = b.input("p");
        let q = b.node(Operation::Xor, &[p, p]);
        let r = b.node(Operation::Shl, &[q]);
        b.mark_output(r);
        let dfg = b.build().unwrap();
        let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1).unwrap()).unwrap();
        (EnumContext::new(dfg), cuts.cuts)
    }

    #[test]
    fn memoized_coding_matches_plain_coding_and_hits() {
        let config = GroupConfig::new(3, 1);
        let memo = CanonMemo::new();
        for (name, macs) in [("a", 2), ("b", 1), ("c", 2)] {
            let (ctx, cuts) = block(name, macs);
            let plain = canonicalize_cuts(&ctx, &cuts, &config);
            let memoized = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
            assert_eq!(plain.len(), memoized.len());
            for (p, m) in plain.iter().zip(&memoized) {
                assert_eq!(p.code, m.code);
                assert_eq!(p.size, m.size);
                assert_eq!(p.inputs, m.inputs);
                assert_eq!(p.outputs, m.outputs);
                assert_eq!(p.ops, m.ops);
                assert_eq!(p.saved_cycles, m.saved_cycles);
            }
        }
        let stats = memo.stats();
        assert!(stats.raw_hits > 0, "recurring MACs must hit");
        assert!(stats.labeler_runs > 0);
        assert_eq!(
            stats.entries, stats.labeler_runs,
            "single-threaded: one labeler run per stored entry"
        );
        assert!(
            stats.fingerprint_hits >= stats.raw_hits,
            "every raw hit is first a fingerprint hit"
        );
        assert_eq!(memo.len(), stats.entries as usize);
        assert!(!memo.is_empty());
    }

    #[test]
    fn second_sweep_never_runs_the_labeler() {
        let config = GroupConfig::new(3, 1);
        let memo = CanonMemo::with_shards(4);
        let (ctx, cuts) = block("warm", 2);
        let cold = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
        let runs_after_cold = memo.stats().labeler_runs;
        let warm = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
        let stats = memo.stats();
        assert_eq!(stats.labeler_runs, runs_after_cold, "everything was cached");
        assert_eq!(
            stats.raw_hits,
            2 * cuts.len() as u64 - stats.entries,
            "warm sweep hits on every cut, cold sweep on repeats only"
        );
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.code, w.code);
            assert_eq!(c.saved_cycles, w.saved_cycles);
        }
    }

    #[test]
    fn forced_fingerprint_collision_still_yields_distinct_codes() {
        // A constant fingerprint sends every raw encoding to one bucket: layer 2
        // alone would conflate all graphs, so this pins the raw-encoding
        // confirmation (and the collision accounting).
        let config = GroupConfig::new(3, 1);
        let memo = CanonMemo::with_fingerprinter(2, |_| 0x42);
        let (ctx, cuts) = block("collide", 1);
        let memoized = canonicalize_cuts_memo(&ctx, &cuts, &config, &memo);
        let plain = canonicalize_cuts(&ctx, &cuts, &config);
        for (p, m) in plain.iter().zip(&memoized) {
            assert_eq!(p.code, m.code, "collisions must not corrupt codes");
        }
        // The MAC (add+mul) and the tail (shl+xor) are non-isomorphic but share
        // the forced pre-key; they must still get distinct codes.
        let mac = memoized.iter().find(|c| c.ops == "add+mul").unwrap();
        let tail = memoized.iter().find(|c| c.ops == "shl+xor").unwrap();
        assert_ne!(mac.code, tail.code);
        let stats = memo.stats();
        assert_eq!(stats.entries, stats.labeler_runs);
        assert!(
            stats.fingerprint_hits > stats.raw_hits,
            "colliding lookups match the bucket but fail raw confirmation"
        );
    }

    #[test]
    fn merit_is_cached_per_port_configuration() {
        let (ctx, cuts) = block("ports", 1);
        let memo = CanonMemo::new();
        let wide = canonicalize_cuts_memo(&ctx, &cuts, &GroupConfig::new(3, 1), &memo);
        let runs = memo.stats().labeler_runs;
        // Different ports: codes hit the memo (no new labeler runs), merits are
        // recomputed for the new configuration — and match a cold run exactly.
        let narrow = canonicalize_cuts_memo(&ctx, &cuts, &GroupConfig::new(2, 1), &memo);
        assert_eq!(memo.stats().labeler_runs, runs);
        let cold = canonicalize_cuts(&ctx, &cuts, &GroupConfig::new(2, 1));
        for (c, n) in cold.iter().zip(&narrow) {
            assert_eq!(c.saved_cycles, n.saved_cycles);
            assert_eq!(c.code, n.code);
        }
        assert!(
            wide.iter()
                .zip(&narrow)
                .any(|(w, n)| w.saved_cycles != n.saved_cycles),
            "port pressure must change some merit, or this test checks nothing"
        );
    }

    #[test]
    fn sharing_one_memo_across_threads_is_deterministic() {
        let config = GroupConfig::new(3, 1);
        let blocks: Vec<_> = (0..4).map(|i| block(&format!("t{i}"), 1 + i % 2)).collect();
        let serial: Vec<_> = blocks
            .iter()
            .map(|(ctx, cuts)| canonicalize_cuts(ctx, cuts, &config))
            .collect();
        let memo = CanonMemo::with_shards(2);
        let parallel: Vec<_> = std::thread::scope(|scope| {
            let handles: Vec<_> = blocks
                .iter()
                .map(|(ctx, cuts)| {
                    let memo = &memo;
                    let config = &config;
                    scope.spawn(move || canonicalize_cuts_memo(ctx, cuts, config, memo))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.len(), p.len());
            for (a, b) in s.iter().zip(p.iter()) {
                assert_eq!(a.code, b.code);
                assert_eq!(a.saved_cycles, b.saved_cycles);
                assert_eq!(a.ops, b.ops);
            }
        }
        let stats = memo.stats();
        assert!(
            stats.labeler_runs >= stats.entries,
            "races may run the labeler twice but never lose an entry"
        );
    }
}
