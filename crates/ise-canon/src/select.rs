//! Corpus-level ISE selection: one custom instruction credited with all of its
//! occurrences.
//!
//! The per-block greedy selector (`ise_enum::select_ises`) values a cut by its
//! saving in one block; a cut recurring in fifteen blocks is worth no more than one
//! that appears once. This module selects *patterns* instead: the merit of a pattern
//! is `occurrences × saved_cycles`, with overlap resolved per block (two placements
//! may not share a vertex), following the grouping flows of ISEGEN and ARISE.
//!
//! The algorithm is lazy greedy: patterns are ranked by an upper bound on their
//! marginal benefit (all occurrences realizable); the top pattern's true marginal
//! benefit against the current per-block used sets is computed, and the pattern is
//! committed when that true value still beats every other bound — otherwise the
//! bound is tightened and the scan repeats. Marginal benefits only shrink as
//! placements accumulate, so this matches eager greedy exactly while skipping most
//! recomputation. Ties break toward first-seen patterns, making the selection a
//! deterministic function of the index.

use std::collections::BTreeMap;

use ise_enum::Cut;
use ise_graph::DenseNodeSet;

use crate::index::{Occurrence, PatternIndex};

/// One selected pattern with its realized placements.
#[derive(Clone, Debug)]
pub struct GlobalChoice {
    /// Index of the pattern in [`PatternIndex::entries`].
    pub entry: usize,
    /// The occurrences actually placed (non-overlapping per block), in streaming
    /// order.
    pub placed: Vec<Occurrence>,
    /// Unweighted cycles saved per full-corpus execution: `placed × saved_cycles`.
    pub saved_cycles: u64,
    /// Profile-weighted saving: `Σ block_weight × saved_cycles` over placements.
    pub weighted_saved_cycles: f64,
}

/// The outcome of corpus-level selection.
#[derive(Clone, Debug, Default)]
pub struct GlobalSelection {
    /// Chosen patterns in selection order (descending marginal benefit).
    pub chosen: Vec<GlobalChoice>,
    /// Total unweighted cycles saved per full-corpus execution.
    pub total_saved_cycles: u64,
    /// Total profile-weighted saving.
    pub weighted_saved_cycles: f64,
    /// Cycles saved within each block, indexed like the corpus.
    pub per_block_saved_cycles: Vec<u64>,
}

/// Selects up to `max_patterns` patterns (0 = unlimited) by corpus-wide benefit.
///
/// `block_cuts[b]` must be the cut list of block `b` exactly as it was streamed into
/// `index` — occurrences are resolved through it for overlap checking.
///
/// Unlike per-block selection, a selected pattern is placed at *every*
/// non-overlapping occurrence: reusing an already implemented instruction at another
/// site costs no additional hardware, so only the number of distinct patterns is
/// budgeted.
///
/// # Panics
///
/// Panics if `block_cuts` does not match the number of blocks in the index.
///
/// # Example
///
/// ```
/// use ise_canon::{select_ises_global, GroupConfig, PatternIndex};
/// use ise_enum::{enumerate_cuts, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut index = PatternIndex::new(GroupConfig::default());
/// let mut all_cuts = Vec::new();
/// for name in ["first", "second"] {
///     let mut b = DfgBuilder::new(name);
///     let a = b.input("a");
///     let x = b.input("x");
///     let acc = b.input("acc");
///     let m = b.node(Operation::Mul, &[a, x]);
///     let s = b.node(Operation::Add, &[m, acc]);
///     b.mark_output(s);
///     let dfg = b.build().unwrap();
///     let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1).unwrap()).unwrap();
///     let ctx = EnumContext::new(dfg);
///     index.add_block(&ctx, &cuts.cuts, 1.0);
///     all_cuts.push(cuts.cuts);
/// }
/// let views: Vec<&[_]> = all_cuts.iter().map(Vec::as_slice).collect();
/// let selection = select_ises_global(&index, &views, 1);
/// assert_eq!(selection.chosen.len(), 1);
/// // The one chosen instruction is credited in both blocks.
/// assert_eq!(selection.chosen[0].placed.len(), 2);
/// ```
pub fn select_ises_global(
    index: &PatternIndex,
    block_cuts: &[&[Cut]],
    max_patterns: usize,
) -> GlobalSelection {
    assert_eq!(
        block_cuts.len(),
        index.num_blocks(),
        "block_cuts must cover every block of the index"
    );
    let entries = index.entries();
    let mut bound: Vec<f64> = entries
        .iter()
        .map(crate::index::PatternEntry::weighted_potential)
        .collect();
    let mut alive: Vec<bool> = bound.iter().map(|&b| b > 0.0).collect();
    let mut used: Vec<Option<DenseNodeSet>> = vec![None; block_cuts.len()];
    let mut selection = GlobalSelection {
        per_block_saved_cycles: vec![0; block_cuts.len()],
        ..GlobalSelection::default()
    };

    loop {
        if max_patterns > 0 && selection.chosen.len() == max_patterns {
            break;
        }
        // Highest bound, first-seen on ties (strict `>` keeps the lowest index).
        let mut best: Option<usize> = None;
        for e in 0..entries.len() {
            if alive[e] && bound[e] > 0.0 && best.is_none_or(|b| bound[e] > bound[b]) {
                best = Some(e);
            }
        }
        let Some(e) = best else { break };

        let (placed, overlay) = place(&entries[e].occurrences, block_cuts, &used);
        let weighted: f64 = placed
            .iter()
            .map(|occ| index.block_weight(occ.block) * f64::from(entries[e].saved_cycles))
            .sum();
        let runner_up = (0..entries.len())
            .filter(|&o| o != e && alive[o])
            .map(|o| bound[o])
            .fold(0.0f64, f64::max);
        if weighted < runner_up {
            // The bound was stale; tighten it and rescan. Marginal benefits only
            // shrink, so `weighted` is the exact current value.
            bound[e] = weighted;
            alive[e] = weighted > 0.0;
            continue;
        }
        if weighted == runner_up {
            // Exact tie with another bound: eager greedy breaks true-marginal
            // ties toward the first-seen pattern, so only commit `e` if no
            // lower-index live pattern could still tie it. Otherwise record the
            // now-exact bound and rescan — the scan prefers the lowest index
            // among equal bounds, so the contender is evaluated next, and every
            // deferral either tightens a bound strictly or ends in a commit.
            let lowest_contender = (0..entries.len()).find(|&o| alive[o] && bound[o] >= weighted);
            if lowest_contender != Some(e) {
                bound[e] = weighted;
                continue;
            }
        }
        alive[e] = false;
        if placed.is_empty() || entries[e].saved_cycles == 0 {
            continue;
        }
        for (block, set) in overlay {
            used[block] = Some(set);
        }
        let saved = placed.len() as u64 * u64::from(entries[e].saved_cycles);
        for occ in &placed {
            selection.per_block_saved_cycles[occ.block] += u64::from(entries[e].saved_cycles);
        }
        selection.total_saved_cycles += saved;
        selection.weighted_saved_cycles += weighted;
        selection.chosen.push(GlobalChoice {
            entry: e,
            placed,
            saved_cycles: saved,
            weighted_saved_cycles: weighted,
        });
    }
    selection
}

/// Greedily places `occurrences` (in streaming order) against the per-block used
/// sets, without mutating them: returns the placements plus the updated sets of the
/// touched blocks.
fn place(
    occurrences: &[Occurrence],
    block_cuts: &[&[Cut]],
    used: &[Option<DenseNodeSet>],
) -> (Vec<Occurrence>, BTreeMap<usize, DenseNodeSet>) {
    let mut placed = Vec::new();
    let mut overlay: BTreeMap<usize, DenseNodeSet> = BTreeMap::new();
    for &occ in occurrences {
        let body = block_cuts[occ.block][occ.cut].body();
        let set = overlay.entry(occ.block).or_insert_with(|| {
            used[occ.block]
                .clone()
                .unwrap_or_else(|| DenseNodeSet::new(body.capacity()))
        });
        if body.is_disjoint(set) {
            set.union_with(body);
            placed.push(occ);
        }
    }
    (placed, overlay)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GroupConfig;
    use ise_enum::{enumerate_cuts, select_ises, Constraints, EnumContext};
    use ise_graph::{DfgBuilder, LatencyModel, Operation};

    /// `macs` MAC datapaths plus, optionally, one long unique shift chain.
    fn block(name: &str, macs: usize, with_chain: bool) -> (EnumContext, Vec<Cut>) {
        let mut b = DfgBuilder::new(name);
        for i in 0..macs {
            let a = b.input(format!("a{i}"));
            let x = b.input(format!("x{i}"));
            let acc = b.input(format!("acc{i}"));
            let m = b.node(Operation::Mul, &[a, x]);
            let s = b.node(Operation::Add, &[m, acc]);
            b.mark_output(s);
        }
        if with_chain {
            let p = b.input("p");
            let mut v = b.node(Operation::Mul, &[p, p]);
            for _ in 0..4 {
                v = b.node(Operation::Mul, &[v, p]);
            }
            b.mark_output(v);
        }
        let dfg = b.build().unwrap();
        let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1).unwrap()).unwrap();
        (EnumContext::new(dfg), cuts.cuts)
    }

    fn build_corpus(specs: &[(&str, usize, bool)]) -> (PatternIndex, Vec<(EnumContext, Vec<Cut>)>) {
        let mut index = PatternIndex::new(GroupConfig::new(2, 1));
        let blocks: Vec<(EnumContext, Vec<Cut>)> = specs
            .iter()
            .map(|&(name, macs, chain)| block(name, macs, chain))
            .collect();
        for (ctx, cuts) in &blocks {
            index.add_block(ctx, cuts, 1.0);
        }
        (index, blocks)
    }

    #[test]
    fn recurrence_is_credited_across_blocks() {
        let (index, blocks) = build_corpus(&[("a", 2, false), ("b", 1, false), ("c", 3, false)]);
        let views: Vec<&[Cut]> = blocks.iter().map(|(_, c)| c.as_slice()).collect();
        let selection = select_ises_global(&index, &views, 0);
        assert!(!selection.chosen.is_empty());
        let top = &selection.chosen[0];
        let entry = &index.entries()[top.entry];
        // The six mul-rooted datapaths across three blocks are credited to one
        // instruction placed six times (under the default latency model the bare
        // mul and the full MAC tie on per-occurrence saving; first-seen wins).
        assert_eq!(top.placed.len(), 6);
        assert_eq!(top.saved_cycles, 6 * u64::from(entry.saved_cycles));
        let placed_blocks: Vec<usize> = top.placed.iter().map(|o| o.block).collect();
        assert!(placed_blocks.contains(&0) && placed_blocks.contains(&2));
        assert_eq!(
            selection.per_block_saved_cycles.iter().sum::<u64>(),
            selection.total_saved_cycles
        );
        // Placements never overlap within a block.
        for choice in &selection.chosen {
            for (i, a) in choice.placed.iter().enumerate() {
                for b in &choice.placed[i + 1..] {
                    if a.block == b.block {
                        assert!(views[a.block][a.cut]
                            .body()
                            .is_disjoint(views[b.block][b.cut].body()));
                    }
                }
            }
        }
    }

    #[test]
    fn pattern_budget_is_respected_and_zero_means_unlimited() {
        let (index, blocks) = build_corpus(&[("a", 2, true), ("b", 1, true)]);
        let views: Vec<&[Cut]> = blocks.iter().map(|(_, c)| c.as_slice()).collect();
        let capped = select_ises_global(&index, &views, 1);
        assert_eq!(capped.chosen.len(), 1);
        let unlimited = select_ises_global(&index, &views, 0);
        assert!(unlimited.chosen.len() > 1);
        assert!(unlimited.total_saved_cycles >= capped.total_saved_cycles);
    }

    /// With an unlimited pattern budget, crediting recurrence must not lose to the
    /// per-block greedy baseline on the same constraints.
    #[test]
    fn unlimited_global_selection_dominates_per_block_greedy() {
        let (index, blocks) = build_corpus(&[
            ("a", 3, true),
            ("b", 1, false),
            ("c", 2, true),
            ("d", 5, false),
        ]);
        let views: Vec<&[Cut]> = blocks.iter().map(|(_, c)| c.as_slice()).collect();
        let global = select_ises_global(&index, &views, 0);
        let per_block_total: u64 = blocks
            .iter()
            .map(|(ctx, cuts)| {
                u64::from(
                    select_ises(ctx, cuts, &LatencyModel::default(), 2, 1, 4).total_saved_cycles,
                )
            })
            .sum();
        assert!(
            global.total_saved_cycles >= per_block_total,
            "global {} < per-block {per_block_total}",
            global.total_saved_cycles
        );
    }

    #[test]
    fn empty_corpus_and_empty_blocks_select_nothing() {
        let index = PatternIndex::new(GroupConfig::default());
        let selection = select_ises_global(&index, &[], 0);
        assert!(selection.chosen.is_empty());
        assert_eq!(selection.total_saved_cycles, 0);
    }
}
