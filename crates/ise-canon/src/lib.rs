//! Canonical-form grouping of candidate custom instructions.
//!
//! The enumeration of `ise-enum` exists to feed an ISE *selector*, and every
//! practical selection flow in the literature (ISEGEN, ARISE) first groups
//! structurally identical candidates so that one custom instruction is credited with
//! all of its occurrences across the application. This crate provides that layer:
//!
//! * [`CanonicalCode`] — a deterministic canonical code for a cut's
//!   interface-labeled subgraph ([`ise_graph::InterfaceGraph`]): iterative
//!   refinement by (label, operand-position) coloring plus backtracking canonical
//!   labeling, with the property that codes are equal **iff** the patterns are
//!   isomorphic (argued in DESIGN.md §6).
//! * [`PatternIndex`] — streams cuts from the engine/batch pipeline, de-duplicates
//!   them by canonical code, and records per-pattern occurrence lists with static
//!   and profile-weighted frequencies.
//! * [`CanonMemo`] — a shared, lock-striped memo from raw interface-graph
//!   encodings to canonical codes (fingerprint pre-key, confirmed by the full
//!   encoding), so the labeler runs once per distinct raw graph instead of once
//!   per cut; [`canonicalize_cuts_memo`] is the memoized coding path.
//! * [`select_ises_global`] — corpus-level selection: pattern merit is
//!   `occurrences × saved_cycles` with per-block overlap resolution, so recurrence
//!   finally counts. The per-block greedy of `ise_enum::select_ises` remains
//!   available as a mode; nothing is replaced.
//!
//! # Example
//!
//! ```
//! use ise_canon::{CanonicalCode, GroupConfig, PatternIndex};
//! use ise_enum::{enumerate_cuts, Constraints, EnumContext};
//! use ise_graph::{DfgBuilder, Operation};
//!
//! // The same multiply–accumulate appears in two blocks; the index groups it.
//! let mut index = PatternIndex::new(GroupConfig::default());
//! for name in ["alpha", "beta"] {
//!     let mut b = DfgBuilder::new(name);
//!     let a = b.input("a");
//!     let x = b.input("x");
//!     let acc = b.input("acc");
//!     let m = b.node(Operation::Mul, &[a, x]);
//!     let s = b.node(Operation::Add, &[m, acc]);
//!     b.mark_output(s);
//!     let dfg = b.build().unwrap();
//!     let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1).unwrap()).unwrap();
//!     let ctx = EnumContext::new(dfg);
//!     index.add_block(&ctx, &cuts.cuts, 1.0);
//! }
//! assert!(index
//!     .entries()
//!     .iter()
//!     .any(|e| e.static_count() == 2 && e.distinct_blocks() == 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod canon;
mod index;
mod memo;
mod select;

pub use canon::CanonicalCode;
pub use index::{
    canonicalize_cuts, canonicalize_cuts_memo, CodedCut, GroupConfig, Occurrence, PatternEntry,
    PatternIndex,
};
pub use memo::{CanonMemo, MemoStats};
pub use select::{select_ises_global, GlobalChoice, GlobalSelection};
