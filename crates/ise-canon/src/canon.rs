//! Deterministic canonical codes for interface-labeled pattern graphs.
//!
//! Two cuts describe the same custom instruction exactly when their
//! [`InterfaceGraph`]s are isomorphic: same labels, same operand wiring (order
//! included), same output flags. This module computes a *canonical code* — a
//! serialized form with the property that codes are equal **iff** the graphs are
//! isomorphic — so that recognizing recurrence reduces to hashing bytes.
//!
//! The algorithm is the classic individualization–refinement scheme specialized to
//! these small DAGs:
//!
//! 1. **Iterative refinement.** Nodes start colored by `(label, is-output)` and are
//!    repeatedly re-colored by the signature `(own color, operand colors *in operand
//!    order*, sorted (operand-position, color) pairs of their consumers)` until the
//!    partition stabilizes. Every step is an isomorphism invariant, so isomorphic
//!    graphs always refine to corresponding partitions.
//! 2. **Backtracking canonical labeling.** If the stable partition is not discrete
//!    (true automorphisms remain — e.g. two identical disconnected components), the
//!    first non-singleton color class is split by individualizing each member in
//!    turn, refining, and recursing; the lexicographically smallest serialization
//!    over all discrete leaves is the code. Candidate cuts are small (the I/O
//!    constraints bound their interface and operand positions break almost all
//!    symmetry), so the backtracking is cheap in practice.
//!
//! See DESIGN.md §6 for the soundness and completeness argument.

use std::cmp::Ordering;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use ise_graph::{InterfaceGraph, InterfaceLabel};

/// The canonical code of an [`InterfaceGraph`]: equal codes ⇔ isomorphic graphs.
///
/// The code is an explicit serialization of the graph under its canonical node
/// order (not just a hash), so equality is exact — no collision risk in the
/// grouping maps. [`CanonicalCode::hash64`] provides a compact digest for display.
///
/// # Example
///
/// ```
/// use ise_canon::CanonicalCode;
/// use ise_graph::{DenseNodeSet, DfgBuilder, InterfaceGraph, Operation};
///
/// // The same MAC expressed with different node orders gets the same code.
/// let mut b = DfgBuilder::new("one");
/// let a = b.input("a");
/// let x = b.input("x");
/// let m = b.node(Operation::Mul, &[a, x]);
/// let acc = b.input("acc");
/// let s = b.node(Operation::Add, &[m, acc]);
/// let one = b.build().unwrap();
/// let body = DenseNodeSet::from_nodes(one.len(), [m, s]);
/// let code_one = CanonicalCode::of(&InterfaceGraph::extract(&one, &body));
///
/// let mut b = DfgBuilder::new("two");
/// let acc = b.input("acc");
/// let x = b.input("x");
/// let a = b.input("a");
/// let m = b.node(Operation::Mul, &[a, x]);
/// let s = b.node(Operation::Add, &[m, acc]);
/// let two = b.build().unwrap();
/// let body = DenseNodeSet::from_nodes(two.len(), [m, s]);
/// let code_two = CanonicalCode::of(&InterfaceGraph::extract(&two, &body));
///
/// assert_eq!(code_one, code_two);
/// ```
#[derive(Clone, Debug)]
pub struct CanonicalCode {
    /// The serialized words under the canonical node order — shared, because the
    /// memo and the pattern index clone codes freely and the words never mutate.
    words: Arc<[u32]>,
    /// 64-bit digest of `words`, computed once at construction. Backs [`hash64`]
    /// (`hex()` pattern ids, every report row) and fast-paths `Hash`/`Eq`, which
    /// matter for the memo and grouping maps keyed by code.
    ///
    /// [`hash64`]: Self::hash64
    digest: u64,
}

/// Equality fast-paths on the digest: different digests prove different words, equal
/// digests are confirmed by the full word comparison (so collisions stay harmless).
impl PartialEq for CanonicalCode {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.words == other.words
    }
}

impl Eq for CanonicalCode {}

/// Ordering compares words only — the digest is derived, so this is consistent with
/// `Eq` by construction.
impl Ord for CanonicalCode {
    fn cmp(&self, other: &Self) -> Ordering {
        self.words.cmp(&other.words)
    }
}

impl PartialOrd for CanonicalCode {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Hashing writes only the precomputed digest: `HashMap<CanonicalCode, _>` lookups
/// no longer re-walk the word vector.
impl Hash for CanonicalCode {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

impl CanonicalCode {
    fn from_words(words: Vec<u32>) -> CanonicalCode {
        let digest = digest_words(&words);
        CanonicalCode {
            words: words.into(),
            digest,
        }
    }

    /// Computes the canonical code of `graph`.
    pub fn of(graph: &InterfaceGraph) -> CanonicalCode {
        let n = graph.len();
        if n == 0 {
            return CanonicalCode::from_words(vec![0]);
        }
        // Reverse adjacency with operand positions: consumers[v] lists every
        // (position, consumer) pair where `consumer` reads `v` at `position`.
        let mut consumers: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for v in 0..n {
            for (pos, &o) in graph.operands(v).iter().enumerate() {
                consumers[o].push((pos as u32, v as u32));
            }
        }

        let mut colors: Vec<u32> = (0..n)
            .map(|v| initial_key(graph.label(v), graph.is_output(v)))
            .collect();
        rank_dense(&mut colors);
        refine(graph, &consumers, &mut colors);

        let mut best: Option<Vec<u32>> = None;
        search(graph, &consumers, colors, &mut best);
        CanonicalCode::from_words(best.expect("the search visits at least one discrete leaf"))
    }

    /// The raw serialized words of the code.
    pub fn as_words(&self) -> &[u32] {
        &self.words
    }

    /// The 64-bit digest of the code (FNV-1a with a finalizer), precomputed at
    /// construction, for compact display. Grouping itself always compares full
    /// codes, never digests.
    pub fn hash64(&self) -> u64 {
        self.digest
    }

    /// The digest as a fixed-width lower-case hex string — the pattern id shown in
    /// reports.
    pub fn hex(&self) -> String {
        format!("{:016x}", self.hash64())
    }
}

/// FNV-1a over the little-endian word bytes with a murmur-style finalizer, so
/// truncations of the digest stay well mixed. Also the default fingerprint of the
/// memo's raw encodings (`memo::CanonMemo`).
pub(crate) fn digest_words(words: &[u32]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^ (h >> 33)
}

/// The initial color key of a node — delegated to [`InterfaceLabel::stable_key`],
/// which is also the per-node word of the raw encoding, so the refinement's starting
/// coloring and the memo key can never disagree.
fn initial_key(label: InterfaceLabel, is_output: bool) -> u32 {
    label.stable_key(is_output)
}

/// Re-ranks arbitrary color values into dense ranks `0..k`, preserving order.
fn rank_dense(colors: &mut [u32]) {
    let mut distinct: Vec<u32> = colors.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    for c in colors.iter_mut() {
        *c = distinct.partition_point(|&d| d < *c) as u32;
    }
}

fn class_count(colors: &[u32]) -> usize {
    let mut distinct: Vec<u32> = colors.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

/// Refines `colors` to the coarsest stable partition: each round re-colors every
/// node by its structural signature and stops when no class splits further.
/// Signatures embed the previous color, so classes never merge and the loop is
/// bounded by `n` rounds.
fn refine(graph: &InterfaceGraph, consumers: &[Vec<(u32, u32)>], colors: &mut [u32]) {
    let n = graph.len();
    let mut classes = class_count(colors);
    loop {
        let mut signatures: Vec<Vec<u64>> = Vec::with_capacity(n);
        for v in 0..n {
            let mut sig: Vec<u64> = Vec::with_capacity(3 + graph.operands(v).len());
            sig.push(u64::from(colors[v]));
            sig.push(u64::MAX); // separator: operand list follows, in operand order
            sig.extend(graph.operands(v).iter().map(|&o| u64::from(colors[o])));
            sig.push(u64::MAX); // separator: consumer multiset follows, sorted
            let mut cons: Vec<u64> = consumers[v]
                .iter()
                .map(|&(pos, c)| (u64::from(pos) << 32) | u64::from(colors[c as usize]))
                .collect();
            cons.sort_unstable();
            sig.extend(cons);
            signatures.push(sig);
        }
        let mut distinct: Vec<&Vec<u64>> = signatures.iter().collect();
        distinct.sort_unstable();
        distinct.dedup();
        for (v, color) in colors.iter_mut().enumerate() {
            *color = distinct.partition_point(|s| *s < &signatures[v]) as u32;
        }
        let new_classes = distinct.len();
        if new_classes == classes {
            return;
        }
        classes = new_classes;
    }
}

/// Explores the individualization–refinement tree, keeping the lexicographically
/// smallest serialization over all discrete leaves in `best`. `colors` must already
/// be refined.
fn search(
    graph: &InterfaceGraph,
    consumers: &[Vec<(u32, u32)>],
    colors: Vec<u32>,
    best: &mut Option<Vec<u32>>,
) {
    let n = graph.len();
    if class_count(&colors) == n {
        let code = serialize(graph, &colors);
        if best.as_ref().is_none_or(|b| code < *b) {
            *best = Some(code);
        }
        return;
    }
    // The target cell — the first color with several members — is an isomorphism
    // invariant, so corresponding cells are split in corresponding graphs.
    let target = (0..n as u32)
        .find(|&c| colors.iter().filter(|&&x| x == c).count() > 1)
        .expect("a non-discrete partition has a non-singleton class");
    for v in 0..n {
        if colors[v] != target {
            continue;
        }
        // Individualize v: order it strictly before the rest of its class, then
        // refine. Doubling preserves the relative order of all other classes.
        let mut next: Vec<u32> = colors.iter().map(|&c| c * 2 + 1).collect();
        next[v] -= 1;
        rank_dense(&mut next);
        refine(graph, consumers, &mut next);
        search(graph, consumers, next, best);
    }
}

/// Serializes the graph under a discrete coloring (`colors[v]` is the canonical
/// position of `v`): node count, then per canonical position the label, output flag
/// and operand list as canonical positions, in operand order. Equal serializations
/// reconstruct identical graphs, which is what makes the code complete.
fn serialize(graph: &InterfaceGraph, colors: &[u32]) -> Vec<u32> {
    let n = graph.len();
    let mut by_position: Vec<usize> = vec![0; n];
    for (v, &c) in colors.iter().enumerate() {
        by_position[c as usize] = v;
    }
    let mut code = Vec::with_capacity(1 + 3 * n);
    code.push(n as u32);
    for &v in &by_position {
        code.push(initial_key(graph.label(v), graph.is_output(v)));
        code.push(graph.operands(v).len() as u32);
        code.extend(graph.operands(v).iter().map(|&o| colors[o]));
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DenseNodeSet, Dfg, DfgBuilder, NodeId, Operation};

    fn whole_body(dfg: &Dfg) -> DenseNodeSet {
        DenseNodeSet::from_nodes(dfg.len(), dfg.node_ids().filter(|&v| !dfg.is_forbidden(v)))
    }

    fn code_of(dfg: &Dfg, body: &DenseNodeSet) -> CanonicalCode {
        CanonicalCode::of(&InterfaceGraph::extract(dfg, body))
    }

    #[test]
    fn node_order_does_not_change_the_code() {
        // y = (a + c) << 1, built in two different declaration orders.
        let mut b = DfgBuilder::new("fwd");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let _y = b.node(Operation::Shl, &[n]);
        let fwd = b.build().unwrap();

        let mut b = DfgBuilder::new("rev");
        let c = b.input("c");
        let a = b.input("a");
        let n = b.node(Operation::Add, &[a, c]);
        let _y = b.node(Operation::Shl, &[n]);
        let rev = b.build().unwrap();

        assert_eq!(
            code_of(&fwd, &whole_body(&fwd)),
            code_of(&rev, &whole_body(&rev))
        );
    }

    #[test]
    fn operations_and_output_flags_distinguish_codes() {
        let mut b = DfgBuilder::new("add");
        let a = b.input("a");
        let c = b.input("c");
        let _ = b.node(Operation::Add, &[a, c]);
        let add = b.build().unwrap();

        let mut b = DfgBuilder::new("xor");
        let a = b.input("a");
        let c = b.input("c");
        let _ = b.node(Operation::Xor, &[a, c]);
        let xor = b.build().unwrap();
        assert_ne!(
            code_of(&add, &whole_body(&add)),
            code_of(&xor, &whole_body(&xor))
        );

        // Same body, different interface: marking n externally visible adds an
        // output flag and must change the code.
        let mut b = DfgBuilder::new("flag");
        let a = b.input("a");
        let n = b.node(Operation::Not, &[a]);
        let m = b.node(Operation::Add, &[n, a]);
        b.mark_output(n);
        let flagged = b.build().unwrap();
        let mut b = DfgBuilder::new("plain");
        let a = b.input("a");
        let n2 = b.node(Operation::Not, &[a]);
        let _m = b.node(Operation::Add, &[n2, a]);
        let plain = b.build().unwrap();
        let body_f = DenseNodeSet::from_nodes(flagged.len(), [n, m]);
        let body_p = whole_body(&plain);
        assert_ne!(code_of(&flagged, &body_f), code_of(&plain, &body_p));
    }

    #[test]
    fn operand_order_matters_for_distinguishable_operands() {
        // y = sub(not(a), a)  vs  y = sub(a, not(a)): same multiset of edges but
        // different operand positions — structurally different datapaths.
        let mut b = DfgBuilder::new("xy");
        let a = b.input("a");
        let x = b.node(Operation::Not, &[a]);
        let _y = b.node(Operation::Sub, &[x, a]);
        let first = b.build().unwrap();

        let mut b = DfgBuilder::new("yx");
        let a = b.input("a");
        let x = b.node(Operation::Not, &[a]);
        let _y = b.node(Operation::Sub, &[a, x]);
        let second = b.build().unwrap();

        assert_ne!(
            code_of(&first, &whole_body(&first)),
            code_of(&second, &whole_body(&second))
        );
    }

    #[test]
    fn anonymous_input_swap_is_an_isomorphism() {
        // sub(in0, in1) and sub(in1, in0) are the same pattern: inputs carry no
        // identity, so swapping them is a legal isomorphism.
        let mut b = DfgBuilder::new("ab");
        let a = b.input("a");
        let c = b.input("c");
        let _ = b.node(Operation::Sub, &[a, c]);
        let ab = b.build().unwrap();

        let mut b = DfgBuilder::new("ba");
        let a = b.input("a");
        let c = b.input("c");
        let _ = b.node(Operation::Sub, &[c, a]);
        let ba = b.build().unwrap();

        assert_eq!(
            code_of(&ab, &whole_body(&ab)),
            code_of(&ba, &whole_body(&ba))
        );
    }

    #[test]
    fn automorphic_components_terminate_and_match_under_relabeling() {
        // Two identical disconnected not-chains: a true automorphism, forcing the
        // backtracking branch. Codes must agree however the chains are interleaved.
        let build = |interleave: bool| {
            let mut b = DfgBuilder::new("twins");
            if interleave {
                let a1 = b.input("a1");
                let a2 = b.input("a2");
                let x1 = b.node(Operation::Not, &[a1]);
                let x2 = b.node(Operation::Not, &[a2]);
                let _ = b.node(Operation::Shl, &[x1]);
                let _ = b.node(Operation::Shl, &[x2]);
            } else {
                let a1 = b.input("a1");
                let x1 = b.node(Operation::Not, &[a1]);
                let _ = b.node(Operation::Shl, &[x1]);
                let a2 = b.input("a2");
                let x2 = b.node(Operation::Not, &[a2]);
                let _ = b.node(Operation::Shl, &[x2]);
            }
            b.build().unwrap()
        };
        let one = build(true);
        let two = build(false);
        assert_eq!(
            code_of(&one, &whole_body(&one)),
            code_of(&two, &whole_body(&two))
        );
    }

    #[test]
    fn empty_and_singleton_graphs_have_codes() {
        let mut b = DfgBuilder::new("one");
        let a = b.input("a");
        let x = b.node(Operation::Not, &[a]);
        let dfg = b.build().unwrap();
        let empty = DenseNodeSet::new(dfg.len());
        assert_eq!(
            CanonicalCode::of(&InterfaceGraph::extract(&dfg, &empty)).as_words(),
            &[0]
        );
        let single = DenseNodeSet::from_nodes(dfg.len(), [x]);
        let code = code_of(&dfg, &single);
        assert_eq!(code.as_words()[0], 2, "input + body node");
        assert_eq!(code.hex().len(), 16);
        assert_ne!(code.hash64(), 0);
        let _ = NodeId::new(0);
    }
}
