//! The pattern index: streaming cuts into canonical-form groups.

use std::collections::HashMap;

use ise_enum::{estimate_merit, Cut, EnumContext};
use ise_graph::{LatencyModel, RawEncoder};

use crate::canon::CanonicalCode;
use crate::memo::{merit_key, CanonMemo};

/// One occurrence of a pattern: which block and which cut (by index into that
/// block's enumeration order) realizes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Occurrence {
    /// Index of the block in the order blocks were added to the index.
    pub block: usize,
    /// Index of the cut within the block's cut list.
    pub cut: usize,
}

/// Merit settings shared by grouping and global selection: the latency model and the
/// register-file ports assumed for operand transfer (see `ise_enum::estimate_merit`).
#[derive(Clone, Debug)]
pub struct GroupConfig {
    /// The latency model used to estimate per-occurrence savings.
    pub model: LatencyModel,
    /// Register-file read ports available per cycle.
    pub ports_in: usize,
    /// Register-file write ports available per cycle.
    pub ports_out: usize,
}

impl GroupConfig {
    /// Creates a configuration with the given port counts and the default model.
    pub fn new(ports_in: usize, ports_out: usize) -> Self {
        GroupConfig {
            model: LatencyModel::default(),
            ports_in,
            ports_out,
        }
    }
}

impl Default for GroupConfig {
    /// The paper's standard constraints: four read ports, two write ports.
    fn default() -> Self {
        GroupConfig::new(4, 2)
    }
}

/// One cut reduced to its pattern facts: the canonical code plus everything the
/// index aggregates. Produced by [`canonicalize_cuts`], consumed by
/// [`PatternIndex::add_coded_block`] — the split exists so batch drivers can
/// canonicalize blocks on worker threads and merge sequentially (deterministically)
/// afterwards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodedCut {
    /// The canonical code of the cut's interface graph.
    pub code: CanonicalCode,
    /// Body size in vertices.
    pub size: usize,
    /// Number of input operands.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Sorted, counted operation summary (e.g. `add+mul*2`).
    pub ops: String,
    /// Estimated cycles saved per execution of one occurrence.
    pub saved_cycles: u32,
}

/// Canonicalizes every cut of one block under `config`.
///
/// Pure per-block work — safe to run on worker threads; feed the results to
/// [`PatternIndex::add_coded_block`] in block order for deterministic grouping.
pub fn canonicalize_cuts(ctx: &EnumContext, cuts: &[Cut], config: &GroupConfig) -> Vec<CodedCut> {
    cuts.iter()
        .map(|cut| {
            let graph = cut.interface_graph(ctx);
            let merit = estimate_merit(ctx, cut, &config.model, config.ports_in, config.ports_out);
            CodedCut {
                code: CanonicalCode::of(&graph),
                size: cut.len(),
                inputs: cut.inputs().len(),
                outputs: cut.outputs().len(),
                ops: graph.ops_summary(),
                saved_cycles: merit.saved_cycles,
            }
        })
        .collect()
}

/// [`canonicalize_cuts`] through a shared [`CanonMemo`]: identical output (pinned
/// by tests), but the backtracking labeler runs only for raw graphs the memo has
/// never seen.
///
/// Per cut, the hot path is: encode the cut's interface graph into one reused
/// buffer ([`RawEncoder`], no allocation after the first cut), look the encoding up
/// in the memo, and on a hit copy the cached code/ops/merit — neither the
/// [`ise_graph::InterfaceGraph`] nor the merit estimator's block-sized scratch is
/// ever built. Merit is cached per `(ports_in, ports_out)` under the default
/// latency model; a non-default model bypasses the merit cache (codes and ops
/// still memoize) because the memo may be shared across configurations.
///
/// Caching merit by raw encoding is sound because equal encodings mean
/// *identical* interface graphs: `estimate_merit` is a function of the graph's
/// internal wiring and interface counts, so the cached value is bit-identical to
/// a recomputation — determinism, not just accuracy.
pub fn canonicalize_cuts_memo(
    ctx: &EnumContext,
    cuts: &[Cut],
    config: &GroupConfig,
    memo: &CanonMemo,
) -> Vec<CodedCut> {
    let dfg = ctx.dfg();
    let mut encoder = RawEncoder::new(dfg);
    let mut raw: Vec<u32> = Vec::new();
    let cache_merit = config.model == LatencyModel::default();
    let key = merit_key(config.ports_in, config.ports_out);
    cuts.iter()
        .map(|cut| {
            encoder.encode(dfg, cut.body(), &mut raw);
            if let Some(hit) = memo.lookup(&raw, key) {
                let saved_cycles = match hit.saved_cycles.filter(|_| cache_merit) {
                    Some(saved) => saved,
                    None => {
                        let merit = estimate_merit(
                            ctx,
                            cut,
                            &config.model,
                            config.ports_in,
                            config.ports_out,
                        );
                        if cache_merit {
                            memo.record_merit(&raw, key, merit.saved_cycles);
                        }
                        merit.saved_cycles
                    }
                };
                return CodedCut {
                    code: hit.code,
                    size: cut.len(),
                    inputs: cut.inputs().len(),
                    outputs: cut.outputs().len(),
                    ops: hit.ops,
                    saved_cycles,
                };
            }
            let graph = cut.interface_graph(ctx);
            debug_assert_eq!(
                graph.raw_encoding(),
                raw,
                "RawEncoder must agree with InterfaceGraph::extract"
            );
            let merit = estimate_merit(ctx, cut, &config.model, config.ports_in, config.ports_out);
            let code = CanonicalCode::of(&graph);
            let ops = graph.ops_summary();
            // Under a non-default model the code and ops still memoize, but the
            // merit is filed under a sentinel key no real port configuration
            // maps to, so it can never be served to a default-model caller.
            let stored_key = if cache_merit { key } else { u64::MAX };
            memo.insert(&raw, &code, &ops, stored_key, merit.saved_cycles);
            CodedCut {
                code,
                size: cut.len(),
                inputs: cut.inputs().len(),
                outputs: cut.outputs().len(),
                ops,
                saved_cycles: merit.saved_cycles,
            }
        })
        .collect()
}

/// One canonical pattern: its structural facts plus every occurrence recorded so far.
///
/// `saved_cycles` is a property of the *pattern*, not the occurrence: the merit
/// estimate depends only on the operation multiset, the internal wiring and the
/// interface port counts, all of which are isomorphism invariants (asserted in this
/// module's tests).
#[derive(Clone, Debug)]
pub struct PatternEntry {
    /// The canonical code keying this pattern.
    pub code: CanonicalCode,
    /// Body size in vertices.
    pub size: usize,
    /// Number of input operands.
    pub inputs: usize,
    /// Number of outputs.
    pub outputs: usize,
    /// Sorted, counted operation summary (e.g. `add+mul*2`).
    pub ops: String,
    /// Estimated cycles saved per execution of one occurrence.
    pub saved_cycles: u32,
    /// Every occurrence, in (block, cut) streaming order.
    pub occurrences: Vec<Occurrence>,
    /// Profile-weighted occurrence count: the sum of the owning blocks' weights
    /// (1.0 per occurrence when no profile is attached).
    pub weighted_count: f64,
}

impl PatternEntry {
    /// Number of occurrences (static frequency).
    pub fn static_count(&self) -> usize {
        self.occurrences.len()
    }

    /// Number of distinct blocks the pattern occurs in.
    pub fn distinct_blocks(&self) -> usize {
        // Occurrences stream in block order, so counting block transitions suffices.
        let mut blocks = 0;
        let mut last = usize::MAX;
        for occ in &self.occurrences {
            if occ.block != last {
                blocks += 1;
                last = occ.block;
            }
        }
        blocks
    }

    /// The first occurrence seen — the representative shown in reports.
    pub fn example(&self) -> Occurrence {
        self.occurrences[0]
    }

    /// Upper bound on the unweighted corpus-wide saving: every occurrence realized.
    pub fn potential_saved_cycles(&self) -> u64 {
        self.static_count() as u64 * u64::from(self.saved_cycles)
    }

    /// Upper bound on the profile-weighted corpus-wide saving.
    pub fn weighted_potential(&self) -> f64 {
        self.weighted_count * f64::from(self.saved_cycles)
    }
}

/// Groups streamed cuts by canonical code, recording per-pattern occurrence lists
/// and aggregate frequencies.
///
/// Blocks are added in corpus order; entries are created in first-seen order, so the
/// whole index is a deterministic function of the block sequence — independent of
/// how many threads produced the per-block cut lists or codes.
///
/// # Example
///
/// ```
/// use ise_canon::{GroupConfig, PatternIndex};
/// use ise_enum::{enumerate_cuts, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, Operation};
///
/// // Two blocks, each containing the same a*b+c datapath.
/// let mut index = PatternIndex::new(GroupConfig::default());
/// for name in ["first", "second"] {
///     let mut b = DfgBuilder::new(name);
///     let a = b.input("a");
///     let x = b.input("x");
///     let acc = b.input("acc");
///     let m = b.node(Operation::Mul, &[a, x]);
///     let s = b.node(Operation::Add, &[m, acc]);
///     b.mark_output(s);
///     let dfg = b.build().unwrap();
///     let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1).unwrap()).unwrap();
///     let ctx = EnumContext::new(dfg);
///     index.add_block(&ctx, &cuts.cuts, 1.0);
/// }
/// let mac = index
///     .entries()
///     .iter()
///     .find(|e| e.size == 2 && e.ops == "add+mul")
///     .expect("the MAC pattern recurs");
/// assert_eq!(mac.static_count(), 2);
/// assert_eq!(mac.distinct_blocks(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct PatternIndex {
    config: GroupConfig,
    map: HashMap<CanonicalCode, usize>,
    entries: Vec<PatternEntry>,
    block_weights: Vec<f64>,
    total_cuts: usize,
}

impl PatternIndex {
    /// Creates an empty index using `config` for merit estimates.
    pub fn new(config: GroupConfig) -> Self {
        PatternIndex {
            config,
            map: HashMap::new(),
            entries: Vec::new(),
            block_weights: Vec::new(),
            total_cuts: 0,
        }
    }

    /// The merit settings of this index.
    pub fn config(&self) -> &GroupConfig {
        &self.config
    }

    /// Canonicalizes and records every cut of the next block; returns the block's
    /// index. `weight` is the block's profile weight (1.0 without a profile).
    pub fn add_block(&mut self, ctx: &EnumContext, cuts: &[Cut], weight: f64) -> usize {
        let coded = canonicalize_cuts(ctx, cuts, &self.config);
        self.add_coded_block(coded, weight)
    }

    /// Records a block whose cuts were canonicalized elsewhere (possibly on another
    /// thread); returns the block's index. Blocks must be added in corpus order for
    /// the index to be deterministic.
    pub fn add_coded_block(&mut self, coded: Vec<CodedCut>, weight: f64) -> usize {
        let block = self.block_weights.len();
        self.block_weights.push(weight);
        for (cut_index, coded_cut) in coded.into_iter().enumerate() {
            self.total_cuts += 1;
            let entry_index = *self.map.entry(coded_cut.code.clone()).or_insert_with(|| {
                self.entries.push(PatternEntry {
                    code: coded_cut.code.clone(),
                    size: coded_cut.size,
                    inputs: coded_cut.inputs,
                    outputs: coded_cut.outputs,
                    ops: coded_cut.ops.clone(),
                    saved_cycles: coded_cut.saved_cycles,
                    occurrences: Vec::new(),
                    weighted_count: 0.0,
                });
                self.entries.len() - 1
            });
            let entry = &mut self.entries[entry_index];
            debug_assert_eq!(
                entry.saved_cycles, coded_cut.saved_cycles,
                "merit must be an isomorphism invariant"
            );
            entry.occurrences.push(Occurrence {
                block,
                cut: cut_index,
            });
            entry.weighted_count += weight;
        }
        block
    }

    /// Removes one block — its occurrences, its weight contributions, and any
    /// pattern left with no occurrences — and renumbers the remaining blocks
    /// densely. Returns the number of cuts removed.
    ///
    /// The result is **exactly** the index a fresh build over the remaining block
    /// sequence would produce: surviving entries are re-ranked into the first-seen
    /// order of that shorter stream and weighted counts are recomputed from the
    /// surviving occurrences (same summation order as a fresh build, so the floats
    /// are bit-identical, not merely close). This is what lets a long-running
    /// server (`ise serve`) keep one incremental index per corpus while blocks come
    /// and go, instead of re-coding every block on each change.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not an index previously returned by
    /// [`PatternIndex::add_block`] / [`PatternIndex::add_coded_block`] (after
    /// accounting for renumbering by earlier removals).
    pub fn remove_block(&mut self, block: usize) -> usize {
        assert!(
            block < self.block_weights.len(),
            "remove_block({block}): index has only {} blocks",
            self.block_weights.len()
        );
        self.block_weights.remove(block);
        let mut removed_cuts = 0;
        for entry in &mut self.entries {
            let before = entry.occurrences.len();
            entry.occurrences.retain(|occ| occ.block != block);
            removed_cuts += before - entry.occurrences.len();
            for occ in &mut entry.occurrences {
                if occ.block > block {
                    occ.block -= 1;
                }
            }
        }
        self.total_cuts -= removed_cuts;
        self.entries.retain(|entry| !entry.occurrences.is_empty());
        // Restore first-seen order for the shortened stream: each entry's first
        // surviving occurrence is its (block, cut) birth position.
        self.entries
            .sort_by_key(|entry| (entry.occurrences[0].block, entry.occurrences[0].cut));
        self.map.clear();
        for (index, entry) in self.entries.iter_mut().enumerate() {
            entry.weighted_count = entry
                .occurrences
                .iter()
                .map(|occ| self.block_weights[occ.block])
                .sum();
            self.map.insert(entry.code.clone(), index);
        }
        removed_cuts
    }

    /// The patterns in first-seen order.
    pub fn entries(&self) -> &[PatternEntry] {
        &self.entries
    }

    /// Number of distinct patterns.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no cut has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of blocks added so far.
    pub fn num_blocks(&self) -> usize {
        self.block_weights.len()
    }

    /// Total number of cuts streamed into the index.
    pub fn total_cuts(&self) -> usize {
        self.total_cuts
    }

    /// The profile weight block `block` was added with.
    pub fn block_weight(&self, block: usize) -> f64 {
        self.block_weights[block]
    }

    /// Entry indices ranked by descending profile-weighted potential saving,
    /// first-seen order breaking ties — the deterministic report and selection order.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            self.entries[b]
                .weighted_potential()
                .total_cmp(&self.entries[a].weighted_potential())
                .then_with(|| a.cmp(&b))
        });
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_enum::{enumerate_cuts, Constraints};
    use ise_graph::{DfgBuilder, Operation};

    /// A block holding `copies` MAC datapaths plus one unique xor-shift tail.
    fn mac_block(name: &str, copies: usize) -> (EnumContext, Vec<Cut>) {
        let mut b = DfgBuilder::new(name);
        for i in 0..copies {
            let a = b.input(format!("a{i}"));
            let x = b.input(format!("x{i}"));
            let acc = b.input(format!("acc{i}"));
            let m = b.node(Operation::Mul, &[a, x]);
            let s = b.node(Operation::Add, &[m, acc]);
            b.mark_output(s);
        }
        let p = b.input("p");
        let q = b.node(Operation::Xor, &[p, p]);
        let r = b.node(Operation::Shl, &[q]);
        b.mark_output(r);
        let dfg = b.build().unwrap();
        let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1).unwrap()).unwrap();
        (EnumContext::new(dfg), cuts.cuts)
    }

    #[test]
    fn recurring_patterns_group_within_and_across_blocks() {
        let mut index = PatternIndex::new(GroupConfig::new(2, 1));
        let (ctx, cuts) = mac_block("two-macs", 2);
        index.add_block(&ctx, &cuts, 1.0);
        let (ctx, cuts) = mac_block("one-mac", 1);
        index.add_block(&ctx, &cuts, 3.0);

        let mac = index
            .entries()
            .iter()
            .find(|e| e.ops == "add+mul")
            .expect("MAC pattern present");
        assert_eq!(mac.static_count(), 3, "two in block 0, one in block 1");
        assert_eq!(mac.distinct_blocks(), 2);
        assert_eq!(mac.size, 2);
        assert_eq!(mac.inputs, 3);
        assert_eq!(mac.outputs, 1);
        assert!(mac.saved_cycles > 0);
        assert_eq!(mac.example().block, 0);
        assert!((mac.weighted_count - 5.0).abs() < 1e-9, "1 + 1 + 3");
        assert_eq!(
            mac.potential_saved_cycles(),
            3 * u64::from(mac.saved_cycles)
        );

        let xorshift = index
            .entries()
            .iter()
            .find(|e| e.ops == "shl+xor")
            .expect("tail pattern present");
        assert_eq!(
            xorshift.distinct_blocks(),
            2,
            "the tail recurs across blocks"
        );

        assert_eq!(index.num_blocks(), 2);
        assert!(index.total_cuts() >= index.len());
        assert!(!index.is_empty());
        assert!((index.block_weight(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_style_coded_merge_equals_direct_adds() {
        let blocks = [mac_block("a", 2), mac_block("b", 1), mac_block("c", 3)];
        let config = GroupConfig::new(2, 1);
        let mut direct = PatternIndex::new(config.clone());
        for (ctx, cuts) in &blocks {
            direct.add_block(ctx, cuts, 1.0);
        }
        // Canonicalize "on workers" (out of order), merge in block order.
        let mut coded: Vec<Vec<CodedCut>> = blocks
            .iter()
            .rev()
            .map(|(ctx, cuts)| canonicalize_cuts(ctx, cuts, &config))
            .collect();
        coded.reverse();
        let mut merged = PatternIndex::new(config);
        for block in coded {
            merged.add_coded_block(block, 1.0);
        }
        assert_eq!(direct.len(), merged.len());
        for (d, m) in direct.entries().iter().zip(merged.entries()) {
            assert_eq!(d.code, m.code);
            assert_eq!(d.occurrences, m.occurrences);
        }
    }

    /// Builds an index over `blocks` (given as (copies, weight) pairs).
    fn build_index(blocks: &[(usize, f64)]) -> PatternIndex {
        let mut index = PatternIndex::new(GroupConfig::new(2, 1));
        for (i, &(copies, weight)) in blocks.iter().enumerate() {
            let (ctx, cuts) = mac_block(&format!("b{i}"), copies);
            index.add_block(&ctx, &cuts, weight);
        }
        index
    }

    /// Full structural equality, including the exact float aggregates.
    fn assert_index_eq(a: &PatternIndex, b: &PatternIndex) {
        assert_eq!(a.num_blocks(), b.num_blocks());
        assert_eq!(a.total_cuts(), b.total_cuts());
        assert_eq!(a.len(), b.len());
        for block in 0..a.num_blocks() {
            assert_eq!(
                a.block_weight(block).to_bits(),
                b.block_weight(block).to_bits()
            );
        }
        for (x, y) in a.entries().iter().zip(b.entries()) {
            assert_eq!(x.code, y.code);
            assert_eq!(x.occurrences, y.occurrences);
            assert_eq!(
                x.weighted_count.to_bits(),
                y.weighted_count.to_bits(),
                "weighted counts must match bit-for-bit for pattern {}",
                x.ops
            );
        }
        assert_eq!(a.ranked(), b.ranked());
    }

    #[test]
    fn remove_block_matches_fresh_build_without_it() {
        let blocks = [(2, 1.0), (1, 3.0), (3, 0.5), (1, 2.0)];
        for victim in 0..blocks.len() {
            let mut incremental = build_index(&blocks);
            let removed = incremental.remove_block(victim);
            assert!(removed > 0, "every block contributes cuts");
            let remaining: Vec<(usize, f64)> = blocks
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != victim)
                .map(|(_, &b)| b)
                .collect();
            // A fresh build names blocks differently (b0..), but mac_block's cuts
            // do not depend on the name, so rebuild over the same parameters.
            let mut fresh = PatternIndex::new(GroupConfig::new(2, 1));
            for (i, &(copies, weight)) in remaining.iter().enumerate() {
                let orig = if i < victim { i } else { i + 1 };
                let (ctx, cuts) = mac_block(&format!("b{orig}"), copies);
                fresh.add_block(&ctx, &cuts, weight);
            }
            assert_index_eq(&incremental, &fresh);
        }
    }

    #[test]
    fn remove_block_drops_patterns_unique_to_it_and_readd_restores() {
        let mut index = PatternIndex::new(GroupConfig::new(2, 1));
        let (ctx, cuts) = mac_block("macs", 1);
        index.add_block(&ctx, &cuts, 1.0);
        // A block with a sub/and tail that appears nowhere else.
        let mut b = DfgBuilder::new("odd");
        let p = b.input("p");
        let q = b.input("q");
        let s = b.node(Operation::Sub, &[p, q]);
        let t = b.node(Operation::And, &[s, p]);
        b.mark_output(t);
        let dfg = b.build().unwrap();
        let cuts2 = enumerate_cuts(&dfg, &Constraints::new(3, 1).unwrap()).unwrap();
        let ctx2 = EnumContext::new(dfg);

        let before = index.clone();
        let block = index.add_block(&ctx2, &cuts2.cuts, 2.0);
        assert!(
            index.len() > before.len(),
            "the odd block adds new patterns"
        );
        index.remove_block(block);
        assert_index_eq(&index, &before);
        // Re-adding after removal reproduces the two-block index exactly.
        let mut twice = before.clone();
        twice.add_block(&ctx2, &cuts2.cuts, 2.0);
        index.add_block(&ctx2, &cuts2.cuts, 2.0);
        assert_index_eq(&index, &twice);
    }

    #[test]
    fn remove_last_block_leaves_an_empty_index() {
        let mut index = build_index(&[(1, 1.0)]);
        index.remove_block(0);
        assert!(index.is_empty());
        assert_eq!(index.num_blocks(), 0);
        assert_eq!(index.total_cuts(), 0);
    }

    #[test]
    #[should_panic(expected = "remove_block")]
    fn remove_block_rejects_out_of_range() {
        let mut index = build_index(&[(1, 1.0)]);
        index.remove_block(1);
    }

    #[test]
    fn ranking_is_by_weighted_potential_then_first_seen() {
        let mut index = PatternIndex::new(GroupConfig::new(2, 1));
        let (ctx, cuts) = mac_block("heavy", 3);
        index.add_block(&ctx, &cuts, 10.0);
        let ranked = index.ranked();
        assert_eq!(ranked.len(), index.len());
        let potentials: Vec<f64> = ranked
            .iter()
            .map(|&i| index.entries()[i].weighted_potential())
            .collect();
        for pair in potentials.windows(2) {
            assert!(pair[0] >= pair[1]);
        }
    }
}
