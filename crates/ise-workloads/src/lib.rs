//! Workload generators for the ISE subgraph-enumeration experiments.
//!
//! The evaluation of the reproduced paper (§6) runs on two families of data-flow
//! graphs: 250 basic blocks extracted from MiBench (10–1196 nodes, grouped in three
//! size clusters) and four synthetic tree-shaped graphs (Figure 4) that are the worst
//! case for the exhaustive baseline. Neither the authors' compiler dumps nor their
//! exact blocks are available, so this crate provides seeded generators that reproduce
//! the *structural* properties the algorithms are sensitive to (see the substitution
//! notes in DESIGN.md):
//!
//! * [`tree`] — the Figure 4 tree-shaped worst case, parameterized by depth;
//! * [`random_dag`](mod@random_dag) — layered random DAGs with controllable size, fan-in and
//!   memory-operation density, used for the scaling study;
//! * [`mibench_like`] — a MiBench-like basic-block generator and the 250-block suite
//!   with the paper's size clusters;
//! * [`skewed_dag`](mod@skewed_dag) — one dense ALU blob amid trivial chains, the
//!   load-skew worst case for count-balanced task fan-out (the E7 splitting study);
//! * [`expr`] — a tiny straight-line-code frontend that compiles expression statements
//!   into data-flow graphs, used by the examples;
//! * [`export`] — the standard corpus export: a diverse selection from every family
//!   above, consumed by `ise-corpus` to (re)generate the committed `corpus/` directory.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ise_workloads::mibench_like::{MiBenchLikeConfig, generate_block};
//! use ise_workloads::tree::TreeDfgBuilder;
//!
//! let tree = TreeDfgBuilder::new(4).build();
//! assert_eq!(tree.external_outputs().len(), 16);
//!
//! let block = generate_block(&MiBenchLikeConfig::new(120), 7)?;
//! assert!(block.len() >= 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod expr;
pub mod mibench_like;
pub mod random_dag;
pub mod skewed_dag;
pub mod tree;

pub use export::{standard_export, ExportBlock};
pub use expr::compile_block;
pub use mibench_like::{generate_block, suite, MiBenchLikeConfig, SizeCluster, SuiteBlock};
pub use random_dag::{random_dag, RandomDagConfig};
pub use skewed_dag::{skewed_dag, SkewedDagConfig};
pub use tree::TreeDfgBuilder;
