//! A MiBench-like basic-block suite.
//!
//! The paper's evaluation (§6) uses 250 basic blocks collected from MiBench with sizes
//! from 10 to 1196 nodes, presented in three size clusters (10–79, 80–799, 800–1196)
//! plus four synthetic tree-shaped graphs. The original compiler dumps are not
//! available, so this module provides a seeded generator whose output matches the
//! structural statistics that the enumeration algorithms are sensitive to: block size
//! distribution across the same clusters, an embedded-integer-kernel operation mix
//! (ALU-dominated with a realistic share of memory accesses, which become forbidden
//! vertices and partition the graph as §5.3 relies on), short def-use distances and a
//! handful of live-in/live-out values per block.

use ise_graph::{Dfg, DfgBuilder, GraphError, NodeId, Operation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three block-size clusters used to group the data points of Figure 5.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SizeCluster {
    /// 10–79 nodes.
    Small,
    /// 80–799 nodes.
    Medium,
    /// 800–1196 nodes.
    Large,
    /// The synthetic tree-shaped graphs of Figure 4.
    Tree,
}

impl SizeCluster {
    /// Classifies a block size (tree blocks are tagged explicitly by the suite).
    pub fn of_size(nodes: usize) -> Self {
        match nodes {
            0..=79 => SizeCluster::Small,
            80..=799 => SizeCluster::Medium,
            _ => SizeCluster::Large,
        }
    }

    /// The label used in Figure 5's legend.
    pub fn label(self) -> &'static str {
        match self {
            SizeCluster::Small => "10-79",
            SizeCluster::Medium => "80-799",
            SizeCluster::Large => "800-1196",
            SizeCluster::Tree => "tree",
        }
    }
}

/// Configuration of the MiBench-like block generator.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
///
/// let block = generate_block(&MiBenchLikeConfig::new(80).with_memory_ratio(0.3), 1)?;
/// assert_eq!(block.len(), 80);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct MiBenchLikeConfig {
    size: usize,
    memory_ratio: f64,
    muldiv_ratio: f64,
    live_in_fraction: f64,
    live_out_count: usize,
}

impl MiBenchLikeConfig {
    /// Creates a configuration for a block with exactly `size` vertices (live-ins
    /// included) and the default embedded-kernel operation mix: 18 % memory
    /// operations, 6 % multiplications, roughly one live-in per eight operations and
    /// two live-out values.
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than 4 (a block needs at least a live-in and a
    /// couple of operations to be interesting).
    pub fn new(size: usize) -> Self {
        assert!(size >= 4, "MiBench-like blocks need at least 4 vertices");
        MiBenchLikeConfig {
            size,
            memory_ratio: 0.18,
            muldiv_ratio: 0.06,
            live_in_fraction: 0.12,
            live_out_count: 2,
        }
    }

    /// The total number of vertices of generated blocks.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sets the fraction of memory operations.
    #[must_use]
    pub fn with_memory_ratio(mut self, ratio: f64) -> Self {
        self.memory_ratio = ratio.clamp(0.0, 0.9);
        self
    }

    /// Sets the fraction of multi-cycle operations.
    #[must_use]
    pub fn with_muldiv_ratio(mut self, ratio: f64) -> Self {
        self.muldiv_ratio = ratio.clamp(0.0, 0.9);
        self
    }

    /// Sets the fraction of vertices that are live-in values.
    #[must_use]
    pub fn with_live_in_fraction(mut self, fraction: f64) -> Self {
        self.live_in_fraction = fraction.clamp(0.02, 0.9);
        self
    }

    /// Sets how many additional values are marked live-out of the block.
    #[must_use]
    pub fn with_live_out_count(mut self, count: usize) -> Self {
        self.live_out_count = count;
        self
    }
}

/// Generates one MiBench-like basic block, deterministically in `seed`.
///
/// # Errors
///
/// Propagates [`GraphError`] from graph construction; this cannot happen for the
/// generator's own output and is kept in the signature only for API uniformity.
pub fn generate_block(config: &MiBenchLikeConfig, seed: u64) -> Result<Dfg, GraphError> {
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut builder = DfgBuilder::new(format!("mibench-like-{}-{seed}", config.size));

    let live_ins =
        ((config.size as f64 * config.live_in_fraction).round() as usize).clamp(2, config.size - 2);
    let ops = config.size - live_ins;

    let mut values: Vec<NodeId> = (0..live_ins)
        .map(|i| builder.input(format!("in{i}")))
        .collect();

    for _ in 0..ops {
        let op = pick_operation(&mut rng, config);
        let arity = match op {
            Operation::Load | Operation::Not | Operation::Extend => 1,
            Operation::Select => 3,
            Operation::Store => 2,
            _ => 2,
        };
        let mut operands = Vec::with_capacity(arity);
        for _ in 0..arity {
            operands.push(pick_value(&mut rng, &values));
        }
        operands.dedup();
        let node = builder.node(op, &operands);
        values.push(node);
    }

    // A few additional live-out values besides the natural sinks.
    for _ in 0..config.live_out_count {
        let v = pick_value(&mut rng, &values);
        builder.mark_output(v);
    }
    builder.build()
}

fn pick_operation(rng: &mut StdRng, config: &MiBenchLikeConfig) -> Operation {
    let roll: f64 = rng.gen();
    if roll < config.memory_ratio {
        return if rng.gen_bool(0.65) {
            Operation::Load
        } else {
            Operation::Store
        };
    }
    if roll < config.memory_ratio + config.muldiv_ratio {
        return if rng.gen_bool(0.85) {
            Operation::Mul
        } else {
            Operation::Div
        };
    }
    // ALU-dominated mix typical of MiBench integer kernels (crc, sha, adpcm, ...).
    const POOL: &[Operation] = &[
        Operation::Add,
        Operation::Add,
        Operation::Add,
        Operation::Sub,
        Operation::And,
        Operation::And,
        Operation::Or,
        Operation::Xor,
        Operation::Xor,
        Operation::Shl,
        Operation::Shr,
        Operation::Sar,
        Operation::Cmp,
        Operation::Select,
        Operation::Extend,
        Operation::Not,
    ];
    POOL[rng.gen_range(0..POOL.len())]
}

fn pick_value(rng: &mut StdRng, values: &[NodeId]) -> NodeId {
    // Short def-use distances: prefer recently produced values, with an occasional
    // long-range use of an early value (loop-carried or address computation).
    let n = values.len();
    if n == 1 || rng.gen_bool(0.15) {
        return values[rng.gen_range(0..n)];
    }
    let window = (n / 4).max(4).min(n);
    values[n - 1 - rng.gen_range(0..window)]
}

/// One entry of the 250-block evaluation suite.
#[derive(Clone, Debug)]
pub struct SuiteBlock {
    /// Stable identifier of the block within the suite.
    pub id: usize,
    /// The size cluster the block belongs to (Figure 5 legend).
    pub cluster: SizeCluster,
    /// The data-flow graph.
    pub dfg: Dfg,
}

/// Generates the 250-block MiBench-like evaluation suite used by the Figure 5
/// reproduction, deterministically in `seed`.
///
/// The size distribution follows the paper's description: block sizes span 10–1196
/// vertices, with most blocks small (as in real programs), a substantial medium
/// cluster, and a few very large unrolled kernels. The four tree-shaped DFGs of
/// Figure 4 are *not* part of this suite; the harness adds them separately via
/// [`crate::tree::TreeDfgBuilder`].
///
/// Pass a smaller `count` to run quick versions of the experiment.
pub fn suite(count: usize, seed: u64) -> Vec<SuiteBlock> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut blocks = Vec::with_capacity(count);
    for id in 0..count {
        // Cluster proportions: ~60 % small, ~32 % medium, ~8 % large.
        let roll: f64 = rng.gen();
        let size = if roll < 0.60 {
            rng.gen_range(10..=79)
        } else if roll < 0.92 {
            rng.gen_range(80..=799)
        } else {
            rng.gen_range(800..=1196)
        };
        let config = MiBenchLikeConfig::new(size);
        let dfg = generate_block(&config, seed.wrapping_add(id as u64 * 7919))
            .expect("generator output is always a valid DFG");
        blocks.push(SuiteBlock {
            id,
            cluster: SizeCluster::of_size(dfg.len()),
            dfg,
        });
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_is_exact_and_deterministic() {
        let cfg = MiBenchLikeConfig::new(200);
        let a = generate_block(&cfg, 3).unwrap();
        let b = generate_block(&cfg, 3).unwrap();
        assert_eq!(a.len(), 200);
        assert_eq!(b.len(), 200);
        assert_eq!(a.edge_count(), b.edge_count());
    }

    #[test]
    fn memory_operations_are_present_and_forbidden() {
        let dfg = generate_block(&MiBenchLikeConfig::new(400), 11).unwrap();
        let memory = dfg.node_ids().filter(|&id| dfg.op(id).is_memory()).count();
        let ratio = memory as f64 / 400.0;
        assert!(ratio > 0.08 && ratio < 0.30, "memory ratio {ratio}");
        for id in dfg.node_ids() {
            if dfg.op(id).is_memory() {
                assert!(dfg.is_forbidden(id));
            }
        }
    }

    #[test]
    fn clusters_match_paper_boundaries() {
        assert_eq!(SizeCluster::of_size(10), SizeCluster::Small);
        assert_eq!(SizeCluster::of_size(79), SizeCluster::Small);
        assert_eq!(SizeCluster::of_size(80), SizeCluster::Medium);
        assert_eq!(SizeCluster::of_size(799), SizeCluster::Medium);
        assert_eq!(SizeCluster::of_size(800), SizeCluster::Large);
        assert_eq!(SizeCluster::of_size(1196), SizeCluster::Large);
        assert_eq!(SizeCluster::Small.label(), "10-79");
        assert_eq!(SizeCluster::Tree.label(), "tree");
    }

    #[test]
    fn suite_has_requested_size_and_span() {
        let blocks = suite(60, 2024);
        assert_eq!(blocks.len(), 60);
        let sizes: Vec<usize> = blocks.iter().map(|b| b.dfg.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(min >= 10);
        assert!(max <= 1196);
        assert!(
            blocks.iter().any(|b| b.cluster == SizeCluster::Small)
                && blocks.iter().any(|b| b.cluster == SizeCluster::Medium),
            "both small and medium clusters must be represented"
        );
        // Determinism.
        let again = suite(60, 2024);
        assert_eq!(
            blocks.iter().map(|b| b.dfg.len()).collect::<Vec<_>>(),
            again.iter().map(|b| b.dfg.len()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn suite_ids_are_stable_and_sequential() {
        let blocks = suite(10, 1);
        for (i, b) in blocks.iter().enumerate() {
            assert_eq!(b.id, i);
        }
    }

    #[test]
    fn knobs_are_clamped() {
        let cfg = MiBenchLikeConfig::new(50)
            .with_memory_ratio(2.0)
            .with_muldiv_ratio(-1.0)
            .with_live_in_fraction(0.0)
            .with_live_out_count(1);
        assert_eq!(cfg.size(), 50);
        let dfg = generate_block(&cfg, 5).unwrap();
        assert_eq!(dfg.len(), 50);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_blocks_are_rejected() {
        let _ = MiBenchLikeConfig::new(3);
    }
}
