//! Tree-shaped data-flow graphs: the worst case of the exhaustive baseline (Figure 4).
//!
//! Figure 4 of the paper shows a data-flow graph shaped as a tree that fans *out* from
//! a single live-in value: every vertex produces a value consumed by two children, and
//! the leaves are the externally visible results. On such graphs the pruned exhaustive
//! search of refs. \[4\]/\[15\] degrades towards its exponential worst case — the paper
//! quotes `O(1.6^n)` — because its effective pruning lever is the *input* constraint,
//! and a fan-out tree never violates it: any connected selection has a single input.
//! The output constraint, which is what actually invalidates most selections, is only
//! discovered long after the choices that caused it. The polynomial algorithm is
//! insensitive to this shape: the ancestors of any vertex form a short chain, so the
//! per-output dominator search space is tiny.
//!
//! The builder also offers the reverse orientation (a fan-in reduction tree) for
//! completeness, since both appear in the ISE literature.

use ise_graph::{Dfg, DfgBuilder, NodeId, Operation};

/// Orientation of the generated tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeOrientation {
    /// One external input at the root, values fan out towards `2^depth` leaf results
    /// (the Figure 4 worst case for the exhaustive baseline).
    FanOut,
    /// `2^depth` external inputs reduced pairwise to a single result.
    FanIn,
}

/// Builder for the Figure 4 tree-shaped worst-case graphs.
///
/// # Example
///
/// ```
/// use ise_workloads::tree::TreeDfgBuilder;
///
/// let dfg = TreeDfgBuilder::new(4).build();
/// assert_eq!(dfg.external_inputs().len(), 1);
/// assert_eq!(dfg.len(), 1 + 2 + 4 + 8 + 16);
/// assert_eq!(dfg.external_outputs().len(), 16);
/// ```
#[derive(Clone, Debug)]
pub struct TreeDfgBuilder {
    depth: u32,
    orientation: TreeOrientation,
    operations: Vec<Operation>,
}

impl TreeDfgBuilder {
    /// Creates a builder for a complete binary tree of the given depth (`2^depth`
    /// leaves). The paper's experiments use depths 4 through 7.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is 0 or larger than 16 (65536 leaves), which is far beyond any
    /// realistic basic block.
    pub fn new(depth: u32) -> Self {
        assert!(
            (1..=16).contains(&depth),
            "tree depth must be between 1 and 16"
        );
        TreeDfgBuilder {
            depth,
            orientation: TreeOrientation::FanOut,
            operations: vec![
                Operation::Add,
                Operation::Xor,
                Operation::Shl,
                Operation::Not,
                Operation::And,
                Operation::Sub,
            ],
        }
    }

    /// Selects the tree orientation; the default is [`TreeOrientation::FanOut`],
    /// matching Figure 4.
    #[must_use]
    pub fn with_orientation(mut self, orientation: TreeOrientation) -> Self {
        self.orientation = orientation;
        self
    }

    /// Overrides the cycle of operations used for the tree vertices.
    ///
    /// # Panics
    ///
    /// Panics if `operations` is empty.
    #[must_use]
    pub fn with_operations(mut self, operations: Vec<Operation>) -> Self {
        assert!(!operations.is_empty(), "at least one operation is required");
        self.operations = operations;
        self
    }

    /// The depth of the generated tree.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// The orientation of the generated tree.
    pub fn orientation(&self) -> TreeOrientation {
        self.orientation
    }

    /// Number of vertices the generated graph will have (`2^(depth+1) - 1`).
    pub fn node_count(&self) -> usize {
        (1usize << (self.depth + 1)) - 1
    }

    /// Builds the tree-shaped data-flow graph.
    pub fn build(&self) -> Dfg {
        match self.orientation {
            TreeOrientation::FanOut => self.build_fan_out(),
            TreeOrientation::FanIn => self.build_fan_in(),
        }
    }

    fn build_fan_out(&self) -> Dfg {
        let mut builder = DfgBuilder::new(format!("tree-fanout-depth-{}", self.depth));
        let root = builder.input("in");
        let mut level: Vec<NodeId> = vec![root];
        let mut op_index = 0usize;
        for _ in 0..self.depth {
            let mut next = Vec::with_capacity(level.len() * 2);
            for &parent in &level {
                for _ in 0..2 {
                    let op = self.unary_operation(&mut op_index);
                    next.push(builder.node(op, &[parent]));
                }
            }
            level = next;
        }
        // The leaves have no successors, so they are external outputs automatically.
        builder
            .build()
            .expect("a complete fan-out tree is always a valid DFG")
    }

    fn build_fan_in(&self) -> Dfg {
        let mut builder = DfgBuilder::new(format!("tree-fanin-depth-{}", self.depth));
        let leaves = 1usize << self.depth;
        let mut level: Vec<NodeId> = (0..leaves)
            .map(|i| builder.input(format!("in{i}")))
            .collect();
        let mut op_index = 0usize;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks(2) {
                let op = self.binary_operation(&mut op_index);
                next.push(builder.node(op, pair));
            }
            level = next;
        }
        builder.mark_output(level[0]);
        builder
            .build()
            .expect("a complete reduction tree is always a valid DFG")
    }

    fn unary_operation(&self, op_index: &mut usize) -> Operation {
        // Only single-operand operations make sense in the fan-out orientation.
        const UNARY: &[Operation] = &[
            Operation::Not,
            Operation::Shl,
            Operation::Shr,
            Operation::Extend,
        ];
        let op = self
            .operations
            .iter()
            .copied()
            .filter(|op| {
                matches!(
                    op,
                    Operation::Not | Operation::Shl | Operation::Shr | Operation::Extend
                )
            })
            .cycle()
            .nth(*op_index)
            .unwrap_or(UNARY[*op_index % UNARY.len()]);
        *op_index += 1;
        op
    }

    fn binary_operation(&self, op_index: &mut usize) -> Operation {
        let op = self.operations[*op_index % self.operations.len()];
        *op_index += 1;
        op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fan_out_node_counts_match_formula() {
        for depth in 1..=7 {
            let builder = TreeDfgBuilder::new(depth);
            let dfg = builder.build();
            assert_eq!(dfg.len(), builder.node_count(), "depth {depth}");
            assert_eq!(dfg.external_inputs().len(), 1);
            assert_eq!(dfg.external_outputs().len(), 1 << depth);
        }
    }

    #[test]
    fn fan_out_nodes_have_single_operand_and_two_consumers() {
        let dfg = TreeDfgBuilder::new(5).build();
        for id in dfg.node_ids() {
            let preds = dfg.preds(id).len();
            let succs = dfg.succs(id).len();
            assert!(preds <= 1, "node {id} has {preds} operands");
            assert!(succs == 0 || succs == 2, "node {id} has {succs} consumers");
        }
    }

    #[test]
    fn fan_in_orientation_reduces_to_one_output() {
        let builder = TreeDfgBuilder::new(4).with_orientation(TreeOrientation::FanIn);
        let dfg = builder.build();
        assert_eq!(builder.orientation(), TreeOrientation::FanIn);
        assert_eq!(dfg.len(), builder.node_count());
        assert_eq!(dfg.external_inputs().len(), 16);
        assert_eq!(dfg.external_outputs().len(), 1);
        for id in dfg.node_ids() {
            let preds = dfg.preds(id).len();
            assert!(preds == 0 || preds == 2);
        }
    }

    #[test]
    fn paper_depths_cover_the_reported_range() {
        // Depth 4..=7 gives 31..=255 nodes, matching the synthetic DFGs of §6.
        assert_eq!(TreeDfgBuilder::new(4).node_count(), 31);
        assert_eq!(TreeDfgBuilder::new(7).node_count(), 255);
    }

    #[test]
    fn custom_operations_are_used_in_fan_in() {
        let dfg = TreeDfgBuilder::new(2)
            .with_orientation(TreeOrientation::FanIn)
            .with_operations(vec![Operation::Mul])
            .build();
        let muls = dfg
            .node_ids()
            .filter(|&id| dfg.op(id) == Operation::Mul)
            .count();
        assert_eq!(muls, 3);
    }

    #[test]
    fn depth_accessor_round_trips() {
        assert_eq!(TreeDfgBuilder::new(6).depth(), 6);
    }

    #[test]
    #[should_panic(expected = "tree depth")]
    fn zero_depth_is_rejected() {
        let _ = TreeDfgBuilder::new(0);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_operation_set_is_rejected() {
        let _ = TreeDfgBuilder::new(3).with_operations(vec![]);
    }
}
