//! Layered random data-flow graphs with controllable structure.
//!
//! The scaling experiment (E3 in DESIGN.md) needs graphs whose size grows while the
//! rest of the structure (fan-in, depth/width balance, memory-operation density) stays
//! fixed, so that the measured growth of the enumeration time reflects the algorithm's
//! complexity in `n` rather than an artifact of the workload.

use ise_graph::{Dfg, DfgBuilder, NodeId, Operation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the layered random DAG generator.
///
/// The generator creates `live_ins` external inputs, then `node_count` operation nodes
/// arranged in layers of `layer_width` nodes. Each operation draws 1–`max_arity`
/// operands uniformly from the previous `locality` layers (biased towards recent
/// layers, which mimics the short def-use distances of real straight-line code), and
/// becomes a memory operation with probability `memory_ratio`.
///
/// # Example
///
/// ```
/// use ise_workloads::random_dag::{random_dag, RandomDagConfig};
///
/// let cfg = RandomDagConfig::new(200).with_memory_ratio(0.2);
/// let dfg = random_dag(&cfg, 42);
/// assert_eq!(dfg.len(), 200 + cfg.live_ins());
/// ```
#[derive(Clone, Debug)]
pub struct RandomDagConfig {
    node_count: usize,
    live_ins: usize,
    layer_width: usize,
    max_arity: usize,
    locality: usize,
    memory_ratio: f64,
    muldiv_ratio: f64,
}

impl RandomDagConfig {
    /// Creates a configuration for a graph with `node_count` operation nodes and
    /// defaults resembling unrolled embedded kernels: 8 live-ins, layers of 8, binary
    /// operations, 10 % memory operations and 8 % multiplications.
    ///
    /// # Panics
    ///
    /// Panics if `node_count` is zero.
    pub fn new(node_count: usize) -> Self {
        assert!(
            node_count > 0,
            "a random DAG needs at least one operation node"
        );
        RandomDagConfig {
            node_count,
            live_ins: 8,
            layer_width: 8,
            max_arity: 2,
            locality: 4,
            memory_ratio: 0.10,
            muldiv_ratio: 0.08,
        }
    }

    /// Number of operation nodes (excluding live-ins).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of external inputs.
    pub fn live_ins(&self) -> usize {
        self.live_ins
    }

    /// Sets the number of external inputs.
    #[must_use]
    pub fn with_live_ins(mut self, live_ins: usize) -> Self {
        self.live_ins = live_ins.max(1);
        self
    }

    /// Sets the number of operation nodes per layer (graph "width").
    #[must_use]
    pub fn with_layer_width(mut self, width: usize) -> Self {
        self.layer_width = width.max(1);
        self
    }

    /// Sets the maximum operand count of generated operations.
    #[must_use]
    pub fn with_max_arity(mut self, arity: usize) -> Self {
        self.max_arity = arity.clamp(1, 4);
        self
    }

    /// Sets the fraction of memory operations (which become forbidden vertices).
    #[must_use]
    pub fn with_memory_ratio(mut self, ratio: f64) -> Self {
        self.memory_ratio = ratio.clamp(0.0, 1.0);
        self
    }

    /// Sets the fraction of multi-cycle (multiply/divide) operations.
    #[must_use]
    pub fn with_muldiv_ratio(mut self, ratio: f64) -> Self {
        self.muldiv_ratio = ratio.clamp(0.0, 1.0);
        self
    }
}

/// Generates a layered random DAG according to `config`, deterministically in `seed`.
pub fn random_dag(config: &RandomDagConfig, seed: u64) -> Dfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = DfgBuilder::new(format!("random-dag-{}-{seed}", config.node_count));

    let live_ins: Vec<NodeId> = (0..config.live_ins)
        .map(|i| builder.input(format!("in{i}")))
        .collect();

    // `layers[l]` holds the values produced in layer l; layer 0 are the live-ins.
    let mut layers: Vec<Vec<NodeId>> = vec![live_ins];
    let mut produced = 0usize;
    while produced < config.node_count {
        let width = config.layer_width.min(config.node_count - produced);
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let op = pick_operation(&mut rng, config);
            let arity = match op {
                Operation::Load | Operation::Not | Operation::Extend => 1,
                _ => 1 + rng.gen_range(0..config.max_arity.max(1)),
            };
            let mut operands = Vec::with_capacity(arity);
            for _ in 0..arity {
                operands.push(pick_operand(&mut rng, &layers, config.locality));
            }
            operands.dedup();
            layer.push(builder.node(op, &operands));
            produced += 1;
        }
        layers.push(layer);
    }

    // Mark a handful of values as live out of the block, as a compiler would.
    let last_layer = layers
        .last()
        .expect("at least one layer was produced")
        .clone();
    for &node in &last_layer {
        builder.mark_output(node);
    }
    builder
        .build()
        .expect("the layered construction cannot produce an invalid DFG")
}

fn pick_operation(rng: &mut StdRng, config: &RandomDagConfig) -> Operation {
    let roll: f64 = rng.gen();
    if roll < config.memory_ratio {
        return if rng.gen_bool(0.7) {
            Operation::Load
        } else {
            Operation::Store
        };
    }
    if roll < config.memory_ratio + config.muldiv_ratio {
        return Operation::Mul;
    }
    const POOL: &[Operation] = &[
        Operation::Add,
        Operation::Add,
        Operation::Sub,
        Operation::And,
        Operation::Or,
        Operation::Xor,
        Operation::Shl,
        Operation::Shr,
        Operation::Cmp,
        Operation::Select,
        Operation::Extend,
        Operation::Not,
    ];
    POOL[rng.gen_range(0..POOL.len())]
}

fn pick_operand(rng: &mut StdRng, layers: &[Vec<NodeId>], locality: usize) -> NodeId {
    // Bias towards recent layers: pick a layer offset geometrically within `locality`.
    let max_back = layers.len().min(locality.max(1));
    let mut back = 1;
    while back < max_back && rng.gen_bool(0.5) {
        back += 1;
    }
    let layer = &layers[layers.len() - back];
    layer[rng.gen_range(0..layer.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_determinism() {
        let cfg = RandomDagConfig::new(150);
        let a = random_dag(&cfg, 7);
        let b = random_dag(&cfg, 7);
        assert_eq!(a.len(), 150 + cfg.live_ins());
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edge_count(), b.edge_count());
        let c = random_dag(&cfg, 8);
        // A different seed virtually always yields a different wiring.
        assert!(a.edge_count() != c.edge_count() || a.edges().ne(c.edges()));
    }

    #[test]
    fn memory_ratio_controls_forbidden_density() {
        let none = random_dag(&RandomDagConfig::new(300).with_memory_ratio(0.0), 1);
        assert_eq!(none.forbidden().len(), 0);
        let heavy = random_dag(&RandomDagConfig::new(300).with_memory_ratio(0.5), 1);
        let ratio = heavy.forbidden().len() as f64 / 300.0;
        assert!(ratio > 0.3 && ratio < 0.7, "observed memory ratio {ratio}");
    }

    #[test]
    fn every_operation_node_has_operands() {
        let dfg = random_dag(&RandomDagConfig::new(100), 3);
        for id in dfg.node_ids() {
            if dfg.op(id) != Operation::Input {
                assert!(!dfg.preds(id).is_empty(), "operation {id} has no operands");
            }
        }
    }

    #[test]
    fn builder_knobs_are_respected() {
        let cfg = RandomDagConfig::new(64)
            .with_live_ins(3)
            .with_layer_width(4)
            .with_max_arity(3)
            .with_muldiv_ratio(0.0);
        assert_eq!(cfg.live_ins(), 3);
        assert_eq!(cfg.node_count(), 64);
        let dfg = random_dag(&cfg, 11);
        assert_eq!(dfg.external_inputs().len(), 3);
        assert!(dfg.node_ids().all(|id| dfg.preds(id).len() <= 3));
        assert!(dfg.node_ids().all(|id| dfg.op(id) != Operation::Mul));
    }

    #[test]
    #[should_panic(expected = "at least one operation node")]
    fn zero_nodes_rejected() {
        let _ = RandomDagConfig::new(0);
    }
}
