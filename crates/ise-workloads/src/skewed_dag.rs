//! Load-skewed data-flow graphs: one dense subgraph amid trivial chains.
//!
//! The first-output task decomposition of `ise_enum::par` partitions the candidate
//! outputs into contiguous ranges. That is a *count* balance, not a *work* balance:
//! real blocks concentrate their enumeration cost in a few dense ALU regions, so one
//! range can own almost all search nodes while the rest finish instantly — the
//! tail-serialization pathology that recursive task splitting (E7, DESIGN.md §1.4)
//! exists to remove. This generator builds such a block on purpose: a single densely
//! wired forbidden-free ALU blob (every node a candidate root of an expensive
//! subtree, clustered at the front of the candidate order) followed by many trivial
//! unary chains (cheap roots that pad the candidate count). Static fan-out over it
//! shows a task-load skew close to the task count; with splitting enabled the heavy
//! ranges break apart and the skew collapses.

use ise_graph::{Dfg, DfgBuilder, NodeId, Operation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the skewed-DAG generator.
///
/// The graph is `heavy_nodes` densely wired ALU operations (layers of
/// `heavy_width`, operands drawn from *all* previous layers, no memory operations —
/// so nothing is forbidden and the subtree under each root is large), followed by
/// `chains` independent unary chains of `chain_depth` operations each. The heavy
/// blob is built first, so its roots occupy the low candidate indices.
///
/// # Example
///
/// ```
/// use ise_workloads::skewed_dag::{skewed_dag, SkewedDagConfig};
///
/// let cfg = SkewedDagConfig::new(24, 24);
/// let dfg = skewed_dag(&cfg, 7);
/// assert_eq!(dfg.len(), cfg.total_nodes());
/// assert!(dfg.forbidden().is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct SkewedDagConfig {
    heavy_nodes: usize,
    heavy_width: usize,
    chains: usize,
    chain_depth: usize,
    live_ins: usize,
}

impl SkewedDagConfig {
    /// Creates a configuration with `heavy_nodes` operations in the dense blob and
    /// `chains` light chains, with defaults chosen so the whole block crosses the
    /// CLI's fan-out threshold: 4 live-ins, blob layers of 4, chains of depth 2.
    ///
    /// # Panics
    ///
    /// Panics if `heavy_nodes` is zero.
    pub fn new(heavy_nodes: usize, chains: usize) -> Self {
        assert!(heavy_nodes > 0, "the dense blob needs at least one node");
        SkewedDagConfig {
            heavy_nodes,
            heavy_width: 4,
            chains,
            chain_depth: 2,
            live_ins: 4,
        }
    }

    /// Sets the blob layer width (lower = deeper, more expensive subtrees).
    #[must_use]
    pub fn with_heavy_width(mut self, width: usize) -> Self {
        self.heavy_width = width.max(1);
        self
    }

    /// Sets the depth of each light chain.
    #[must_use]
    pub fn with_chain_depth(mut self, depth: usize) -> Self {
        self.chain_depth = depth.max(1);
        self
    }

    /// Total vertex count of the generated graph (live-ins included).
    pub fn total_nodes(&self) -> usize {
        self.live_ins + self.heavy_nodes + self.chains * self.chain_depth
    }
}

/// Generates a skewed DAG according to `config`, deterministically in `seed`.
///
/// The graph is named `skewed-dag-{total}-{seed}`, following the corpus naming
/// convention of the other generators.
pub fn skewed_dag(config: &SkewedDagConfig, seed: u64) -> Dfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = DfgBuilder::new(format!("skewed-dag-{}-{seed}", config.total_nodes()));

    let live_ins: Vec<NodeId> = (0..config.live_ins)
        .map(|i| builder.input(format!("in{i}")))
        .collect();

    // The dense blob: operands drawn from every previous layer (no locality window),
    // so the cone under each node quickly spans most of the blob and every root is
    // an expensive first-output task.
    const BLOB_OPS: &[Operation] = &[
        Operation::Add,
        Operation::Sub,
        Operation::And,
        Operation::Or,
        Operation::Xor,
    ];
    let mut values: Vec<NodeId> = live_ins.clone();
    let mut produced = 0usize;
    while produced < config.heavy_nodes {
        let width = config.heavy_width.min(config.heavy_nodes - produced);
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let op = BLOB_OPS[rng.gen_range(0..BLOB_OPS.len())];
            let mut operands = vec![
                values[rng.gen_range(0..values.len())],
                values[rng.gen_range(0..values.len())],
            ];
            operands.dedup();
            layer.push(builder.node(op, &operands));
            produced += 1;
        }
        for &node in &layer {
            values.push(node);
        }
    }
    let blob_out = *values.last().expect("the blob produced at least one node");
    builder.mark_output(blob_out);

    // The light chains: each a short unary tail off one live-in. Their roots are
    // cheap (a chain node's cone is just the chain prefix) and pad the candidate
    // count, so a count-balanced fan-out hands nearly all work to the blob ranges.
    for c in 0..config.chains {
        let mut value = live_ins[c % live_ins.len()];
        for d in 0..config.chain_depth {
            let op = if d % 2 == 0 {
                Operation::Not
            } else {
                Operation::Shl
            };
            value = builder.node(op, &[value]);
        }
        builder.mark_output(value);
    }

    builder
        .build()
        .expect("the layered construction cannot produce an invalid DFG")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_and_determinism() {
        let cfg = SkewedDagConfig::new(24, 24);
        let a = skewed_dag(&cfg, 7);
        let b = skewed_dag(&cfg, 7);
        assert_eq!(a.len(), cfg.total_nodes());
        assert_eq!(a.len(), b.len());
        assert!(a.edges().eq(b.edges()));
        assert_eq!(a.name(), "skewed-dag-76-7");
    }

    #[test]
    fn nothing_is_forbidden_and_chains_are_outputs() {
        let cfg = SkewedDagConfig::new(16, 10).with_chain_depth(3);
        let dfg = skewed_dag(&cfg, 1);
        assert!(dfg.forbidden().is_empty());
        // At least one output per chain plus the blob's (unconsumed blob values are
        // live-out too, as in any real block).
        assert!(dfg.external_outputs().len() > 10);
    }

    #[test]
    fn blob_nodes_precede_chain_nodes() {
        // The skew story depends on the heavy roots clustering at the low candidate
        // indices, which follow node-creation order.
        let cfg = SkewedDagConfig::new(12, 6);
        let dfg = skewed_dag(&cfg, 3);
        let chain_ops = dfg
            .node_ids()
            .filter(|&id| matches!(dfg.op(id), Operation::Not | Operation::Shl))
            .count();
        assert_eq!(chain_ops, 6 * 2);
        let first_chain = dfg
            .node_ids()
            .find(|&id| matches!(dfg.op(id), Operation::Not | Operation::Shl))
            .expect("chains exist");
        for id in dfg.node_ids() {
            let is_blob = !matches!(
                dfg.op(id),
                Operation::Input | Operation::Not | Operation::Shl
            );
            if is_blob {
                assert!(id < first_chain, "blob node {id} after a chain node");
            }
        }
    }
}
