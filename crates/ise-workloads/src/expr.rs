//! A tiny straight-line-code frontend.
//!
//! The examples of this repository build their data-flow graphs from small C-like
//! snippets rather than by hand-wiring node ids; this module provides the required
//! compiler: a tokenizer and recursive-descent parser for assignment statements over
//! integer expressions, lowered directly to an [`ise_graph::Dfg`].
//!
//! Supported syntax (one statement per `;`):
//!
//! ```text
//! t1 = (a + b) * c;          // binary operators: + - * / % & | ^ << >>
//! t2 = ~t1 >> 3;             // unary ~, integer literals become constants
//! t3 = load(a + 4);          // memory accesses (forbidden inside ISEs)
//! store(t3, t2);             // store(address, value)
//! out t2, t3;                // mark values as live out of the block
//! ```
//!
//! Identifiers that are used before being defined become external inputs of the block.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use ise_graph::{Dfg, DfgBuilder, GraphError, NodeId, Operation};

/// Error reported when compiling a straight-line snippet.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A character that is not part of the language was encountered.
    UnexpectedCharacter(char),
    /// The parser expected something else at this token.
    UnexpectedToken(String),
    /// The snippet ended in the middle of a statement.
    UnexpectedEnd,
    /// `out` named a variable that was never defined.
    UnknownVariable(String),
    /// The resulting graph was rejected (for example, an empty snippet).
    Graph(GraphError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnexpectedCharacter(c) => write!(f, "unexpected character {c:?}"),
            CompileError::UnexpectedToken(t) => write!(f, "unexpected token {t:?}"),
            CompileError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CompileError::UnknownVariable(name) => {
                write!(f, "unknown variable {name:?} in out list")
            }
            CompileError::Graph(e) => write!(f, "invalid data-flow graph: {e}"),
        }
    }
}

impl Error for CompileError {}

impl From<GraphError> for CompileError {
    fn from(e: GraphError) -> Self {
        CompileError::Graph(e)
    }
}

/// Compiles a straight-line snippet into a data-flow graph.
///
/// # Errors
///
/// Returns [`CompileError`] on any lexical, syntactic or graph-construction problem.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_workloads::expr::compile_block;
///
/// let dfg = compile_block(
///     "sad",
///     "d = a - b; m = d >> 31; abs = (d ^ m) - m; acc2 = acc + abs; out acc2;",
/// )?;
/// assert_eq!(dfg.external_inputs().len(), 4); // a, b, acc and the literal 31
/// assert!(dfg.len() >= 8);
/// # Ok(())
/// # }
/// ```
pub fn compile_block(name: &str, source: &str) -> Result<Dfg, CompileError> {
    let tokens = tokenize(source)?;
    Parser {
        tokens,
        position: 0,
        builder: DfgBuilder::new(name),
        variables: HashMap::new(),
        constants: HashMap::new(),
    }
    .parse()
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Token {
    Ident(String),
    Number(i64),
    Symbol(&'static str),
}

fn tokenize(source: &str) -> Result<Vec<Token>, CompileError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        ident.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Ident(ident));
            }
            c if c.is_ascii_digit() => {
                let mut value = 0i64;
                while let Some(&c) = chars.peek() {
                    if let Some(digit) = c.to_digit(10) {
                        value = value * 10 + i64::from(digit);
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token::Number(value));
            }
            '<' | '>' => {
                chars.next();
                if chars.peek() == Some(&c) {
                    chars.next();
                    tokens.push(Token::Symbol(if c == '<' { "<<" } else { ">>" }));
                } else {
                    return Err(CompileError::UnexpectedCharacter(c));
                }
            }
            '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^' | '~' | '(' | ')' | '=' | ';' | ',' => {
                chars.next();
                tokens.push(Token::Symbol(match c {
                    '+' => "+",
                    '-' => "-",
                    '*' => "*",
                    '/' => "/",
                    '%' => "%",
                    '&' => "&",
                    '|' => "|",
                    '^' => "^",
                    '~' => "~",
                    '(' => "(",
                    ')' => ")",
                    '=' => "=",
                    ';' => ";",
                    _ => ",",
                }));
            }
            other => return Err(CompileError::UnexpectedCharacter(other)),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    position: usize,
    builder: DfgBuilder,
    variables: HashMap<String, NodeId>,
    constants: HashMap<i64, NodeId>,
}

impl Parser {
    fn parse(mut self) -> Result<Dfg, CompileError> {
        while self.position < self.tokens.len() {
            self.statement()?;
        }
        self.builder.build().map_err(CompileError::from)
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position)
    }

    fn next(&mut self) -> Result<Token, CompileError> {
        let token = self
            .tokens
            .get(self.position)
            .cloned()
            .ok_or(CompileError::UnexpectedEnd)?;
        self.position += 1;
        Ok(token)
    }

    fn expect_symbol(&mut self, symbol: &str) -> Result<(), CompileError> {
        match self.next()? {
            Token::Symbol(s) if s == symbol => Ok(()),
            other => Err(CompileError::UnexpectedToken(format!("{other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<(), CompileError> {
        match self.next()? {
            Token::Ident(name) if name == "out" => {
                loop {
                    match self.next()? {
                        Token::Ident(var) => {
                            let id = *self
                                .variables
                                .get(&var)
                                .ok_or(CompileError::UnknownVariable(var))?;
                            self.builder.mark_output(id);
                        }
                        other => return Err(CompileError::UnexpectedToken(format!("{other:?}"))),
                    }
                    match self.next()? {
                        Token::Symbol(",") => continue,
                        Token::Symbol(";") => break,
                        other => return Err(CompileError::UnexpectedToken(format!("{other:?}"))),
                    }
                }
                Ok(())
            }
            Token::Ident(name) if name == "store" => {
                self.expect_symbol("(")?;
                let address = self.expression()?;
                self.expect_symbol(",")?;
                let value = self.expression()?;
                self.expect_symbol(")")?;
                self.expect_symbol(";")?;
                self.builder.node(Operation::Store, &[address, value]);
                Ok(())
            }
            Token::Ident(name) => {
                self.expect_symbol("=")?;
                let value = self.expression()?;
                self.expect_symbol(";")?;
                self.variables.insert(name, value);
                Ok(())
            }
            other => Err(CompileError::UnexpectedToken(format!("{other:?}"))),
        }
    }

    /// expression := term (("+" | "-" | "&" | "|" | "^" | "<<" | ">>") term)*
    fn expression(&mut self) -> Result<NodeId, CompileError> {
        let mut left = self.term()?;
        while let Some(Token::Symbol(op)) = self.peek() {
            let operation = match *op {
                "+" => Operation::Add,
                "-" => Operation::Sub,
                "&" => Operation::And,
                "|" => Operation::Or,
                "^" => Operation::Xor,
                "<<" => Operation::Shl,
                ">>" => Operation::Shr,
                _ => break,
            };
            self.position += 1;
            let right = self.term()?;
            left = self.builder.node(operation, &[left, right]);
        }
        Ok(left)
    }

    /// term := factor (("*" | "/" | "%") factor)*
    fn term(&mut self) -> Result<NodeId, CompileError> {
        let mut left = self.factor()?;
        while let Some(Token::Symbol(op)) = self.peek() {
            let operation = match *op {
                "*" => Operation::Mul,
                "/" => Operation::Div,
                "%" => Operation::Rem,
                _ => break,
            };
            self.position += 1;
            let right = self.factor()?;
            left = self.builder.node(operation, &[left, right]);
        }
        Ok(left)
    }

    /// factor := "~" factor | "(" expression ")" | "load" "(" expression ")"
    ///         | identifier | number
    fn factor(&mut self) -> Result<NodeId, CompileError> {
        match self.next()? {
            Token::Symbol("~") => {
                let inner = self.factor()?;
                Ok(self.builder.node(Operation::Not, &[inner]))
            }
            Token::Symbol("(") => {
                let inner = self.expression()?;
                self.expect_symbol(")")?;
                Ok(inner)
            }
            Token::Ident(name) if name == "load" => {
                self.expect_symbol("(")?;
                let address = self.expression()?;
                self.expect_symbol(")")?;
                Ok(self.builder.node(Operation::Load, &[address]))
            }
            Token::Ident(name) => {
                if let Some(&id) = self.variables.get(&name) {
                    Ok(id)
                } else {
                    let id = self.builder.input(&name);
                    self.variables.insert(name, id);
                    Ok(id)
                }
            }
            Token::Number(value) => {
                if let Some(&id) = self.constants.get(&value) {
                    Ok(id)
                } else {
                    let id = self.builder.constant(value.to_string());
                    self.constants.insert(value, id);
                    Ok(id)
                }
            }
            other => Err(CompileError::UnexpectedToken(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_expression_builds_the_expected_graph() {
        let dfg = compile_block("simple", "x = (a + b) * c; out x;").unwrap();
        // a, b, c inputs + add + mul
        assert_eq!(dfg.len(), 5);
        assert_eq!(dfg.external_inputs().len(), 3);
        let muls = dfg
            .node_ids()
            .filter(|&id| dfg.op(id) == Operation::Mul)
            .count();
        assert_eq!(muls, 1);
        assert_eq!(dfg.external_outputs().len(), 1);
    }

    #[test]
    fn precedence_of_mul_over_add() {
        let dfg = compile_block("prec", "x = a + b * c;").unwrap();
        // The multiply feeds the add, not the other way around.
        let mul = dfg
            .node_ids()
            .find(|&id| dfg.op(id) == Operation::Mul)
            .unwrap();
        let add = dfg
            .node_ids()
            .find(|&id| dfg.op(id) == Operation::Add)
            .unwrap();
        assert!(dfg.succs(mul).contains(&add));
    }

    #[test]
    fn variables_are_reused_not_duplicated() {
        let dfg = compile_block("reuse", "t = a + b; x = t * t; y = t - a; out x, y;").unwrap();
        assert_eq!(dfg.external_inputs().len(), 2);
        // a, b, add, mul, sub
        assert_eq!(dfg.len(), 5);
        assert_eq!(dfg.external_outputs().len(), 2);
    }

    #[test]
    fn loads_and_stores_are_memory_operations() {
        let dfg = compile_block("mem", "v = load(base + 4); store(base, v + 1);").unwrap();
        let loads = dfg
            .node_ids()
            .filter(|&id| dfg.op(id) == Operation::Load)
            .count();
        let stores = dfg
            .node_ids()
            .filter(|&id| dfg.op(id) == Operation::Store)
            .count();
        assert_eq!(loads, 1);
        assert_eq!(stores, 1);
        for id in dfg.node_ids() {
            if dfg.op(id).is_memory() {
                assert!(dfg.is_forbidden(id));
            }
        }
    }

    #[test]
    fn constants_are_shared_and_are_roots() {
        let dfg = compile_block("const", "x = a + 4; y = b + 4;").unwrap();
        let consts = dfg
            .node_ids()
            .filter(|&id| dfg.op(id) == Operation::Const)
            .count();
        assert_eq!(consts, 1, "the literal 4 is created once");
    }

    #[test]
    fn unary_not_and_shifts_parse() {
        let dfg = compile_block("bits", "x = ~a >> 2; y = a << 3 & b;").unwrap();
        assert!(dfg.node_ids().any(|id| dfg.op(id) == Operation::Not));
        assert!(dfg.node_ids().any(|id| dfg.op(id) == Operation::Shr));
        assert!(dfg.node_ids().any(|id| dfg.op(id) == Operation::Shl));
        assert!(dfg.node_ids().any(|id| dfg.op(id) == Operation::And));
    }

    #[test]
    fn error_cases_are_reported() {
        assert!(matches!(
            compile_block("bad", "x = a $ b;"),
            Err(CompileError::UnexpectedCharacter('$'))
        ));
        assert!(matches!(
            compile_block("bad", "x = ;"),
            Err(CompileError::UnexpectedToken(_))
        ));
        assert!(matches!(
            compile_block("bad", "x = a + b"),
            Err(CompileError::UnexpectedEnd)
        ));
        assert!(matches!(
            compile_block("bad", "out nothing;"),
            Err(CompileError::UnknownVariable(_))
        ));
        assert!(matches!(
            compile_block("empty", ""),
            Err(CompileError::Graph(_))
        ));
        let msg = CompileError::UnexpectedCharacter('$').to_string();
        assert!(msg.contains('$'));
    }

    #[test]
    fn single_less_than_is_rejected() {
        assert!(matches!(
            compile_block("bad", "x = a < b;"),
            Err(CompileError::UnexpectedCharacter('<'))
        ));
    }
}
