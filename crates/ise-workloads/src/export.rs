//! Export hooks: the standard corpus of workload blocks.
//!
//! The batch tooling (`ise-corpus`, `ise-cli`) operates on serialized corpora of basic
//! blocks rather than on graphs constructed in-crate. This module is the bridge: it
//! enumerates a *standard export* — a small, structurally diverse selection drawn from
//! every workload family this crate generates (Figure 4 trees in both orientations,
//! layered random DAGs across sizes and memory densities, MiBench-like kernels across
//! the paper's size clusters, and the expression-frontend kernels used by the
//! examples) — so that the committed `corpus/` directory can be regenerated
//! deterministically from one seed.
//!
//! # Example
//!
//! ```
//! let blocks = ise_workloads::export::standard_export(42);
//! assert!(blocks.len() >= 20);
//! // Every family is represented.
//! for family in ["tree", "random-dag", "skewed-dag", "mibench-like", "expr"] {
//!     assert!(blocks.iter().any(|b| b.family == family), "missing {family}");
//! }
//! ```

use ise_graph::Dfg;

use crate::expr::compile_block;
use crate::mibench_like::{generate_block, MiBenchLikeConfig};
use crate::random_dag::{random_dag, RandomDagConfig};
use crate::skewed_dag::{skewed_dag, SkewedDagConfig};
use crate::tree::{TreeDfgBuilder, TreeOrientation};

/// One block of the standard export: a graph plus the provenance metadata that the
/// corpus format records per block.
#[derive(Clone, Debug)]
pub struct ExportBlock {
    /// The workload family the block was drawn from (`tree`, `random-dag`,
    /// `mibench-like`, `expr`).
    pub family: &'static str,
    /// The data-flow graph; its [`Dfg::name`] doubles as the corpus file name.
    pub dfg: Dfg,
    /// Additional `(key, value)` provenance entries (seed, generator knobs).
    pub meta: Vec<(String, String)>,
}

fn meta(pairs: &[(&str, String)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(k, v)| ((*k).to_string(), v.clone()))
        .collect()
}

/// Enumerates the standard corpus export, deterministically in `seed`.
///
/// The selection is deliberately diverse rather than large (around 20 blocks): trees of
/// the paper's depths in both orientations, random DAGs sweeping size and
/// memory-operation density (including one forbidden-free graph), MiBench-like blocks
/// covering all three size clusters of §6, and the two expression kernels the examples
/// walk through. Larger corpora are expected to be produced by external importers in
/// the same format.
pub fn standard_export(seed: u64) -> Vec<ExportBlock> {
    let mut blocks = Vec::new();

    // Figure 4 trees: the exhaustive baseline's worst case (fan-out) plus the reverse
    // reduction orientation.
    for depth in [3u32, 4, 5] {
        blocks.push(ExportBlock {
            family: "tree",
            dfg: TreeDfgBuilder::new(depth).build(),
            meta: meta(&[
                ("orientation", "fan-out".to_string()),
                ("depth", depth.to_string()),
            ]),
        });
    }
    blocks.push(ExportBlock {
        family: "tree",
        dfg: TreeDfgBuilder::new(4)
            .with_orientation(TreeOrientation::FanIn)
            .build(),
        meta: meta(&[
            ("orientation", "fan-in".to_string()),
            ("depth", "4".to_string()),
        ]),
    });

    // Layered random DAGs: the E3 scaling family, sweeping size and forbidden density
    // (the largest one memory-dense enough to stay fast unbudgeted, see above).
    for (nodes, memory_pct) in [(40usize, 0usize), (80, 10), (120, 15), (160, 25), (240, 30)] {
        let cfg = RandomDagConfig::new(nodes).with_memory_ratio(memory_pct as f64 / 100.0);
        blocks.push(ExportBlock {
            family: "random-dag",
            dfg: random_dag(&cfg, seed ^ nodes as u64),
            meta: meta(&[
                ("seed", (seed ^ nodes as u64).to_string()),
                ("memory_ratio_pct", memory_pct.to_string()),
            ]),
        });
    }

    // The load-skew worst case for count-balanced task fan-out: one dense
    // forbidden-free ALU blob (all the enumeration work) amid trivial chains (all
    // the candidate padding). The committed block exercising recursive task
    // splitting in CI and the E7 skew study; kept modest so unbudgeted runs stay
    // fast.
    let skew_cfg = SkewedDagConfig::new(24, 24);
    blocks.push(ExportBlock {
        family: "skewed-dag",
        dfg: skewed_dag(&skew_cfg, seed),
        meta: meta(&[
            ("seed", seed.to_string()),
            ("heavy_nodes", "24".to_string()),
            ("chains", "24".to_string()),
        ]),
    });

    // MiBench-like kernels: all three size clusters of the §6 evaluation. The large
    // blocks get a denser memory mix — as in real unrolled kernels — which partitions
    // the graph into small clean regions and keeps unbudgeted batch runs fast (big
    // *and* memory-sparse blocks belong in budgeted experiments, not the standard
    // corpus).
    for (i, (size, memory_pct)) in [
        (12usize, 18usize),
        (24, 18),
        (48, 18),
        (64, 18),
        (96, 18),
        (150, 30),
        (300, 32),
        (500, 35),
        (850, 38),
    ]
    .into_iter()
    .enumerate()
    {
        let block_seed = seed.wrapping_add(i as u64 * 7919);
        let config = MiBenchLikeConfig::new(size).with_memory_ratio(memory_pct as f64 / 100.0);
        blocks.push(ExportBlock {
            family: "mibench-like",
            dfg: generate_block(&config, block_seed)
                .expect("the MiBench-like generator always yields a valid DFG"),
            meta: meta(&[
                ("seed", block_seed.to_string()),
                ("memory_ratio_pct", memory_pct.to_string()),
            ]),
        });
    }

    // The expression-frontend kernels the examples walk through (keep the sources in
    // sync with examples/quickstart.rs and examples/custom_fu_design.rs).
    let sad = compile_block(
        "sad-step",
        "d = a - b; \
         m = d >> 31; \
         abs = (d ^ m) - m; \
         acc2 = acc + abs; \
         out acc2;",
    )
    .expect("the quickstart kernel compiles");
    blocks.push(ExportBlock {
        family: "expr",
        dfg: sad,
        meta: meta(&[("source", "examples/quickstart.rs".to_string())]),
    });
    let arx = compile_block(
        "arx-round",
        "t1 = a + b; \
         t2 = t1 ^ (c << 7); \
         k  = load(kp + 4); \
         t3 = t2 + k; \
         t4 = t3 ^ (t1 >> 3); \
         t5 = t4 + c; \
         store(sp, t5); \
         out t4;",
    )
    .expect("the custom-FU kernel compiles");
    blocks.push(ExportBlock {
        family: "expr",
        dfg: arx,
        meta: meta(&[("source", "examples/custom_fu_design.rs".to_string())]),
    });

    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_deterministic() {
        let a = standard_export(42);
        let b = standard_export(42);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.dfg.name(), y.dfg.name());
            assert_eq!(x.dfg.len(), y.dfg.len());
            assert!(x.dfg.edges().eq(y.dfg.edges()));
            assert_eq!(x.meta, y.meta);
        }
    }

    #[test]
    fn export_names_are_unique() {
        let blocks = standard_export(42);
        let mut names: Vec<_> = blocks.iter().map(|b| b.dfg.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(
            names.len(),
            blocks.len(),
            "corpus file names must not clash"
        );
    }

    #[test]
    fn export_spans_the_size_clusters() {
        let blocks = standard_export(42);
        assert!(blocks.len() >= 20);
        let sizes: Vec<usize> = blocks.iter().map(|b| b.dfg.len()).collect();
        assert!(sizes.iter().any(|&s| s < 80), "small cluster missing");
        assert!(
            sizes.iter().any(|&s| (80..800).contains(&s)),
            "medium cluster missing"
        );
        assert!(sizes.iter().any(|&s| s >= 800), "large cluster missing");
        // At least one block without forbidden vertices and one with them.
        assert!(blocks.iter().any(|b| b.dfg.forbidden().is_empty()));
        assert!(blocks.iter().any(|b| !b.dfg.forbidden().is_empty()));
    }
}
