//! The [`FlowGraph`] abstraction and the forward/reverse adapters over [`RootedDfg`].

use ise_graph::{NodeId, RootedDfg};

/// A rooted directed graph as seen by the dominator algorithms.
///
/// Vertex ids must be dense indices in `0..num_nodes()`. Implementations are cheap
/// adapters; the two interesting ones are [`Forward`] (dominators from the artificial
/// source) and [`Reverse`] (postdominators from the artificial sink).
pub trait FlowGraph {
    /// Number of vertices (dense index space).
    fn num_nodes(&self) -> usize;
    /// The root from which dominance is computed.
    fn root(&self) -> NodeId;
    /// Successors of `node`.
    fn succs(&self, node: NodeId) -> &[NodeId];
    /// Predecessors of `node`.
    fn preds(&self, node: NodeId) -> &[NodeId];
}

/// Adapter exposing a [`RootedDfg`] rooted at its artificial source (data-flow
/// direction). Dominators computed on this view are the paper's dominators.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::{Forward, FlowGraph};
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let _x = b.node(Operation::Not, &[a]);
/// let rooted = RootedDfg::new(b.build()?);
/// let fwd = Forward(&rooted);
/// assert_eq!(fwd.root(), rooted.source());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Forward<'a>(pub &'a RootedDfg);

impl FlowGraph for Forward<'_> {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }

    fn root(&self) -> NodeId {
        self.0.source()
    }

    fn succs(&self, node: NodeId) -> &[NodeId] {
        self.0.succs(node)
    }

    fn preds(&self, node: NodeId) -> &[NodeId] {
        self.0.preds(node)
    }
}

/// Adapter exposing a [`RootedDfg`] with all edges reversed, rooted at its artificial
/// sink. Dominators computed on this view are the paper's postdominators.
#[derive(Clone, Copy, Debug)]
pub struct Reverse<'a>(pub &'a RootedDfg);

impl FlowGraph for Reverse<'_> {
    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }

    fn root(&self) -> NodeId {
        self.0.sink()
    }

    fn succs(&self, node: NodeId) -> &[NodeId] {
        self.0.preds(node)
    }

    fn preds(&self, node: NodeId) -> &[NodeId] {
        self.0.succs(node)
    }
}

impl<G: FlowGraph + ?Sized> FlowGraph for &G {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }

    fn root(&self) -> NodeId {
        (**self).root()
    }

    fn succs(&self, node: NodeId) -> &[NodeId] {
        (**self).succs(node)
    }

    fn preds(&self, node: NodeId) -> &[NodeId] {
        (**self).preds(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DfgBuilder, Operation};

    fn rooted() -> RootedDfg {
        let mut b = DfgBuilder::new("bb");
        let a = b.input("a");
        let x = b.node(Operation::Not, &[a]);
        let _y = b.node(Operation::Add, &[x, a]);
        RootedDfg::new(b.build().unwrap())
    }

    #[test]
    fn forward_matches_graph() {
        let r = rooted();
        let g = Forward(&r);
        assert_eq!(g.num_nodes(), r.num_nodes());
        assert_eq!(g.root(), r.source());
        for v in r.node_ids() {
            assert_eq!(g.succs(v), r.succs(v));
            assert_eq!(g.preds(v), r.preds(v));
        }
    }

    #[test]
    fn reverse_swaps_edges() {
        let r = rooted();
        let g = Reverse(&r);
        assert_eq!(g.root(), r.sink());
        for v in r.node_ids() {
            assert_eq!(g.succs(v), r.preds(v));
            assert_eq!(g.preds(v), r.succs(v));
        }
    }

    #[test]
    fn reference_impl_delegates() {
        let r = rooted();
        let g = Forward(&r);
        let by_ref: &dyn FlowGraph = &g;
        assert_eq!((&by_ref).num_nodes(), g.num_nodes());
        assert_eq!((&by_ref).root(), g.root());
    }
}
