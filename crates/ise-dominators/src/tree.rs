//! The dominator tree with constant-time ancestry queries.

use ise_graph::{DenseNodeSet, NodeId};

/// A dominator (or postdominator) tree.
///
/// Stores the immediate dominator of every vertex reachable from the root, the tree
/// children, and pre/post numbering of the tree so that [`DominatorTree::dominates`]
/// answers ancestry queries in constant time (§5.4 of the paper requires constant-time
/// ancestor queries on both the dominator and the postdominator tree).
///
/// Vertices that are unreachable from the root (for example because they were removed
/// when computing dominators of a *reduced* graph) have no immediate dominator and are
/// reported as not dominated by anything, not even themselves.
#[derive(Clone, Debug)]
pub struct DominatorTree {
    root: NodeId,
    idom: Vec<Option<NodeId>>,
    reachable: DenseNodeSet,
    /// Preorder interval [enter, exit) of each vertex in the dominator tree; `a`
    /// dominates `b` iff `enter[a] <= enter[b] < exit[a]`.
    enter: Vec<u32>,
    exit: Vec<u32>,
}

impl DominatorTree {
    /// Builds the tree from the immediate-dominator array produced by one of the
    /// dominator algorithms.
    ///
    /// `idom[v]` must be `None` for the root and for unreachable vertices.
    ///
    /// # Panics
    ///
    /// Panics if `idom` links form a cycle (which would indicate a bug in the algorithm
    /// that produced them).
    pub fn from_idoms(root: NodeId, idom: Vec<Option<NodeId>>) -> Self {
        let n = idom.len();
        let mut reachable = DenseNodeSet::new(n);
        reachable.insert(root);
        for (i, parent) in idom.iter().enumerate() {
            if parent.is_some() {
                reachable.insert(NodeId::from_index(i));
            }
        }

        // Build children lists and a preorder numbering of the dominator tree.
        let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for (i, parent) in idom.iter().enumerate() {
            if let Some(parent) = parent {
                children[parent.index()].push(NodeId::from_index(i));
            }
        }
        let mut enter = vec![0u32; n];
        let mut exit = vec![0u32; n];
        let mut clock = 0u32;
        // Iterative DFS over the dominator tree.
        let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
        enter[root.index()] = clock;
        clock += 1;
        while let Some(&mut (node, ref mut child_idx)) = stack.last_mut() {
            if *child_idx < children[node.index()].len() {
                let child = children[node.index()][*child_idx];
                *child_idx += 1;
                enter[child.index()] = clock;
                clock += 1;
                stack.push((child, 0));
            } else {
                exit[node.index()] = clock;
                stack.pop();
            }
        }
        assert!(
            clock as usize <= n,
            "idom array visits more vertices than exist; cyclic idom links?"
        );

        DominatorTree {
            root,
            idom,
            reachable,
            enter,
            exit,
        }
    }

    /// The root of the tree (the artificial source for dominators, the sink for
    /// postdominators).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The immediate dominator of `node`, or `None` for the root and for vertices
    /// unreachable from the root.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn idom(&self, node: NodeId) -> Option<NodeId> {
        self.idom[node.index()]
    }

    /// Whether `node` is reachable from the root (and therefore has dominator
    /// information).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.reachable.contains(node)
    }

    /// Whether `a` dominates `b` (reflexively: every vertex dominates itself).
    ///
    /// Returns `false` if either vertex is unreachable from the root.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        self.enter[a.index()] <= self.enter[b.index()]
            && self.enter[b.index()] < self.exit[a.index()]
    }

    /// Whether `a` strictly dominates `b` (`a != b` and `a` dominates `b`).
    pub fn strictly_dominates(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.dominates(a, b)
    }

    /// Iterates over the strict dominators of `node`, from its immediate dominator up to
    /// the root. Empty for the root and for unreachable vertices.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn strict_dominators(&self, node: NodeId) -> StrictDominators<'_> {
        StrictDominators {
            tree: self,
            current: self.idom[node.index()],
        }
    }

    /// Number of vertices of the underlying graph (the index space of the tree).
    pub fn len(&self) -> usize {
        self.idom.len()
    }

    /// Whether the tree covers no vertices. Always `false` for trees built from a
    /// non-empty graph.
    pub fn is_empty(&self) -> bool {
        self.idom.is_empty()
    }

    /// The set of vertices reachable from the root.
    pub fn reachable(&self) -> &DenseNodeSet {
        &self.reachable
    }
}

/// Iterator over the strict dominators of a vertex, produced by
/// [`DominatorTree::strict_dominators`].
pub struct StrictDominators<'a> {
    tree: &'a DominatorTree,
    current: Option<NodeId>,
}

impl Iterator for StrictDominators<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let node = self.current?;
        self.current = self.tree.idom[node.index()];
        Some(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// Dominator tree:
    ///        0
    ///       / \
    ///      1   2
    ///     / \
    ///    3   4
    /// Node 5 is unreachable.
    fn sample() -> DominatorTree {
        DominatorTree::from_idoms(
            n(0),
            vec![None, Some(n(0)), Some(n(0)), Some(n(1)), Some(n(1)), None],
        )
    }

    #[test]
    fn idom_accessors() {
        let t = sample();
        assert_eq!(t.root(), n(0));
        assert_eq!(t.idom(n(3)), Some(n(1)));
        assert_eq!(t.idom(n(0)), None);
        assert_eq!(t.idom(n(5)), None);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    fn reachability() {
        let t = sample();
        assert!(t.is_reachable(n(0)));
        assert!(t.is_reachable(n(4)));
        assert!(!t.is_reachable(n(5)));
        assert_eq!(t.reachable().len(), 5);
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let t = sample();
        for i in 0..5 {
            assert!(t.dominates(n(i), n(i)), "reflexive for {i}");
        }
        assert!(t.dominates(n(0), n(3)));
        assert!(t.dominates(n(1), n(3)));
        assert!(t.dominates(n(1), n(4)));
        assert!(!t.dominates(n(2), n(3)));
        assert!(!t.dominates(n(3), n(1)));
        assert!(!t.dominates(n(4), n(3)));
    }

    #[test]
    fn unreachable_vertices_dominate_nothing() {
        let t = sample();
        assert!(!t.dominates(n(5), n(5)));
        assert!(!t.dominates(n(0), n(5)));
        assert!(!t.dominates(n(5), n(0)));
    }

    #[test]
    fn strict_domination_excludes_self() {
        let t = sample();
        assert!(t.strictly_dominates(n(1), n(3)));
        assert!(!t.strictly_dominates(n(3), n(3)));
    }

    #[test]
    fn strict_dominator_chain_walks_to_root() {
        let t = sample();
        let chain: Vec<NodeId> = t.strict_dominators(n(3)).collect();
        assert_eq!(chain, vec![n(1), n(0)]);
        assert_eq!(t.strict_dominators(n(0)).count(), 0);
        assert_eq!(t.strict_dominators(n(5)).count(), 0);
    }
}
