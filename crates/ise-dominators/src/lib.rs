//! Single- and multiple-vertex dominator computation for ISE identification.
//!
//! This crate provides the dominator machinery required by the polynomial-time convex
//! subgraph enumeration of Bonzini & Pozzi (DATE 2007):
//!
//! * [`lengauer_tarjan`] — the `O(e log n)` Lengauer–Tarjan algorithm (simple variant
//!   with path compression, §5.4 of the paper) over any [`FlowGraph`], optionally with a
//!   set of *removed* vertices so that it can run on the reduced graphs required by the
//!   multiple-vertex dominator construction;
//! * [`LtWorkspace`] — reusable scratch memory for repeated Lengauer–Tarjan runs over
//!   the same graph, so the per-candidate runs of the incremental enumeration perform
//!   no allocations;
//! * [`iterative_dominators`] — the Cooper–Harvey–Kennedy iterative algorithm, used as a
//!   cross-checking oracle and as an ablation alternative;
//! * [`DominatorTree`] — immediate dominators plus constant-time `dominates` ancestry
//!   queries (§5.4: "Ancestor queries … can be performed in constant time");
//! * [`postdominators`] — dominators of the reverse graph, rooted at the artificial
//!   sink;
//! * [`multi`] — generalized (multiple-vertex) dominators in the sense of Gupta and
//!   Dubrova et al.: verification of the two defining conditions and polynomial
//!   enumeration of all dominator sets up to a given cardinality.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ise_dominators::{dominators, postdominators, Forward};
//! use ise_graph::{DfgBuilder, Operation, RootedDfg};
//!
//! let mut b = DfgBuilder::new("bb");
//! let a = b.input("a");
//! let x = b.node(Operation::Not, &[a]);
//! let y = b.node(Operation::Add, &[x, a]);
//! let rooted = RootedDfg::new(b.build()?);
//!
//! let dom = dominators(&Forward(&rooted));
//! assert!(dom.dominates(a, y));
//! let pdom = postdominators(&rooted);
//! assert!(pdom.dominates(y, a));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flow;
mod iterative;
mod lt;
pub mod multi;
mod tree;

pub use flow::{FlowGraph, Forward, Reverse};
pub use iterative::iterative_dominators;
pub use lt::{lengauer_tarjan, lengauer_tarjan_reduced, LtWorkspace};
pub use tree::DominatorTree;

use ise_graph::RootedDfg;

/// Computes the dominator tree of a rooted flow graph using Lengauer–Tarjan.
///
/// This is a convenience wrapper over [`lengauer_tarjan`]. For the augmented data-flow
/// graph of a basic block use `dominators(&Forward(&rooted))`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::{dominators, Forward};
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let rooted = RootedDfg::new(b.build()?);
/// let dom = dominators(&Forward(&rooted));
/// assert_eq!(dom.idom(x), Some(a));
/// # Ok(())
/// # }
/// ```
pub fn dominators<G: FlowGraph>(graph: &G) -> DominatorTree {
    lengauer_tarjan(graph)
}

/// Computes the postdominator tree of the augmented data-flow graph (dominators of the
/// reverse graph, rooted at the artificial sink).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::postdominators;
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let y = b.node(Operation::Xor, &[x]);
/// let rooted = RootedDfg::new(b.build()?);
/// let pdom = postdominators(&rooted);
/// assert!(pdom.dominates(y, x), "y postdominates x");
/// # Ok(())
/// # }
/// ```
pub fn postdominators(graph: &RootedDfg) -> DominatorTree {
    lengauer_tarjan(&Reverse(graph))
}
