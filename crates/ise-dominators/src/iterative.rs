//! The Cooper–Harvey–Kennedy iterative dominator algorithm.
//!
//! Asymptotically slower than Lengauer–Tarjan but short and easy to convince oneself of,
//! which makes it the ideal cross-checking oracle for the optimized implementation
//! (§5.4 of the paper reports that most of the enumeration time is spent computing
//! dominators, so the fast path must be validated carefully). It is also exposed as an
//! alternative engine for the dominator ablation experiment (E5 in DESIGN.md).

use ise_graph::{DenseNodeSet, NodeId};

use crate::flow::FlowGraph;
use crate::tree::DominatorTree;

/// Computes the dominator tree of `graph` with the iterative data-flow algorithm.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::{iterative_dominators, Forward};
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let rooted = RootedDfg::new(b.build()?);
/// let tree = iterative_dominators(&Forward(&rooted));
/// assert_eq!(tree.idom(x), Some(a));
/// # Ok(())
/// # }
/// ```
pub fn iterative_dominators<G: FlowGraph>(graph: &G) -> DominatorTree {
    let empty = DenseNodeSet::new(graph.num_nodes());
    iterative_dominators_reduced(graph, &empty)
}

/// Computes the dominator tree of the reduced graph obtained by deleting the vertices in
/// `removed`, with the iterative data-flow algorithm.
///
/// # Panics
///
/// Panics if the root is in `removed` or if `removed` was sized for a different graph.
pub fn iterative_dominators_reduced<G: FlowGraph>(
    graph: &G,
    removed: &DenseNodeSet,
) -> DominatorTree {
    let n = graph.num_nodes();
    let root = graph.root();
    assert_eq!(
        removed.capacity(),
        n,
        "removed-vertex set sized for a different graph"
    );
    assert!(
        !removed.contains(root),
        "the root of the flow graph cannot be removed"
    );

    // Postorder numbering of the reachable, non-removed subgraph.
    let mut postorder_of = vec![usize::MAX; n];
    let mut order: Vec<NodeId> = Vec::new(); // nodes in postorder
    let mut visited = DenseNodeSet::new(n);
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    visited.insert(root);
    while let Some(&mut (node, ref mut next_child)) = stack.last_mut() {
        let succs = graph.succs(node);
        let mut advanced = false;
        while *next_child < succs.len() {
            let succ = succs[*next_child];
            *next_child += 1;
            if !visited.contains(succ) && !removed.contains(succ) {
                visited.insert(succ);
                stack.push((succ, 0));
                advanced = true;
                break;
            }
        }
        if !advanced {
            postorder_of[node.index()] = order.len();
            order.push(node);
            stack.pop();
        }
    }

    // idom is stored as postorder indices while iterating.
    let mut idom: Vec<usize> = vec![usize::MAX; order.len()];
    let root_po = postorder_of[root.index()];
    idom[root_po] = root_po;

    let intersect = |idom: &[usize], mut a: usize, mut b: usize| -> usize {
        while a != b {
            while a < b {
                a = idom[a];
            }
            while b < a {
                b = idom[b];
            }
        }
        a
    };

    let mut changed = true;
    while changed {
        changed = false;
        // Reverse postorder, skipping the root.
        for po in (0..order.len()).rev() {
            if po == root_po {
                continue;
            }
            let node = order[po];
            let mut new_idom = usize::MAX;
            for &p in graph.preds(node) {
                if removed.contains(p) {
                    continue;
                }
                let ppo = postorder_of[p.index()];
                if ppo == usize::MAX || idom[ppo] == usize::MAX {
                    continue; // unreachable or not yet processed
                }
                new_idom = if new_idom == usize::MAX {
                    ppo
                } else {
                    intersect(&idom, ppo, new_idom)
                };
            }
            if new_idom != usize::MAX && idom[po] != new_idom {
                idom[po] = new_idom;
                changed = true;
            }
        }
    }

    let mut idom_nodes: Vec<Option<NodeId>> = vec![None; n];
    for (po, &node) in order.iter().enumerate() {
        if po != root_po && idom[po] != usize::MAX {
            idom_nodes[node.index()] = Some(order[idom[po]]);
        }
    }
    DominatorTree::from_idoms(root, idom_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Forward, Reverse};
    use ise_graph::{DfgBuilder, Operation, RootedDfg};

    fn diamond() -> RootedDfg {
        let mut b = DfgBuilder::new("diamond");
        let a = b.input("a");
        let l = b.node(Operation::Shl, &[a]);
        let r = b.node(Operation::Shr, &[a]);
        let m = b.node(Operation::Add, &[l, r]);
        let _t = b.node(Operation::Not, &[m]);
        RootedDfg::new(b.build().unwrap())
    }

    #[test]
    fn diamond_dominators() {
        let g = diamond();
        let tree = iterative_dominators(&Forward(&g));
        let (a, l, r, m, t) = (
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
            NodeId::new(4),
        );
        assert_eq!(tree.idom(a), Some(g.source()));
        assert_eq!(tree.idom(l), Some(a));
        assert_eq!(tree.idom(r), Some(a));
        assert_eq!(tree.idom(m), Some(a), "join point is dominated by the fork");
        assert_eq!(tree.idom(t), Some(m));
    }

    #[test]
    fn diamond_postdominators() {
        let g = diamond();
        let tree = iterative_dominators(&Reverse(&g));
        let (a, l, m, t) = (
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(3),
            NodeId::new(4),
        );
        assert_eq!(tree.idom(a), Some(m));
        assert_eq!(tree.idom(l), Some(m));
        assert_eq!(tree.idom(m), Some(t));
        assert_eq!(tree.idom(t), Some(g.sink()));
    }

    #[test]
    fn reduced_variant_reroutes_dominance() {
        let g = diamond();
        let (a, l, r, m) = (
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
        );
        let mut removed = g.node_set();
        removed.insert(l);
        let tree = iterative_dominators_reduced(&Forward(&g), &removed);
        assert_eq!(
            tree.idom(m),
            Some(r),
            "with the left arm removed, m is reached only via r"
        );
        assert!(!tree.is_reachable(l));
        assert!(tree.dominates(a, m));
    }

    #[test]
    #[should_panic(expected = "sized for a different graph")]
    fn wrong_capacity_panics() {
        let g = diamond();
        let removed = DenseNodeSet::new(3);
        let _ = iterative_dominators_reduced(&Forward(&g), &removed);
    }
}
