//! The Lengauer–Tarjan dominator algorithm (simple variant, `O(e log n)`).
//!
//! §5.4 of the paper: "To compute dominators, we implemented the O(n log n) variant of
//! the Lengauer–Tarjan algorithm, which employs path compression but no tree balancing",
//! with an *iterative* `eval` ("switching to an iterative implementation cut the number
//! of memory accesses by a third"). This module follows that prescription: the DFS, the
//! path compression and the bucket processing are all iterative, and the algorithm can
//! run on a *reduced* graph (a subset of vertices removed) as required by the
//! multiple-vertex dominator construction of Dubrova et al. (§5.2).

use ise_graph::{DenseNodeSet, NodeId};

use crate::flow::FlowGraph;
use crate::tree::DominatorTree;

const UNDEF: u32 = u32::MAX;

/// Reusable scratch memory for [`lengauer_tarjan_reduced`]-style runs.
///
/// The incremental enumeration of the paper invokes Lengauer–Tarjan once per
/// `PICK-INPUTS` step — thousands of times per basic block — and §5.4 attributes most of
/// the run time to those invocations. A `LtWorkspace` keeps every per-run vector
/// (DFS numbering, semidominators, path-compression forest, buckets, immediate
/// dominators) alive between runs, so repeated runs over the same graph perform no
/// allocations at all. After [`LtWorkspace::run_reduced`] the immediate dominators can
/// be read back directly ([`LtWorkspace::idom`], [`LtWorkspace::is_reachable`]) without
/// materializing a [`DominatorTree`], which is what makes per-candidate dominator
/// queries cheap.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::{Forward, LtWorkspace};
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let rooted = RootedDfg::new(b.build()?);
/// let empty = rooted.node_set();
///
/// let mut ws = LtWorkspace::new();
/// ws.run_reduced(&Forward(&rooted), &empty);
/// assert_eq!(ws.idom(x), Some(a));
/// assert!(ws.is_reachable(x));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct LtWorkspace {
    dfnum: Vec<u32>,
    parent: Vec<Option<NodeId>>,
    vertex: Vec<NodeId>,
    semi: Vec<u32>,
    ancestor: Vec<Option<NodeId>>,
    label: Vec<NodeId>,
    bucket: Vec<Vec<NodeId>>,
    idom: Vec<Option<NodeId>>,
    dfs_stack: Vec<(NodeId, Option<NodeId>)>,
    compress_stack: Vec<NodeId>,
}

impl LtWorkspace {
    /// Creates an empty workspace; buffers are sized lazily on the first run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resizes and reinitializes every buffer for a graph of `n` vertices.
    fn reset(&mut self, n: usize) {
        self.dfnum.clear();
        self.dfnum.resize(n, UNDEF);
        self.parent.clear();
        self.parent.resize(n, None);
        self.vertex.clear();
        self.vertex.reserve(n);
        self.semi.clear();
        self.semi.resize(n, UNDEF);
        self.ancestor.clear();
        self.ancestor.resize(n, None);
        self.label.clear();
        self.label.extend((0..n).map(NodeId::from_index));
        // Buckets are drained by the main loop, so only the length needs fixing; the
        // inner vectors keep their capacity across runs.
        self.bucket.iter_mut().for_each(Vec::clear);
        self.bucket.resize_with(n, Vec::new);
        self.idom.clear();
        self.idom.resize(n, None);
    }

    /// Runs Lengauer–Tarjan on the *reduced* graph obtained by deleting the vertices in
    /// `removed` from `graph`, storing the result in the workspace.
    ///
    /// # Panics
    ///
    /// Panics if the root itself is in `removed`, or if `removed` was sized for a
    /// different graph.
    pub fn run_reduced<G: FlowGraph>(&mut self, graph: &G, removed: &DenseNodeSet) {
        let n = graph.num_nodes();
        let root = graph.root();
        assert_eq!(
            removed.capacity(),
            n,
            "removed-vertex set sized for a different graph"
        );
        assert!(
            !removed.contains(root),
            "the root of the flow graph cannot be removed"
        );
        self.reset(n);

        // Iterative depth-first numbering, skipping removed vertices.
        self.dfs_stack.clear();
        self.dfs_stack.push((root, None));
        while let Some((node, from)) = self.dfs_stack.pop() {
            if self.dfnum[node.index()] != UNDEF {
                continue;
            }
            self.dfnum[node.index()] = self.vertex.len() as u32;
            self.vertex.push(node);
            self.parent[node.index()] = from;
            // Push successors in reverse so that the first successor is visited first;
            // the visiting order does not affect correctness, only determinism.
            for &succ in graph.succs(node).iter().rev() {
                if self.dfnum[succ.index()] == UNDEF && !removed.contains(succ) {
                    self.dfs_stack.push((succ, Some(node)));
                }
            }
        }

        let reached = self.vertex.len();
        // semi[v] holds a dfnum; initially each vertex is its own semidominator
        // (UNDEF for unreachable vertices).
        self.semi.copy_from_slice(&self.dfnum);

        // Main loop: vertices in decreasing dfnum order, excluding the root.
        for i in (1..reached).rev() {
            let w = self.vertex[i];
            // Step 2: compute the semidominator of w.
            for &v in graph.preds(w) {
                if self.dfnum[v.index()] == UNDEF || removed.contains(v) {
                    continue; // predecessor unreachable or deleted in the reduced graph
                }
                let u = eval(
                    &mut self.compress_stack,
                    &mut self.ancestor,
                    &mut self.label,
                    &self.semi,
                    v,
                );
                if self.semi[u.index()] < self.semi[w.index()] {
                    self.semi[w.index()] = self.semi[u.index()];
                }
            }
            self.bucket[self.vertex[self.semi[w.index()] as usize].index()].push(w);
            // LINK(parent[w], w).
            let p = self.parent[w.index()].expect("non-root reachable vertices have DFS parents");
            self.ancestor[w.index()] = Some(p);
            // Step 3: implicitly compute immediate dominators for the vertices in
            // bucket(parent[w]). Draining in place keeps the bucket's capacity for the
            // next run.
            while let Some(v) = self.bucket[p.index()].pop() {
                let u = eval(
                    &mut self.compress_stack,
                    &mut self.ancestor,
                    &mut self.label,
                    &self.semi,
                    v,
                );
                self.idom[v.index()] = if self.semi[u.index()] < self.semi[v.index()] {
                    Some(u)
                } else {
                    Some(p)
                };
            }
        }

        // Step 4: fill in immediate dominators in increasing dfnum order.
        for i in 1..reached {
            let w = self.vertex[i];
            if self.idom[w.index()] != Some(self.vertex[self.semi[w.index()] as usize]) {
                let via = self.idom[w.index()].expect("bucket pass assigned a provisional idom");
                self.idom[w.index()] = self.idom[via.index()];
            }
        }
        self.idom[root.index()] = None;
    }

    /// The immediate dominator of `node` in the last run, or `None` for the root and
    /// for vertices unreachable in the reduced graph.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the last run's graph.
    #[inline]
    pub fn idom(&self, node: NodeId) -> Option<NodeId> {
        self.idom[node.index()]
    }

    /// Whether `node` was reachable from the root in the last run's reduced graph.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the last run's graph.
    #[inline]
    pub fn is_reachable(&self, node: NodeId) -> bool {
        self.dfnum[node.index()] != UNDEF
    }

    /// Builds a full [`DominatorTree`] (with constant-time ancestry queries) from the
    /// last run.
    ///
    /// # Panics
    ///
    /// Panics if the workspace has never run.
    pub fn to_tree(&self) -> DominatorTree {
        let root = *self
            .vertex
            .first()
            .expect("the workspace has completed at least one run");
        DominatorTree::from_idoms(root, self.idom.clone())
    }
}

/// Iterative path-compressing EVAL (§5.4: an iterative implementation avoids the
/// recursion that the compiler cannot collapse once path compression kicks in).
fn eval(
    compress_stack: &mut Vec<NodeId>,
    ancestor: &mut [Option<NodeId>],
    label: &mut [NodeId],
    semi: &[u32],
    v: NodeId,
) -> NodeId {
    if ancestor[v.index()].is_none() {
        return v;
    }
    // Collect the path from v towards the forest root (excluding the root itself).
    compress_stack.clear();
    let mut x = v;
    while let Some(a) = ancestor[x.index()] {
        if ancestor[a.index()].is_some() {
            compress_stack.push(x);
            x = a;
        } else {
            break;
        }
    }
    // Unwind from the top so every ancestor link is already compressed.
    while let Some(x) = compress_stack.pop() {
        let a = ancestor[x.index()].expect("path vertices have ancestors");
        if semi[label[a.index()].index()] < semi[label[x.index()].index()] {
            label[x.index()] = label[a.index()];
        }
        ancestor[x.index()] = ancestor[a.index()];
    }
    label[v.index()]
}

/// Computes the dominator tree of `graph` rooted at [`FlowGraph::root`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::{lengauer_tarjan, Forward};
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let y = b.node(Operation::Add, &[x, a]);
/// let rooted = RootedDfg::new(b.build()?);
/// let tree = lengauer_tarjan(&Forward(&rooted));
/// assert_eq!(tree.idom(y), Some(a));
/// # Ok(())
/// # }
/// ```
pub fn lengauer_tarjan<G: FlowGraph>(graph: &G) -> DominatorTree {
    let empty = DenseNodeSet::new(graph.num_nodes());
    lengauer_tarjan_reduced(graph, &empty)
}

/// Computes the dominator tree of the *reduced* graph obtained by deleting the vertices
/// in `removed` (and every edge incident to them) from `graph`.
///
/// Vertices that become unreachable from the root are reported as unreachable by the
/// resulting [`DominatorTree`]. This is the primitive used to enumerate multiple-vertex
/// dominators: removing a seed set and asking for single-vertex dominators of the
/// remaining graph (§5.2).
///
/// # Panics
///
/// Panics if the root itself is in `removed`, or if `removed` was sized for a different
/// graph.
pub fn lengauer_tarjan_reduced<G: FlowGraph>(graph: &G, removed: &DenseNodeSet) -> DominatorTree {
    let mut ws = LtWorkspace::new();
    ws.run_reduced(graph, removed);
    // The workspace is discarded, so the idom vector can be moved instead of cloned.
    DominatorTree::from_idoms(graph.root(), ws.idom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Forward, Reverse};
    use crate::iterative::iterative_dominators_reduced;
    use ise_graph::{Dfg, DfgBuilder, Operation, RootedDfg};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// The running example of Figure 1 of the paper.
    ///
    /// Roots A(0), B(1), C(2); N(3) = op(A,B); X(4) = op(N,B); Y(5) = op(N,C);
    /// X and Y are the external outputs.
    fn figure1() -> RootedDfg {
        let mut b = DfgBuilder::new("figure1");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let nn = b.named_node(Operation::Add, &[a, bb], Some("N"));
        let x = b.named_node(Operation::Mul, &[nn, bb], Some("X"));
        let y = b.named_node(Operation::Sub, &[nn, c], Some("Y"));
        b.mark_output(x);
        b.mark_output(y);
        RootedDfg::new(b.build().unwrap())
    }

    #[test]
    fn dominators_on_figure1() {
        let r = figure1();
        let tree = lengauer_tarjan(&Forward(&r));
        // All roots are immediately dominated by the artificial source.
        assert_eq!(tree.idom(n(0)), Some(r.source()));
        assert_eq!(tree.idom(n(1)), Some(r.source()));
        assert_eq!(tree.idom(n(2)), Some(r.source()));
        // N, X and Y join paths from several roots, so their only single-vertex
        // dominator is the source.
        assert_eq!(tree.idom(n(3)), Some(r.source()));
        assert_eq!(tree.idom(n(4)), Some(r.source()));
        assert_eq!(tree.idom(n(5)), Some(r.source()));
        assert!(tree.dominates(r.source(), n(5)));
    }

    #[test]
    fn postdominators_on_figure1() {
        let r = figure1();
        let tree = lengauer_tarjan(&Reverse(&r));
        // X and Y flow only into the sink.
        assert_eq!(tree.idom(n(4)), Some(r.sink()));
        assert_eq!(tree.idom(n(5)), Some(r.sink()));
        // C is only used by Y, so Y postdominates C.
        assert_eq!(tree.idom(n(2)), Some(n(5)));
        // N flows into both X and Y, so its immediate postdominator is the sink.
        assert_eq!(tree.idom(n(3)), Some(r.sink()));
        assert!(tree.dominates(n(5), n(2)));
    }

    #[test]
    fn linear_chain_dominators() {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let x1 = b.node(Operation::Not, &[a]);
        let x2 = b.node(Operation::Shl, &[x1]);
        let x3 = b.node(Operation::Add, &[x2]);
        let r = RootedDfg::new(b.build().unwrap());
        let tree = lengauer_tarjan(&Forward(&r));
        assert_eq!(tree.idom(x1), Some(a));
        assert_eq!(tree.idom(x2), Some(x1));
        assert_eq!(tree.idom(x3), Some(x2));
        assert!(tree.dominates(x1, x3));
        assert!(!tree.dominates(x3, x1));
    }

    #[test]
    fn reduced_graph_skips_removed_vertices() {
        // a -> {u, v} -> m: removing u makes v dominate m.
        let mut b = DfgBuilder::new("reduced");
        let a = b.input("a");
        let u = b.node(Operation::Not, &[a]);
        let v = b.node(Operation::Shl, &[a]);
        let m = b.node(Operation::Add, &[u, v]);
        let r = RootedDfg::new(b.build().unwrap());

        let full = lengauer_tarjan(&Forward(&r));
        assert_eq!(full.idom(m), Some(a));

        let mut removed = r.node_set();
        removed.insert(u);
        let reduced = lengauer_tarjan_reduced(&Forward(&r), &removed);
        assert_eq!(reduced.idom(m), Some(v));
        assert!(!reduced.is_reachable(u));
    }

    #[test]
    fn removing_all_paths_makes_vertices_unreachable() {
        let mut b = DfgBuilder::new("cutoff");
        let a = b.input("a");
        let u = b.node(Operation::Not, &[a]);
        let m = b.node(Operation::Add, &[u]);
        let r = RootedDfg::new(b.build().unwrap());
        let mut removed = r.node_set();
        removed.insert(u);
        let tree = lengauer_tarjan_reduced(&Forward(&r), &removed);
        assert!(!tree.is_reachable(m));
        assert_eq!(tree.idom(m), None);
        assert!(!tree.dominates(a, m));
    }

    #[test]
    fn workspace_reuse_matches_fresh_runs() {
        // Run the same workspace over a sequence of different reduced graphs and check
        // each run against a fresh computation: stale state must never leak through.
        let r = figure1();
        let g = Forward(&r);
        let mut ws = LtWorkspace::new();
        for victim in 0..6usize {
            let mut removed = r.node_set();
            removed.insert(n(victim));
            ws.run_reduced(&g, &removed);
            let fresh = lengauer_tarjan_reduced(&g, &removed);
            for v in r.node_ids() {
                assert_eq!(ws.idom(v), fresh.idom(v), "victim {victim}, node {v}");
                assert_eq!(
                    ws.is_reachable(v),
                    fresh.is_reachable(v),
                    "victim {victim}, node {v}"
                );
            }
            assert_eq!(ws.to_tree().idom(n(3)), fresh.idom(n(3)));
        }
    }

    #[test]
    #[should_panic(expected = "root of the flow graph cannot be removed")]
    fn removing_the_root_panics() {
        let mut b = DfgBuilder::new("bad");
        let a = b.input("a");
        let _ = b.node(Operation::Not, &[a]);
        let r = RootedDfg::new(b.build().unwrap());
        let mut removed = r.node_set();
        removed.insert(r.source());
        let _ = lengauer_tarjan_reduced(&Forward(&r), &removed);
    }

    /// Cross-check Lengauer–Tarjan against the iterative algorithm on a batch of
    /// pseudo-random DAGs.
    #[test]
    fn matches_iterative_algorithm_on_random_dags() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..60 {
            let n = 3 + (next() % 40) as usize;
            let mut ops = vec![Operation::Input];
            let mut edges = Vec::new();
            for i in 1..n {
                ops.push(if next() % 7 == 0 {
                    Operation::Load
                } else {
                    Operation::Add
                });
                // Every node gets 1..=3 predecessors among earlier nodes.
                let npreds = 1 + (next() % 3) as usize;
                for _ in 0..npreds {
                    let p = (next() % i as u64) as usize;
                    edges.push((n_of(p), n_of(i)));
                }
            }
            let dfg = Dfg::from_edges(format!("rand{case}"), ops, edges, [], []).unwrap();
            let rooted = RootedDfg::new(dfg);
            let empty = rooted.node_set();

            for direction in 0..2 {
                let (lt, it) = if direction == 0 {
                    (
                        lengauer_tarjan(&Forward(&rooted)),
                        iterative_dominators_reduced(&Forward(&rooted), &empty),
                    )
                } else {
                    (
                        lengauer_tarjan(&Reverse(&rooted)),
                        iterative_dominators_reduced(&Reverse(&rooted), &empty),
                    )
                };
                for v in rooted.node_ids() {
                    assert_eq!(
                        lt.idom(v),
                        it.idom(v),
                        "case {case}, direction {direction}, node {v}"
                    );
                }
            }
        }
    }

    fn n_of(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn reduced_cross_check_on_random_dags() {
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..40 {
            let n = 4 + (next() % 30) as usize;
            let mut ops = vec![Operation::Input];
            let mut edges = Vec::new();
            for i in 1..n {
                ops.push(Operation::Add);
                let npreds = 1 + (next() % 2) as usize;
                for _ in 0..npreds {
                    let p = (next() % i as u64) as usize;
                    edges.push((n_of(p), n_of(i)));
                }
            }
            let dfg = Dfg::from_edges(format!("redrand{case}"), ops, edges, [], []).unwrap();
            let rooted = RootedDfg::new(dfg);
            let mut removed = rooted.node_set();
            // Remove roughly a quarter of the original vertices.
            for v in rooted.original_node_ids() {
                if next() % 4 == 0 {
                    removed.insert(v);
                }
            }
            let lt = lengauer_tarjan_reduced(&Forward(&rooted), &removed);
            let it = iterative_dominators_reduced(&Forward(&rooted), &removed);
            for v in rooted.node_ids() {
                assert_eq!(lt.idom(v), it.idom(v), "case {case}, node {v}");
            }
        }
    }
}
