//! The Lengauer–Tarjan dominator algorithm (simple variant, `O(e log n)`).
//!
//! §5.4 of the paper: "To compute dominators, we implemented the O(n log n) variant of
//! the Lengauer–Tarjan algorithm, which employs path compression but no tree balancing",
//! with an *iterative* `eval` ("switching to an iterative implementation cut the number
//! of memory accesses by a third"). This module follows that prescription: the DFS, the
//! path compression and the bucket processing are all iterative, and the algorithm can
//! run on a *reduced* graph (a subset of vertices removed) as required by the
//! multiple-vertex dominator construction of Dubrova et al. (§5.2).

use ise_graph::{DenseNodeSet, NodeId};

use crate::flow::FlowGraph;
use crate::tree::DominatorTree;

const UNDEF: u32 = u32::MAX;

/// Computes the dominator tree of `graph` rooted at [`FlowGraph::root`].
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::{lengauer_tarjan, Forward};
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let y = b.node(Operation::Add, &[x, a]);
/// let rooted = RootedDfg::new(b.build()?);
/// let tree = lengauer_tarjan(&Forward(&rooted));
/// assert_eq!(tree.idom(y), Some(a));
/// # Ok(())
/// # }
/// ```
pub fn lengauer_tarjan<G: FlowGraph>(graph: &G) -> DominatorTree {
    let empty = DenseNodeSet::new(graph.num_nodes());
    lengauer_tarjan_reduced(graph, &empty)
}

/// Computes the dominator tree of the *reduced* graph obtained by deleting the vertices
/// in `removed` (and every edge incident to them) from `graph`.
///
/// Vertices that become unreachable from the root are reported as unreachable by the
/// resulting [`DominatorTree`]. This is the primitive used to enumerate multiple-vertex
/// dominators: removing a seed set and asking for single-vertex dominators of the
/// remaining graph (§5.2).
///
/// # Panics
///
/// Panics if the root itself is in `removed`, or if `removed` was sized for a different
/// graph.
pub fn lengauer_tarjan_reduced<G: FlowGraph>(graph: &G, removed: &DenseNodeSet) -> DominatorTree {
    let n = graph.num_nodes();
    let root = graph.root();
    assert_eq!(
        removed.capacity(),
        n,
        "removed-vertex set sized for a different graph"
    );
    assert!(
        !removed.contains(root),
        "the root of the flow graph cannot be removed"
    );

    // Per-node state, indexed by node index.
    let mut dfnum = vec![UNDEF; n];
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    // vertex[i] = node with dfnum i.
    let mut vertex: Vec<NodeId> = Vec::with_capacity(n);

    // Iterative depth-first numbering, skipping removed vertices.
    let mut stack: Vec<(NodeId, Option<NodeId>)> = vec![(root, None)];
    while let Some((node, from)) = stack.pop() {
        if dfnum[node.index()] != UNDEF {
            continue;
        }
        dfnum[node.index()] = vertex.len() as u32;
        vertex.push(node);
        parent[node.index()] = from;
        // Push successors in reverse so that the first successor is visited first;
        // the visiting order does not affect correctness, only determinism.
        for &succ in graph.succs(node).iter().rev() {
            if dfnum[succ.index()] == UNDEF && !removed.contains(succ) {
                stack.push((succ, Some(node)));
            }
        }
    }

    let reached = vertex.len();
    // semi[v] holds a dfnum; initially each vertex is its own semidominator.
    let mut semi: Vec<u32> = (0..n)
        .map(|i| dfnum[i]) // UNDEF for unreachable vertices
        .collect();
    let mut ancestor: Vec<Option<NodeId>> = vec![None; n];
    let mut label: Vec<NodeId> = (0..n).map(NodeId::from_index).collect();
    let mut bucket: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut idom: Vec<Option<NodeId>> = vec![None; n];

    // Iterative path-compressing EVAL (§5.4: an iterative implementation avoids the
    // recursion that the compiler cannot collapse once path compression kicks in).
    let mut compress_stack: Vec<NodeId> = Vec::new();
    let mut eval = |v: NodeId,
                    ancestor: &mut Vec<Option<NodeId>>,
                    label: &mut Vec<NodeId>,
                    semi: &Vec<u32>|
     -> NodeId {
        if ancestor[v.index()].is_none() {
            return v;
        }
        // Collect the path from v towards the forest root (excluding the root itself).
        compress_stack.clear();
        let mut x = v;
        while let Some(a) = ancestor[x.index()] {
            if ancestor[a.index()].is_some() {
                compress_stack.push(x);
                x = a;
            } else {
                break;
            }
        }
        // Unwind from the top so every ancestor link is already compressed.
        while let Some(x) = compress_stack.pop() {
            let a = ancestor[x.index()].expect("path vertices have ancestors");
            if semi[label[a.index()].index()] < semi[label[x.index()].index()] {
                label[x.index()] = label[a.index()];
            }
            ancestor[x.index()] = ancestor[a.index()];
        }
        label[v.index()]
    };

    // Main loop: vertices in decreasing dfnum order, excluding the root.
    for i in (1..reached).rev() {
        let w = vertex[i];
        // Step 2: compute the semidominator of w.
        for &v in graph.preds(w) {
            if dfnum[v.index()] == UNDEF || removed.contains(v) {
                continue; // predecessor unreachable or deleted in the reduced graph
            }
            let u = eval(v, &mut ancestor, &mut label, &semi);
            if semi[u.index()] < semi[w.index()] {
                semi[w.index()] = semi[u.index()];
            }
        }
        bucket[vertex[semi[w.index()] as usize].index()].push(w);
        // LINK(parent[w], w).
        let p = parent[w.index()].expect("non-root reachable vertices have DFS parents");
        ancestor[w.index()] = Some(p);
        // Step 3: implicitly compute immediate dominators for the vertices in
        // bucket(parent[w]).
        let in_bucket = std::mem::take(&mut bucket[p.index()]);
        for v in in_bucket {
            let u = eval(v, &mut ancestor, &mut label, &semi);
            idom[v.index()] = if semi[u.index()] < semi[v.index()] {
                Some(u)
            } else {
                Some(p)
            };
        }
    }

    // Step 4: fill in immediate dominators in increasing dfnum order.
    for i in 1..reached {
        let w = vertex[i];
        if idom[w.index()] != Some(vertex[semi[w.index()] as usize]) {
            let via = idom[w.index()].expect("bucket pass assigned a provisional idom");
            idom[w.index()] = idom[via.index()];
        }
    }
    idom[root.index()] = None;

    DominatorTree::from_idoms(root, idom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{Forward, Reverse};
    use crate::iterative::iterative_dominators_reduced;
    use ise_graph::{Dfg, DfgBuilder, Operation, RootedDfg};

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    /// The running example of Figure 1 of the paper.
    ///
    /// Roots A(0), B(1), C(2); N(3) = op(A,B); X(4) = op(N,B); Y(5) = op(N,C);
    /// X and Y are the external outputs.
    fn figure1() -> RootedDfg {
        let mut b = DfgBuilder::new("figure1");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let nn = b.named_node(Operation::Add, &[a, bb], Some("N"));
        let x = b.named_node(Operation::Mul, &[nn, bb], Some("X"));
        let y = b.named_node(Operation::Sub, &[nn, c], Some("Y"));
        b.mark_output(x);
        b.mark_output(y);
        RootedDfg::new(b.build().unwrap())
    }

    #[test]
    fn dominators_on_figure1() {
        let r = figure1();
        let tree = lengauer_tarjan(&Forward(&r));
        // All roots are immediately dominated by the artificial source.
        assert_eq!(tree.idom(n(0)), Some(r.source()));
        assert_eq!(tree.idom(n(1)), Some(r.source()));
        assert_eq!(tree.idom(n(2)), Some(r.source()));
        // N, X and Y join paths from several roots, so their only single-vertex
        // dominator is the source.
        assert_eq!(tree.idom(n(3)), Some(r.source()));
        assert_eq!(tree.idom(n(4)), Some(r.source()));
        assert_eq!(tree.idom(n(5)), Some(r.source()));
        assert!(tree.dominates(r.source(), n(5)));
    }

    #[test]
    fn postdominators_on_figure1() {
        let r = figure1();
        let tree = lengauer_tarjan(&Reverse(&r));
        // X and Y flow only into the sink.
        assert_eq!(tree.idom(n(4)), Some(r.sink()));
        assert_eq!(tree.idom(n(5)), Some(r.sink()));
        // C is only used by Y, so Y postdominates C.
        assert_eq!(tree.idom(n(2)), Some(n(5)));
        // N flows into both X and Y, so its immediate postdominator is the sink.
        assert_eq!(tree.idom(n(3)), Some(r.sink()));
        assert!(tree.dominates(n(5), n(2)));
    }

    #[test]
    fn linear_chain_dominators() {
        let mut b = DfgBuilder::new("chain");
        let a = b.input("a");
        let x1 = b.node(Operation::Not, &[a]);
        let x2 = b.node(Operation::Shl, &[x1]);
        let x3 = b.node(Operation::Add, &[x2]);
        let r = RootedDfg::new(b.build().unwrap());
        let tree = lengauer_tarjan(&Forward(&r));
        assert_eq!(tree.idom(x1), Some(a));
        assert_eq!(tree.idom(x2), Some(x1));
        assert_eq!(tree.idom(x3), Some(x2));
        assert!(tree.dominates(x1, x3));
        assert!(!tree.dominates(x3, x1));
    }

    #[test]
    fn reduced_graph_skips_removed_vertices() {
        // a -> {u, v} -> m: removing u makes v dominate m.
        let mut b = DfgBuilder::new("reduced");
        let a = b.input("a");
        let u = b.node(Operation::Not, &[a]);
        let v = b.node(Operation::Shl, &[a]);
        let m = b.node(Operation::Add, &[u, v]);
        let r = RootedDfg::new(b.build().unwrap());

        let full = lengauer_tarjan(&Forward(&r));
        assert_eq!(full.idom(m), Some(a));

        let mut removed = r.node_set();
        removed.insert(u);
        let reduced = lengauer_tarjan_reduced(&Forward(&r), &removed);
        assert_eq!(reduced.idom(m), Some(v));
        assert!(!reduced.is_reachable(u));
    }

    #[test]
    fn removing_all_paths_makes_vertices_unreachable() {
        let mut b = DfgBuilder::new("cutoff");
        let a = b.input("a");
        let u = b.node(Operation::Not, &[a]);
        let m = b.node(Operation::Add, &[u]);
        let r = RootedDfg::new(b.build().unwrap());
        let mut removed = r.node_set();
        removed.insert(u);
        let tree = lengauer_tarjan_reduced(&Forward(&r), &removed);
        assert!(!tree.is_reachable(m));
        assert_eq!(tree.idom(m), None);
        assert!(!tree.dominates(a, m));
    }

    #[test]
    #[should_panic(expected = "root of the flow graph cannot be removed")]
    fn removing_the_root_panics() {
        let mut b = DfgBuilder::new("bad");
        let a = b.input("a");
        let _ = b.node(Operation::Not, &[a]);
        let r = RootedDfg::new(b.build().unwrap());
        let mut removed = r.node_set();
        removed.insert(r.source());
        let _ = lengauer_tarjan_reduced(&Forward(&r), &removed);
    }

    /// Cross-check Lengauer–Tarjan against the iterative algorithm on a batch of
    /// pseudo-random DAGs.
    #[test]
    fn matches_iterative_algorithm_on_random_dags() {
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            // xorshift64
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..60 {
            let n = 3 + (next() % 40) as usize;
            let mut ops = vec![Operation::Input];
            let mut edges = Vec::new();
            for i in 1..n {
                ops.push(if next() % 7 == 0 {
                    Operation::Load
                } else {
                    Operation::Add
                });
                // Every node gets 1..=3 predecessors among earlier nodes.
                let npreds = 1 + (next() % 3) as usize;
                for _ in 0..npreds {
                    let p = (next() % i as u64) as usize;
                    edges.push((n_of(p), n_of(i)));
                }
            }
            let dfg = Dfg::from_edges(format!("rand{case}"), ops, edges, [], []).unwrap();
            let rooted = RootedDfg::new(dfg);
            let empty = rooted.node_set();

            for direction in 0..2 {
                let (lt, it) = if direction == 0 {
                    (
                        lengauer_tarjan(&Forward(&rooted)),
                        iterative_dominators_reduced(&Forward(&rooted), &empty),
                    )
                } else {
                    (
                        lengauer_tarjan(&Reverse(&rooted)),
                        iterative_dominators_reduced(&Reverse(&rooted), &empty),
                    )
                };
                for v in rooted.node_ids() {
                    assert_eq!(
                        lt.idom(v),
                        it.idom(v),
                        "case {case}, direction {direction}, node {v}"
                    );
                }
            }
        }
    }

    fn n_of(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn reduced_cross_check_on_random_dags() {
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..40 {
            let n = 4 + (next() % 30) as usize;
            let mut ops = vec![Operation::Input];
            let mut edges = Vec::new();
            for i in 1..n {
                ops.push(Operation::Add);
                let npreds = 1 + (next() % 2) as usize;
                for _ in 0..npreds {
                    let p = (next() % i as u64) as usize;
                    edges.push((n_of(p), n_of(i)));
                }
            }
            let dfg = Dfg::from_edges(format!("redrand{case}"), ops, edges, [], []).unwrap();
            let rooted = RootedDfg::new(dfg);
            let mut removed = rooted.node_set();
            // Remove roughly a quarter of the original vertices.
            for v in rooted.original_node_ids() {
                if next() % 4 == 0 {
                    removed.insert(v);
                }
            }
            let lt = lengauer_tarjan_reduced(&Forward(&rooted), &removed);
            let it = iterative_dominators_reduced(&Forward(&rooted), &removed);
            for v in rooted.node_ids() {
                assert_eq!(lt.idom(v), it.idom(v), "case {case}, node {v}");
            }
        }
    }
}
