//! Generalized (multiple-vertex) dominators.
//!
//! A set of vertices `V` *dominates* a vertex `v` of a rooted graph (Definition 5 of the
//! paper, following Gupta) iff
//!
//! 1. every path from the root to `v` contains at least one vertex of `V`, and
//! 2. for each `w ∈ V` there is at least one path from the root to `v` that contains `w`
//!    but no other vertex of `V`.
//!
//! Theorem 1 of the paper states that the inputs-to-an-output of a convex cut form a
//! generalized dominator of that output, which is what makes the polynomial enumeration
//! possible. This module provides:
//!
//! * [`is_generalized_dominator`] — a direct check of the two conditions, used as the
//!   specification in tests and to filter candidate sets;
//! * [`dominator_completions`] — the Dubrova-style primitive: given a seed set, the
//!   vertices `u` such that `seed ∪ {u}` satisfies condition 1 for a target (computed as
//!   the single-vertex dominators of the target in the graph with the seed removed);
//! * [`enumerate_generalized_dominators`] — polynomial enumeration of every generalized
//!   dominator of a vertex up to a given cardinality, `O(n^(k-1))` invocations of
//!   Lengauer–Tarjan.

use std::collections::HashSet;

use ise_graph::{DenseNodeSet, NodeId};

use crate::flow::FlowGraph;
use crate::lt::{lengauer_tarjan_reduced, LtWorkspace};

/// Checks whether `set` is a generalized dominator of `target` (Definition 5).
///
/// The check is performed directly from the definition with one restricted graph
/// traversal per condition, costing `O(|set| · e)` time. The empty set and any set
/// containing `target` itself are never dominators.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::multi::is_generalized_dominator;
/// use ise_dominators::Forward;
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let rooted = RootedDfg::new(b.build()?);
///
/// assert!(is_generalized_dominator(&Forward(&rooted), &[a, c], n));
/// assert!(!is_generalized_dominator(&Forward(&rooted), &[a], n));
/// # Ok(())
/// # }
/// ```
pub fn is_generalized_dominator<G: FlowGraph>(graph: &G, set: &[NodeId], target: NodeId) -> bool {
    if set.is_empty() || set.contains(&target) {
        return false;
    }
    let n = graph.num_nodes();
    let root = graph.root();
    let members = DenseNodeSet::from_nodes(n, set.iter().copied());

    // Condition 1: no path root -> target avoids the set.
    if !members.contains(root) && reaches_avoiding(graph, root, target, &members) {
        return false;
    }

    // Condition 2: each member is the only set vertex on some root -> target path.
    for &w in set {
        let mut others = members.clone();
        others.remove(w);
        let to_w = w == root || reaches_avoiding(graph, root, w, &others);
        if !to_w {
            return false;
        }
        if w != target && !reaches_avoiding(graph, w, target, &others) {
            return false;
        }
    }
    true
}

/// Returns the vertices `u` such that `seed ∪ {u}` satisfies condition 1 of the
/// generalized-dominator definition for `target`: removing the seed from the graph and
/// computing the single-vertex dominators of `target` in the reduced graph (the
/// construction of Dubrova et al. used by the incremental algorithm of §5.2).
///
/// Vertices in `excluded` (typically the artificial source and sink) are not reported.
/// If the seed alone already blocks every path from the root to `target`, the returned
/// list is empty.
///
/// # Panics
///
/// Panics if `seed` or `excluded` contain the root, or are sized for a different graph.
pub fn dominator_completions<G: FlowGraph>(
    graph: &G,
    seed: &DenseNodeSet,
    target: NodeId,
    excluded: &DenseNodeSet,
) -> Vec<NodeId> {
    // Materializes a full DominatorTree per call. Hot callers should use
    // [`dominator_completions_in`], which reuses a workspace and skips the tree; this
    // allocating form is kept as the convenient one-shot API and as the faithful
    // legacy pipeline measured by the `engine-vs-rebuild` benchmark.
    let tree = lengauer_tarjan_reduced(graph, seed);
    if !tree.is_reachable(target) {
        return Vec::new();
    }
    tree.strict_dominators(target)
        .filter(|d| !excluded.contains(*d) && !seed.contains(*d))
        .collect()
}

/// Allocation-free form of [`dominator_completions`]: the Lengauer–Tarjan run reuses
/// `ws` and the completions are appended to `out` (which is cleared first), so a hot
/// caller — the incremental enumeration performs one such call per `PICK-INPUTS` step —
/// can reuse both buffers across calls. Unlike [`dominator_completions`], no
/// [`crate::DominatorTree`] is materialized: the strict dominators of `target` are read
/// straight off the workspace's immediate-dominator chain.
///
/// # Panics
///
/// Panics if `seed` contains the root or is sized for a different graph.
pub fn dominator_completions_in<G: FlowGraph>(
    ws: &mut LtWorkspace,
    graph: &G,
    seed: &DenseNodeSet,
    target: NodeId,
    excluded: &DenseNodeSet,
    out: &mut Vec<NodeId>,
) {
    out.clear();
    ws.run_reduced(graph, seed);
    push_filtered_dominator_chain(ws, target, seed, excluded, out);
}

/// Appends the strict dominators of `target` from the workspace's last run to `out`,
/// skipping members of `seed` and `excluded`. Shared by the completions primitives and
/// the generalized-dominator enumeration.
fn push_filtered_dominator_chain(
    ws: &LtWorkspace,
    target: NodeId,
    seed: &DenseNodeSet,
    excluded: &DenseNodeSet,
    out: &mut Vec<NodeId>,
) {
    if !ws.is_reachable(target) {
        return;
    }
    let mut v = target;
    while let Some(d) = ws.idom(v) {
        if !excluded.contains(d) && !seed.contains(d) {
            out.push(d);
        }
        v = d;
    }
}

/// Enumerates every generalized dominator of `target` with at most `max_size` vertices,
/// excluding sets that use any vertex in `excluded` as an element.
///
/// The enumeration follows Dubrova et al.: seed sets of up to `max_size - 1` ancestors
/// of `target` are removed from the graph, and the single-vertex dominators of `target`
/// in each reduced graph complete them. Every candidate is validated against
/// [`is_generalized_dominator`], so the result contains exactly the sets that satisfy
/// both conditions of Definition 5, each reported once in sorted vertex order.
///
/// The worst-case cost is `O(n^(max_size - 1))` dominator-tree computations, which is
/// the polynomial bound the paper relies on.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_dominators::multi::enumerate_generalized_dominators;
/// use ise_dominators::Forward;
/// use ise_graph::{DenseNodeSet, DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let rooted = RootedDfg::new(b.build()?);
/// let mut excluded = rooted.node_set();
/// excluded.insert(rooted.source());
/// excluded.insert(rooted.sink());
///
/// let doms = enumerate_generalized_dominators(&Forward(&rooted), n, 2, &excluded);
/// assert_eq!(doms, vec![vec![a, c]]);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_generalized_dominators<G: FlowGraph>(
    graph: &G,
    target: NodeId,
    max_size: usize,
    excluded: &DenseNodeSet,
) -> Vec<Vec<NodeId>> {
    if max_size == 0 {
        return Vec::new();
    }
    let n = graph.num_nodes();
    let root = graph.root();

    // Candidate seed elements: ancestors of the target (only they can lie on a
    // root -> target path), excluding the target, the root and the excluded set.
    let ancestors = ancestors_of(graph, target);
    let candidates: Vec<NodeId> = ancestors
        .iter()
        .filter(|&a| a != target && a != root && !excluded.contains(a))
        .collect();

    let mut search = GenDomSearch {
        graph,
        target,
        max_size,
        excluded,
        candidates: &candidates,
        seed: Vec::new(),
        seed_set: DenseNodeSet::new(n),
        ws: LtWorkspace::new(),
        chain_pool: Vec::new(),
        seen: HashSet::new(),
        result: Vec::new(),
    };
    search.recurse(0);
    let mut result = search.result;
    result.sort();
    result
}

/// Recursive exploration of seed subsets in increasing candidate order, shared
/// between the recursion levels of [`enumerate_generalized_dominators`].
struct GenDomSearch<'a, G: FlowGraph> {
    graph: &'a G,
    target: NodeId,
    max_size: usize,
    excluded: &'a DenseNodeSet,
    candidates: &'a [NodeId],
    seed: Vec<NodeId>,
    seed_set: DenseNodeSet,
    /// Reused Lengauer–Tarjan scratch, so the per-seed dominator runs stop allocating.
    ws: LtWorkspace,
    /// Reusable completion buffers, one per active recursion depth (the workspace is
    /// overwritten by recursive calls, so each level collects its chain first).
    chain_pool: Vec<Vec<NodeId>>,
    seen: HashSet<Vec<NodeId>>,
    result: Vec<Vec<NodeId>>,
}

impl<G: FlowGraph> GenDomSearch<'_, G> {
    /// Records `candidate` (sorted) if it is a not-yet-seen generalized dominator.
    fn record_if_dominator(&mut self, mut candidate: Vec<NodeId>) {
        candidate.sort_unstable();
        if !self.seen.contains(&candidate)
            && is_generalized_dominator(self.graph, &candidate, self.target)
        {
            self.seen.insert(candidate.clone());
            self.result.push(candidate);
        }
    }

    fn recurse(&mut self, start: usize) {
        self.ws.run_reduced(self.graph, &self.seed_set);
        if self.ws.is_reachable(self.target) {
            // Collect the filtered dominator chain of the target before recursing —
            // the recursive calls overwrite the workspace. The buffer comes from the
            // per-depth pool, so steady-state recursion performs no allocations.
            let mut completions = self.chain_pool.pop().unwrap_or_default();
            push_filtered_dominator_chain(
                &self.ws,
                self.target,
                &self.seed_set,
                self.excluded,
                &mut completions,
            );
            for &d in &completions {
                let mut candidate = self.seed.clone();
                candidate.push(d);
                self.record_if_dominator(candidate);
            }
            completions.clear();
            self.chain_pool.push(completions);
        } else {
            // The seed alone blocks every path: it may itself be a dominator, and no
            // superset can satisfy condition 2 for the added vertex, so stop here.
            if !self.seed.is_empty() {
                let candidate = self.seed.clone();
                self.record_if_dominator(candidate);
            }
            return;
        }
        if self.seed.len() + 1 < self.max_size {
            for idx in start..self.candidates.len() {
                let a = self.candidates[idx];
                self.seed.push(a);
                self.seed_set.insert(a);
                self.recurse(idx + 1);
                self.seed.pop();
                self.seed_set.remove(a);
            }
        }
    }
}

/// Vertices from which `target` is reachable (including `target` itself).
fn ancestors_of<G: FlowGraph>(graph: &G, target: NodeId) -> DenseNodeSet {
    let mut set = DenseNodeSet::new(graph.num_nodes());
    let mut stack = vec![target];
    set.insert(target);
    while let Some(v) = stack.pop() {
        for &p in graph.preds(v) {
            if set.insert(p) {
                stack.push(p);
            }
        }
    }
    set
}

/// Whether `to` is reachable from `from` without entering any vertex of `blocked`
/// (endpoints themselves are allowed to be in `blocked` only as `from`).
fn reaches_avoiding<G: FlowGraph>(
    graph: &G,
    from: NodeId,
    to: NodeId,
    blocked: &DenseNodeSet,
) -> bool {
    if from == to {
        return true;
    }
    let mut visited = DenseNodeSet::new(graph.num_nodes());
    visited.insert(from);
    let mut stack = vec![from];
    while let Some(v) = stack.pop() {
        for &s in graph.succs(v) {
            if s == to {
                return true;
            }
            if !blocked.contains(s) && visited.insert(s) {
                stack.push(s);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::Forward;
    use ise_graph::{DfgBuilder, Operation, RootedDfg};

    /// The Figure 1 graph of the paper: roots A, B, C; N = f(A,B); X = f(N,B);
    /// Y = f(N,C).
    fn figure1() -> (RootedDfg, [NodeId; 6]) {
        let mut b = DfgBuilder::new("figure1");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let nn = b.named_node(Operation::Add, &[a, bb], Some("N"));
        let x = b.named_node(Operation::Mul, &[nn, bb], Some("X"));
        let y = b.named_node(Operation::Sub, &[nn, c], Some("Y"));
        b.mark_output(x);
        b.mark_output(y);
        let rooted = RootedDfg::new(b.build().unwrap());
        (rooted, [a, bb, c, nn, x, y])
    }

    fn excluded_for(rooted: &RootedDfg) -> DenseNodeSet {
        let mut e = rooted.node_set();
        e.insert(rooted.source());
        e.insert(rooted.sink());
        e
    }

    #[test]
    fn definition_check_on_figure1() {
        let (r, [a, b, c, n, x, y]) = figure1();
        let g = Forward(&r);
        // In this reconstruction of Figure 1, every root-to-Y path goes through either
        // N or C, so {N, C} dominates Y; B only reaches Y through N, so adding B
        // violates condition 2.
        assert!(is_generalized_dominator(&g, &[n, c], y));
        assert!(!is_generalized_dominator(&g, &[n, b, c], y));
        assert!(is_generalized_dominator(&g, &[a, b, c], y));
        assert!(!is_generalized_dominator(&g, &[n], y));
        assert!(!is_generalized_dominator(&g, &[c], y));
        // X is dominated by {A, B} (Figure 1(d)) and by {N, B}.
        assert!(is_generalized_dominator(&g, &[a, b], x));
        assert!(is_generalized_dominator(&g, &[n, b], x));
        assert!(!is_generalized_dominator(&g, &[a], x));
    }

    #[test]
    fn empty_set_and_target_itself_are_not_dominators() {
        let (r, [_, _, _, n, x, _]) = figure1();
        let g = Forward(&r);
        assert!(!is_generalized_dominator(&g, &[], x));
        assert!(!is_generalized_dominator(&g, &[x], x));
        assert!(!is_generalized_dominator(&g, &[n, x], x));
    }

    #[test]
    fn source_alone_dominates_everything() {
        let (r, [_, _, _, _, x, _]) = figure1();
        let g = Forward(&r);
        assert!(is_generalized_dominator(&g, &[r.source()], x));
    }

    #[test]
    fn redundant_vertices_violate_condition_two() {
        let (r, [a, b, _, n, x, _]) = figure1();
        let g = Forward(&r);
        // {A, B} dominates X; N is redundant on every path (all X-paths through N also
        // pass A or B).
        assert!(!is_generalized_dominator(&g, &[a, b, n], x));
    }

    #[test]
    fn completions_extend_a_seed_to_a_dominating_set() {
        let (r, [a, b, _c, n, x, _y]) = figure1();
        let g = Forward(&r);
        let excluded = excluded_for(&r);

        // Empty seed: single-vertex dominators of X are only the artificial source,
        // which is excluded.
        let empty = r.node_set();
        assert!(dominator_completions(&g, &empty, x, &excluded).is_empty());

        // Seed {B}: in the reduced graph X is reached only through A -> N, so both A
        // and N complete the seed.
        let mut seed = r.node_set();
        seed.insert(b);
        let mut comp = dominator_completions(&g, &seed, x, &excluded);
        comp.sort_unstable();
        assert_eq!(comp, vec![a, n]);
    }

    #[test]
    fn completions_in_reuses_workspace_and_buffer() {
        let (r, [a, b, _c, n, x, y]) = figure1();
        let g = Forward(&r);
        let excluded = excluded_for(&r);
        let mut ws = LtWorkspace::new();
        let mut out = vec![NodeId::new(99)]; // stale content must be cleared
        for target in [x, y, n] {
            for seed_member in [Some(b), Some(a), None] {
                let mut seed = r.node_set();
                if let Some(s) = seed_member {
                    if s == target {
                        continue;
                    }
                    seed.insert(s);
                }
                dominator_completions_in(&mut ws, &g, &seed, target, &excluded, &mut out);
                let mut got = out.clone();
                got.sort_unstable();
                let mut fresh = dominator_completions(&g, &seed, target, &excluded);
                fresh.sort_unstable();
                assert_eq!(got, fresh, "target {target}, seed {seed_member:?}");
            }
        }
    }

    #[test]
    fn completions_empty_when_seed_blocks_all_paths() {
        let (r, [a, b, _, _, x, _]) = figure1();
        let g = Forward(&r);
        let excluded = excluded_for(&r);
        let mut seed = r.node_set();
        seed.insert(a);
        seed.insert(b);
        assert!(dominator_completions(&g, &seed, x, &excluded).is_empty());
    }

    #[test]
    fn enumeration_matches_brute_force_on_figure1() {
        let (r, nodes) = figure1();
        let g = Forward(&r);
        let excluded = excluded_for(&r);
        for &target in &nodes[3..] {
            for k in 1..=3usize {
                let enumerated = enumerate_generalized_dominators(&g, target, k, &excluded);
                let brute = brute_force(&g, target, k, &excluded);
                assert_eq!(enumerated, brute, "target {target}, k {k}");
            }
        }
    }

    #[test]
    fn enumeration_on_figure1_output_x() {
        let (r, [a, b, _c, n, x, _y]) = figure1();
        let g = Forward(&r);
        let excluded = excluded_for(&r);
        let doms = enumerate_generalized_dominators(&g, x, 2, &excluded);
        assert_eq!(doms, vec![vec![a, b], vec![b, n]]);
    }

    #[test]
    fn enumeration_respects_max_size() {
        let (r, [_, _, _, _, _, y]) = figure1();
        let g = Forward(&r);
        let excluded = excluded_for(&r);
        let singles = enumerate_generalized_dominators(&g, y, 1, &excluded);
        assert!(
            singles.is_empty(),
            "Y has no single-vertex dominator besides the source"
        );
        let pairs = enumerate_generalized_dominators(&g, y, 2, &excluded);
        assert!(pairs.iter().all(|d| d.len() <= 2));
        assert!(pairs.contains(&vec![NodeId::new(2), NodeId::new(3)])); // {C, N}
    }

    #[test]
    fn enumeration_matches_brute_force_on_random_dags() {
        let mut state = 0xdead_beef_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..25 {
            let n = 5 + (next() % 8) as usize;
            let mut b = DfgBuilder::new(format!("rand{case}"));
            let mut ids = vec![b.input("i0"), b.input("i1")];
            for i in 2..n {
                let mut preds = Vec::new();
                let npreds = 1 + (next() % 2) as usize;
                for _ in 0..npreds {
                    preds.push(ids[(next() % i as u64) as usize]);
                }
                preds.dedup();
                ids.push(b.node(Operation::Add, &preds));
            }
            let rooted = RootedDfg::new(b.build().unwrap());
            let g = Forward(&rooted);
            let excluded = excluded_for(&rooted);
            let target = ids[n - 1];
            for k in 1..=3usize {
                let enumerated = enumerate_generalized_dominators(&g, target, k, &excluded);
                let brute = brute_force(&g, target, k, &excluded);
                assert_eq!(enumerated, brute, "case {case}, target {target}, k {k}");
            }
        }
    }

    /// Brute-force enumeration straight from Definition 5, for cross-checking.
    fn brute_force<G: FlowGraph>(
        graph: &G,
        target: NodeId,
        max_size: usize,
        excluded: &DenseNodeSet,
    ) -> Vec<Vec<NodeId>> {
        let candidates: Vec<NodeId> = (0..graph.num_nodes())
            .map(NodeId::from_index)
            .filter(|&v| v != target && !excluded.contains(v))
            .collect();
        let mut result = Vec::new();
        let mut chosen = Vec::new();
        fn go<G: FlowGraph>(
            graph: &G,
            target: NodeId,
            max_size: usize,
            candidates: &[NodeId],
            start: usize,
            chosen: &mut Vec<NodeId>,
            result: &mut Vec<Vec<NodeId>>,
        ) {
            if !chosen.is_empty() && is_generalized_dominator(graph, chosen, target) {
                result.push(chosen.clone());
            }
            if chosen.len() < max_size {
                for i in start..candidates.len() {
                    chosen.push(candidates[i]);
                    go(graph, target, max_size, candidates, i + 1, chosen, result);
                    chosen.pop();
                }
            }
        }
        go(
            graph,
            target,
            max_size,
            &candidates,
            0,
            &mut chosen,
            &mut result,
        );
        result.sort();
        result
    }
}
