//! A minimal, dependency-free JSON emitter and parser for machine-readable artifacts.
//!
//! The experiment binaries publish their perf trajectory as committed JSON files (for
//! example `BENCH_scaling.json`, written by the `scaling` binary) so that future
//! revisions can diff enumeration performance across PRs without re-parsing CSV
//! stdout. The emitter covers exactly the JSON subset those artifacts need: objects
//! with ordered keys, arrays, strings, booleans and finite numbers.
//!
//! [`Json::parse`] is the inverse: a strict recursive-descent parser over the same
//! subset (numbers land in [`Json::UInt`] when they are non-negative integers and in
//! [`Json::Num`] otherwise), used by the `ise serve` line protocol and by the
//! `serve_latency` harness to inspect daemon responses. `parse ∘ render = id` for
//! every value the emitter can produce (property-tested below).
//!
//! # Example
//!
//! ```
//! use ise_bench::json::Json;
//!
//! let doc = Json::object([
//!     ("schema", Json::str("demo/v1")),
//!     ("count", Json::uint(3)),
//!     ("ratio", Json::num(0.5)),
//!     ("rows", Json::array([Json::bool(true), Json::str("a\"b")])),
//! ]);
//! assert_eq!(
//!     doc.render(),
//!     r#"{"schema":"demo/v1","count":3,"ratio":0.5,"rows":[true,"a\"b"]}"#
//! );
//! ```

/// A JSON value tree; build it bottom-up and [`Json::render`] it to a string.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a fraction.
    UInt(u64),
    /// A finite floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn uint(v: usize) -> Json {
        Json::UInt(v as u64)
    }

    /// A floating-point value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// A boolean value.
    pub fn bool(v: bool) -> Json {
        Json::Bool(v)
    }

    /// An array from any iterator of values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Parses `text` as one JSON value (surrounding whitespace allowed).
    ///
    /// Strict over the emitter's subset: objects, arrays, strings with the standard
    /// escapes (`\uXXXX` included, surrogate pairs supported), numbers, booleans and
    /// `null`. Trailing garbage after the value is an error — a protocol line must be
    /// exactly one value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset and reason on malformed input.
    ///
    /// # Example
    ///
    /// ```
    /// use ise_bench::json::Json;
    ///
    /// let doc = Json::parse(r#"{"op":"enumerate","budget":0,"warm":true}"#).unwrap();
    /// assert_eq!(doc.get("op").and_then(Json::as_str), Some("enumerate"));
    /// assert_eq!(doc.get("budget").and_then(Json::as_u64), Some(0));
    /// assert_eq!(doc.get("warm").and_then(Json::as_bool), Some(true));
    /// assert!(doc.get("missing").is_none());
    /// assert!(Json::parse("{} trailing").is_err());
    /// ```
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::new(pos, "trailing characters after the value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` on missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The unsigned-integer content, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric content as `f64` (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(v) => Some(*v as f64),
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Error returned by [`Json::parse`]: what went wrong and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl JsonError {
    fn new(offset: usize, reason: impl Into<String>) -> Self {
        JsonError {
            offset,
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b' ' | b'\t' | b'\n' | b'\r') = bytes.get(*pos) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), JsonError> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::new(*pos, format!("expected `{}`", byte as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(JsonError::new(*pos, "expected a JSON value")),
        None => Err(JsonError::new(*pos, "unexpected end of input")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(JsonError::new(*pos, format!("expected `{literal}`")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        skip_ws(bytes, pos);
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(pairs));
            }
            _ => return Err(JsonError::new(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(JsonError::new(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::new(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        *pos += 1;
                        let unit = parse_hex4(bytes, pos)?;
                        // Decode surrogate pairs; lone surrogates are an error.
                        let c = if (0xd800..0xdc00).contains(&unit) {
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let low = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(JsonError::new(*pos, "invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(unit)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(JsonError::new(*pos, "invalid \\u escape")),
                        }
                        continue; // parse_hex4 already advanced past the digits
                    }
                    _ => return Err(JsonError::new(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(&c) if c < 0x20 => {
                return Err(JsonError::new(*pos, "unescaped control character"));
            }
            Some(_) => {
                // Copy one full UTF-8 scalar (the input is a &str, so boundaries are
                // guaranteed; find the next boundary by skipping continuation bytes).
                let start = *pos;
                *pos += 1;
                while bytes.get(*pos).is_some_and(|b| b & 0xc0 == 0x80) {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[start..*pos])
                        .expect("input came from a &str, boundaries are valid"),
                );
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let digits = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| JsonError::new(*pos, "truncated \\u escape"))?;
    let text =
        std::str::from_utf8(digits).map_err(|_| JsonError::new(*pos, "non-ASCII in \\u escape"))?;
    let unit =
        u32::from_str_radix(text, 16).map_err(|_| JsonError::new(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(unit)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ASCII slice");
    // Integers that fit u64 keep full precision; everything else goes through f64.
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| JsonError::new(start, format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::bool(false).render(), "false");
        assert_eq!(Json::uint(42).render(), "42");
        assert_eq!(Json::num(1.25).render(), "1.25");
        assert_eq!(Json::num(f64::NAN).render(), "null");
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nesting_preserves_order() {
        let doc = Json::object([
            ("b", Json::uint(1)),
            ("a", Json::array([Json::Null, Json::uint(2)])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[null,2]}"#);
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let doc = Json::object([
            ("schema", Json::str("demo/v1")),
            ("count", Json::uint(3)),
            ("big", Json::UInt(u64::MAX)),
            ("ratio", Json::num(0.5)),
            ("flag", Json::bool(true)),
            ("nothing", Json::Null),
            (
                "rows",
                Json::array([
                    Json::str("a\"b\\c\nd\tπ"),
                    Json::Array(Vec::new()),
                    Json::Object(Vec::new()),
                ]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.render(), text, "parse ∘ render = id");
    }

    #[test]
    fn parse_accessors_navigate_objects() {
        let doc = Json::parse(
            "  {\"op\" : \"group\", \"flags\": {\"nin\": 4, \"x\": -1.5}, \
             \"blocks\": [\"a\", \"b\"]}  ",
        )
        .unwrap();
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("group"));
        let flags = doc.get("flags").unwrap();
        assert_eq!(flags.get("nin").and_then(Json::as_u64), Some(4));
        assert_eq!(flags.get("x").and_then(Json::as_f64), Some(-1.5));
        assert_eq!(flags.as_object().map(<[_]>::len), Some(2));
        let blocks = doc.get("blocks").and_then(Json::as_array).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(doc.get("op").and_then(Json::as_u64), None, "type mismatch");
    }

    #[test]
    fn parse_decodes_escapes_and_surrogates() {
        let parsed = Json::parse(r#""aA\né😀\/""#).unwrap();
        assert_eq!(parsed.as_str(), Some("aA\né😀/"));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "\"bad\\q\"",
            "\"lone\\ud800\"",
            "01a",
            "{} {}",
            "nan",
            "\u{1}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Byte offsets point at the problem.
        let err = Json::parse("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"), "{err}");
    }

    #[test]
    fn parse_numbers_keep_integer_precision() {
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert_eq!(Json::parse("-2").unwrap(), Json::Num(-2.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }
}
