//! A minimal, dependency-free JSON emitter for machine-readable benchmark artifacts.
//!
//! The experiment binaries publish their perf trajectory as committed JSON files (for
//! example `BENCH_scaling.json`, written by the `scaling` binary) so that future
//! revisions can diff enumeration performance across PRs without re-parsing CSV
//! stdout. The emitter covers exactly the JSON subset those artifacts need: objects
//! with ordered keys, arrays, strings, booleans and finite numbers.
//!
//! # Example
//!
//! ```
//! use ise_bench::json::Json;
//!
//! let doc = Json::object([
//!     ("schema", Json::str("demo/v1")),
//!     ("count", Json::uint(3)),
//!     ("ratio", Json::num(0.5)),
//!     ("rows", Json::array([Json::bool(true), Json::str("a\"b")])),
//! ]);
//! assert_eq!(
//!     doc.render(),
//!     r#"{"schema":"demo/v1","count":3,"ratio":0.5,"rows":[true,"a\"b"]}"#
//! );
//! ```

/// A JSON value tree; build it bottom-up and [`Json::render`] it to a string.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, rendered without a fraction.
    UInt(u64),
    /// A finite floating-point number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An ordered array.
    Array(Vec<Json>),
    /// An object with keys in insertion order.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An unsigned integer value.
    pub fn uint(v: usize) -> Json {
        Json::UInt(v as u64)
    }

    /// A floating-point value.
    pub fn num(v: f64) -> Json {
        Json::Num(v)
    }

    /// A boolean value.
    pub fn bool(v: bool) -> Json {
        Json::Bool(v)
    }

    /// An array from any iterator of values.
    pub fn array(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(items.into_iter().collect())
    }

    /// An object from `(key, value)` pairs, keeping their order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => out.push_str(&v.to_string()),
            Json::Num(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::bool(false).render(), "false");
        assert_eq!(Json::uint(42).render(), "42");
        assert_eq!(Json::num(1.25).render(), "1.25");
        assert_eq!(Json::num(f64::NAN).render(), "null");
        assert_eq!(Json::num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(
            Json::str("a\"b\\c\nd\u{1}").render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn nesting_preserves_order() {
        let doc = Json::object([
            ("b", Json::uint(1)),
            ("a", Json::array([Json::Null, Json::uint(2)])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":[null,2]}"#);
    }
}
