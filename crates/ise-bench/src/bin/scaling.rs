//! Validates the polynomial-complexity claim of §5: the run time of the incremental
//! enumeration grows polynomially in the block size, with the exponent controlled by
//! the input/output constraints (`O(n^(Nin+Nout+1))` in the worst case, much lower on
//! realistic blocks thanks to the §5.3 prunings).
//!
//! Output: one row per (size, Nin, Nout) combination with the measured run time and the
//! empirical growth exponent with respect to the previous size of the same constraint
//! pair.
//!
//! Options (key=value): `sizes` is fixed in code (50..=max_size doubling), `max_size`
//! (default 200), `seed`, `memory_ratio_pct` (default 15).

use std::collections::HashMap;

use ise_bench::{timed, Options};
use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};

fn main() {
    let opts = Options::from_env();
    let max_size = opts.usize("max_size", 200);
    let seed = opts.u64("seed", 42);
    let memory_ratio = opts.usize("memory_ratio_pct", 15) as f64 / 100.0;

    let mut sizes = Vec::new();
    let mut n = 50usize;
    while n <= max_size {
        sizes.push(n);
        n *= 2;
    }
    let constraint_pairs = [(2usize, 1usize), (3, 1), (4, 1), (4, 2)];

    println!("nodes,nin,nout,seconds,cuts,search_nodes,dominator_runs,growth_exponent");
    let mut previous: HashMap<(usize, usize), (usize, f64)> = HashMap::new();
    for &size in &sizes {
        let cfg = RandomDagConfig::new(size).with_memory_ratio(memory_ratio);
        let dfg = random_dag(&cfg, seed);
        let ctx = EnumContext::new(dfg);
        for &(nin, nout) in &constraint_pairs {
            let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
            let (result, elapsed) =
                timed(|| incremental_cuts(&ctx, &constraints, &PruningConfig::all()));
            let seconds = elapsed.as_secs_f64();
            let exponent = previous.get(&(nin, nout)).map(|&(prev_size, prev_secs)| {
                if prev_secs > 0.0 && size > prev_size {
                    (seconds / prev_secs).ln() / (size as f64 / prev_size as f64).ln()
                } else {
                    f64::NAN
                }
            });
            println!(
                "{},{},{},{:.6},{},{},{},{}",
                ctx.rooted().original_len(),
                nin,
                nout,
                seconds,
                result.stats.valid_cuts,
                result.stats.search_nodes,
                result.stats.dominator_runs,
                exponent.map_or_else(|| "-".to_string(), |e| format!("{e:.2}")),
            );
            previous.insert((nin, nout), (size, seconds));
        }
    }
}
