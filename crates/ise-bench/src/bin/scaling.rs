//! Validates the polynomial-complexity claim of §5 (experiment E3 in DESIGN.md) and
//! measures the engine-vs-rebuild gap of the incremental cut-body maintenance.
//!
//! For every (size, Nin, Nout) combination the incremental enumeration runs twice over
//! the same context: once with the engine's incrementally maintained body
//! (`BodyStrategy::Incremental`) and once with the legacy rebuild-per-`CHECK-CUT`
//! pipeline (`BodyStrategy::Rebuild`). Both runs must find the same cuts; the wall
//! times quantify what the §5.2 incremental discipline buys. The stdout report stays
//! CSV (one row per combination, with the empirical growth exponent of the engine time
//! with respect to the previous size of the same constraint pair); the machine-readable
//! perf trajectory is additionally written as JSON for future PRs to diff.
//!
//! Options (key=value): `max_size` (default 200; sizes are 50..=max_size doubling),
//! `seed`, `memory_ratio_pct` (default 15), `out` (default `BENCH_scaling.json`;
//! `out=-` disables the JSON artifact).

use std::collections::HashMap;

use ise_bench::json::Json;
use ise_bench::{timed, Options};
use ise_enum::{incremental_cuts_with, BodyStrategy, Constraints, EnumContext, PruningConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};

fn main() {
    let opts = Options::from_env();
    let max_size = opts.usize("max_size", 200);
    let seed = opts.u64("seed", 42);
    let memory_ratio = opts.usize("memory_ratio_pct", 15) as f64 / 100.0;
    let out_path = opts.string("out", "BENCH_scaling.json");

    let mut sizes = Vec::new();
    let mut n = 50usize;
    while n <= max_size {
        sizes.push(n);
        n *= 2;
    }
    let constraint_pairs = [(2usize, 1usize), (3, 1), (4, 1), (4, 2)];

    println!(
        "nodes,nin,nout,engine_seconds,rebuild_seconds,speedup,cuts,search_nodes,\
         dominator_runs,candidates_checked,growth_exponent"
    );
    let mut rows = Vec::new();
    let mut previous: HashMap<(usize, usize), (usize, f64)> = HashMap::new();
    let mut total_engine = 0.0f64;
    let mut total_rebuild = 0.0f64;
    let mut peak_candidates = 0usize;
    for &size in &sizes {
        let cfg = RandomDagConfig::new(size).with_memory_ratio(memory_ratio);
        let dfg = random_dag(&cfg, seed);
        let ctx = EnumContext::new(dfg);
        for &(nin, nout) in &constraint_pairs {
            let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
            let (result, engine_elapsed) = timed(|| {
                incremental_cuts_with(
                    &ctx,
                    &constraints,
                    &PruningConfig::all(),
                    None,
                    BodyStrategy::Incremental,
                )
            });
            let (rebuilt, rebuild_elapsed) = timed(|| {
                incremental_cuts_with(
                    &ctx,
                    &constraints,
                    &PruningConfig::all(),
                    None,
                    BodyStrategy::Rebuild,
                )
            });
            assert_eq!(
                result.stats.valid_cuts, rebuilt.stats.valid_cuts,
                "strategies disagree on size {size}, Nin={nin}, Nout={nout}"
            );
            let engine_seconds = engine_elapsed.as_secs_f64();
            let rebuild_seconds = rebuild_elapsed.as_secs_f64();
            let speedup = if engine_seconds > 0.0 {
                rebuild_seconds / engine_seconds
            } else {
                f64::NAN
            };
            total_engine += engine_seconds;
            total_rebuild += rebuild_seconds;
            peak_candidates = peak_candidates.max(result.stats.candidates_checked);
            let exponent = previous.get(&(nin, nout)).map(|&(prev_size, prev_secs)| {
                if prev_secs > 0.0 && size > prev_size {
                    (engine_seconds / prev_secs).ln() / (size as f64 / prev_size as f64).ln()
                } else {
                    f64::NAN
                }
            });
            let nodes = ctx.rooted().original_len();
            println!(
                "{},{},{},{:.6},{:.6},{:.2},{},{},{},{},{}",
                nodes,
                nin,
                nout,
                engine_seconds,
                rebuild_seconds,
                speedup,
                result.stats.valid_cuts,
                result.stats.search_nodes,
                result.stats.dominator_runs,
                result.stats.candidates_checked,
                exponent.map_or_else(|| "-".to_string(), |e| format!("{e:.2}")),
            );
            previous.insert((nin, nout), (size, engine_seconds));
            rows.push(Json::object([
                ("nodes", Json::uint(nodes)),
                ("nin", Json::uint(nin)),
                ("nout", Json::uint(nout)),
                ("engine_seconds", Json::num(engine_seconds)),
                ("rebuild_seconds", Json::num(rebuild_seconds)),
                ("speedup", Json::num(speedup)),
                ("cuts", Json::uint(result.stats.valid_cuts)),
                ("search_nodes", Json::uint(result.stats.search_nodes)),
                ("dominator_runs", Json::uint(result.stats.dominator_runs)),
                (
                    "candidates_checked",
                    Json::uint(result.stats.candidates_checked),
                ),
            ]));
        }
    }

    if out_path != "-" {
        let doc = Json::object([
            ("schema", Json::str("ise-bench/scaling/v1")),
            ("meta", ise_bench::bench_meta("disabled")),
            ("seed", Json::UInt(seed)),
            ("max_size", Json::uint(max_size)),
            (
                "memory_ratio_pct",
                Json::uint((memory_ratio * 100.0).round() as usize),
            ),
            ("rows", Json::Array(rows)),
            (
                "summary",
                Json::object([
                    ("total_engine_seconds", Json::num(total_engine)),
                    ("total_rebuild_seconds", Json::num(total_rebuild)),
                    (
                        "speedup",
                        Json::num(if total_engine > 0.0 {
                            total_rebuild / total_engine
                        } else {
                            f64::NAN
                        }),
                    ),
                    ("peak_candidates", Json::uint(peak_candidates)),
                ]),
            ),
        ]);
        std::fs::write(&out_path, doc.render() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        eprintln!(
            "wrote {out_path} (engine {total_engine:.3}s vs rebuild {total_rebuild:.3}s, \
             speedup {:.2}x)",
            total_rebuild / total_engine.max(f64::MIN_POSITIVE)
        );
    }
}
