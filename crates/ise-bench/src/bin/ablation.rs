//! Ablation of the §5.3 pruning techniques: the incremental enumeration is run on a
//! set of MiBench-like blocks with all prunings enabled, with each technique disabled
//! in turn, and with no pruning at all. Every configuration finds exactly the same
//! cuts; what changes is how much of the search space is explored.
//!
//! Output: one row per (block, configuration) with run time, explored search nodes and
//! dominator-tree computations.
//!
//! Options (key=value): `blocks` (default 3), `size` (default 80), `seed`, `nin`,
//! `nout`.

use ise_bench::{timed, Options};
use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};

fn main() {
    let opts = Options::from_env();
    let blocks = opts.usize("blocks", 3);
    let size = opts.usize("size", 80);
    let seed = opts.u64("seed", 9);
    let nin = opts.usize("nin", ise_bench::PAPER_NIN);
    let nout = opts.usize("nout", ise_bench::PAPER_NOUT);
    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");

    let mut configurations: Vec<(String, PruningConfig)> =
        vec![("all".to_string(), PruningConfig::all())];
    for &name in PruningConfig::technique_names() {
        configurations.push((format!("no_{name}"), PruningConfig::all_except(name)));
    }
    configurations.push(("none".to_string(), PruningConfig::none()));

    println!("block,nodes,configuration,seconds,cuts,search_nodes,dominator_runs,pruned_total");
    for block in 0..blocks {
        let dfg = generate_block(
            &MiBenchLikeConfig::new(size),
            seed.wrapping_add(block as u64),
        )
        .expect("generator output is always valid");
        let ctx = EnumContext::new(dfg);
        let mut reference_cuts: Option<usize> = None;
        for (name, pruning) in &configurations {
            let (result, elapsed) = timed(|| incremental_cuts(&ctx, &constraints, pruning));
            println!(
                "{},{},{},{:.6},{},{},{},{}",
                block,
                ctx.rooted().original_len(),
                name,
                elapsed.as_secs_f64(),
                result.stats.valid_cuts,
                result.stats.search_nodes,
                result.stats.dominator_runs,
                result.stats.pruned_total(),
            );
            match reference_cuts {
                None => reference_cuts = Some(result.stats.valid_cuts),
                Some(reference) => {
                    if reference != result.stats.valid_cuts {
                        eprintln!(
                            "# WARNING: configuration {name} on block {block} found {} cuts, expected {reference}",
                            result.stats.valid_cuts
                        );
                    }
                }
            }
        }
    }
}
