//! Candidate counts and speedup-model sanity check (§1/§7 of the paper): enumerate the
//! cuts of each block, feed them to the greedy ISE selector and report the estimated
//! basic-block speedup. The paper reports application speedups of up to 6x from the
//! custom instructions its toolchain selects out of the enumerated candidates; this
//! harness checks that the reproduction produces candidate sets rich enough for the
//! selector to find multi-operation instructions with meaningful savings.
//!
//! Output: one row per block with candidate count, selected instruction count, saved
//! cycles and estimated block speedup.
//!
//! Options (key=value): `blocks` (default 25), `max_size` (default 120), `seed`,
//! `nin`, `nout`, `instructions` (default 4).

use ise_bench::{timed, Options};
use ise_enum::{incremental_cuts, select_ises, Constraints, EnumContext, PruningConfig};
use ise_graph::LatencyModel;
use ise_workloads::suite;

fn main() {
    let opts = Options::from_env();
    let blocks = opts.usize("blocks", 25);
    let max_size = opts.usize("max_size", 120);
    let seed = opts.u64("seed", 17);
    let nin = opts.usize("nin", ise_bench::PAPER_NIN);
    let nout = opts.usize("nout", ise_bench::PAPER_NOUT);
    let instructions = opts.usize("instructions", 4);
    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
    let model = LatencyModel::default();

    println!("block,nodes,candidates,enumeration_seconds,selected,saved_cycles,block_speedup");
    let mut best_speedup = 1.0f64;
    let mut total_selected = 0usize;
    for block in suite(blocks, seed) {
        if block.dfg.len() > max_size {
            continue;
        }
        let ctx = EnumContext::new(block.dfg.clone());
        let (result, elapsed) =
            timed(|| incremental_cuts(&ctx, &constraints, &PruningConfig::all()));
        let selection = select_ises(&ctx, &result.cuts, &model, nin, nout, instructions);
        let speedup = selection.block_speedup();
        best_speedup = best_speedup.max(speedup);
        total_selected += selection.chosen.len();
        println!(
            "{},{},{},{:.6},{},{},{:.3}",
            block.id,
            block.dfg.len(),
            result.cuts.len(),
            elapsed.as_secs_f64(),
            selection.chosen.len(),
            selection.total_saved_cycles,
            speedup,
        );
    }
    eprintln!("# best estimated block speedup: {best_speedup:.2}x, {total_selected} instructions selected in total");
}
