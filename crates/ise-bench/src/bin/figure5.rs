//! Regenerates Figure 5 of the paper: run-time comparison of the polynomial
//! enumeration against the pruned exhaustive search of Pozzi/Atasu et al., over the
//! MiBench-like suite plus the tree-shaped worst-case DFGs, with `Nin = 4`, `Nout = 2`.
//!
//! Output is CSV on stdout, one row per basic block:
//! `id,cluster,nodes,poly_seconds,baseline_seconds,poly_cuts,baseline_cuts,poly_nodes,baseline_nodes`
//! Points with `poly_seconds < baseline_seconds` lie above the diagonal of the paper's
//! scatter plot (our algorithm faster).
//!
//! Options (key=value): `blocks` (default 40), `max_size` (default 300), `seed`,
//! `budget` (search-node cap per algorithm and block, 0 = unlimited, default 2000000),
//! `trees` (max tree depth, default 6), `nin`, `nout`.

use ise_bench::{figure5_workload, timed, Options};
use ise_enum::{baseline_cuts_bounded, incremental_cuts_bounded, Constraints, PruningConfig};
use ise_workloads::SizeCluster;

fn main() {
    let opts = Options::from_env();
    let blocks = opts.usize("blocks", 40);
    let max_size = opts.usize("max_size", 300);
    let seed = opts.u64("seed", 2007);
    let budget = opts.usize("budget", 2_000_000);
    let budget = if budget == 0 { None } else { Some(budget) };
    let max_tree_depth = opts.usize("trees", 6) as u32;
    let nin = opts.usize("nin", ise_bench::PAPER_NIN);
    let nout = opts.usize("nout", ise_bench::PAPER_NOUT);

    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
    let tree_depths: Vec<u32> = (4..=max_tree_depth.max(4)).collect();
    let workload = figure5_workload(blocks, max_size, seed, &tree_depths);

    println!("id,cluster,nodes,poly_seconds,baseline_seconds,poly_cuts,baseline_cuts,poly_search_nodes,baseline_search_nodes");
    let mut poly_wins = 0usize;
    let mut total = 0usize;
    for entry in &workload {
        let (ctx, _) = ise_bench::build_context(&entry.dfg);
        let (poly, poly_time) =
            timed(|| incremental_cuts_bounded(&ctx, &constraints, &PruningConfig::all(), budget));
        let (base, base_time) = timed(|| baseline_cuts_bounded(&ctx, &constraints, budget));
        println!(
            "{},{},{},{:.6},{:.6},{},{},{},{}",
            entry.id,
            entry.cluster.label(),
            entry.dfg.len(),
            poly_time.as_secs_f64(),
            base_time.as_secs_f64(),
            poly.stats.valid_cuts,
            base.stats.valid_cuts,
            poly.stats.search_nodes,
            base.stats.search_nodes,
        );
        total += 1;
        if poly_time < base_time {
            poly_wins += 1;
        }
        // Trees are the baseline's worst case; flag truncation explicitly.
        if entry.cluster == SizeCluster::Tree {
            if let Some(limit) = budget {
                if base.stats.search_nodes >= limit {
                    eprintln!(
                        "# tree block {} truncated the baseline at {} search nodes",
                        entry.id, limit
                    );
                }
            }
        }
    }
    eprintln!("# polynomial algorithm faster on {poly_wins}/{total} blocks");
}
