//! Validates that a file parses as JSON with the workspace's own parser
//! (`ise_bench::json`) — the CI-side checker for machine-readable artifacts such
//! as `--trace-out` Chrome traces and `BENCH_*.json` documents, with no external
//! tooling (`jq`, python) required on the runner.
//!
//! Usage: `json_check FILE [FILE...] [require=KEY]`. Exits non-zero on the first
//! file that does not parse, or (with `require=KEY`) whose top-level object lacks
//! `KEY`. Prints one `ok` line per validated file.

use ise_bench::json::Json;

fn main() {
    let mut required: Option<String> = None;
    let mut files = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.strip_prefix("require=") {
            Some(key) => required = Some(key.to_string()),
            None => files.push(arg),
        }
    }
    if files.is_empty() {
        eprintln!("usage: json_check FILE [FILE...] [require=KEY]");
        std::process::exit(2);
    }
    for file in &files {
        let text =
            std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{file} is not valid JSON: {e}"));
        if let Some(key) = &required {
            assert!(
                doc.get(key).is_some(),
                "{file}: top-level key `{key}` is missing"
            );
        }
        println!("ok {file} ({} bytes)", text.len());
    }
}
