//! Regenerates the Figure 4 experiment: the tree-shaped DFGs on which the pruned
//! exhaustive search degenerates to exponential behaviour (`O(1.6^n)` per the paper)
//! while the polynomial algorithm keeps growing polynomially.
//!
//! Output: one row per tree depth with node count, run time and explored search nodes
//! of both algorithms, plus the growth factor with respect to the previous depth.
//!
//! Options (key=value): `min_depth` (default 3), `max_depth` (default 6), `budget`
//! (search-node cap for the baseline, 0 = unlimited, default 20000000), `nin`, `nout`.

use ise_bench::{timed, Options};
use ise_enum::{baseline_cuts_bounded, incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::tree::TreeDfgBuilder;

fn main() {
    let opts = Options::from_env();
    let min_depth = opts.usize("min_depth", 3) as u32;
    let max_depth = opts.usize("max_depth", 6) as u32;
    let budget = opts.usize("budget", 20_000_000);
    let budget = if budget == 0 { None } else { Some(budget) };
    let nin = opts.usize("nin", ise_bench::PAPER_NIN);
    let nout = opts.usize("nout", ise_bench::PAPER_NOUT);
    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");

    println!(
        "depth,nodes,poly_seconds,baseline_seconds,poly_cuts,baseline_cuts,poly_search_nodes,baseline_search_nodes,baseline_truncated"
    );
    let mut previous_baseline_nodes: Option<usize> = None;
    for depth in min_depth..=max_depth {
        let dfg = TreeDfgBuilder::new(depth).build();
        let ctx = EnumContext::new(dfg.clone());
        let (poly, poly_time) =
            timed(|| incremental_cuts(&ctx, &constraints, &PruningConfig::all()));
        let (base, base_time) = timed(|| baseline_cuts_bounded(&ctx, &constraints, budget));
        let truncated = budget.is_some_and(|limit| base.stats.search_nodes >= limit);
        println!(
            "{},{},{:.6},{:.6},{},{},{},{},{}",
            depth,
            dfg.len(),
            poly_time.as_secs_f64(),
            base_time.as_secs_f64(),
            poly.stats.valid_cuts,
            base.stats.valid_cuts,
            poly.stats.search_nodes,
            base.stats.search_nodes,
            truncated,
        );
        if let Some(prev) = previous_baseline_nodes {
            if prev > 0 {
                eprintln!(
                    "# depth {depth}: baseline search-node growth factor {:.2}x over depth {}",
                    base.stats.search_nodes as f64 / prev as f64,
                    depth - 1
                );
            }
        }
        previous_baseline_nodes = Some(base.stats.search_nodes);
    }
}
