//! Experiment E8 (DESIGN.md): canonical-form grouping throughput and pattern-count
//! curves on the committed corpus.
//!
//! For every corpus block the incremental enumeration runs under the standard
//! per-block budget, then every cut is canonicalized and merged into one
//! [`PatternIndex`]. The stdout report is CSV (one row per block with cut count,
//! canonicalization time, coding throughput and the cumulative number of distinct
//! patterns — the pattern-count curve); the committed `BENCH_grouping.json`
//! artifact records the same rows plus corpus-level aggregates, including the
//! grouped-vs-per-block selection comparison that motivates the subsystem.
//!
//! Options (key=value): `corpus` (default `corpus`), `budget` (default 100000
//! search nodes per block, 0 = unbounded), `nin`/`nout` (default 4/2),
//! `out` (default `BENCH_grouping.json`; `out=-` disables the artifact).

use ise_bench::json::Json;
use ise_bench::{timed, Options, PAPER_NIN, PAPER_NOUT};
use ise_canon::{canonicalize_cuts, select_ises_global, GroupConfig, PatternIndex};
use ise_corpus::load_corpus_path;
use ise_enum::{
    incremental_cuts_opts, select_ises, Constraints, Cut, EngineOptions, EnumContext, PruningConfig,
};
use ise_graph::LatencyModel;

fn main() {
    let opts = Options::from_env();
    let corpus = opts.string("corpus", "corpus");
    let budget = match opts.usize("budget", 100_000) {
        0 => None,
        limit => Some(limit),
    };
    let nin = opts.usize("nin", PAPER_NIN);
    let nout = opts.usize("nout", PAPER_NOUT);
    let out_path = opts.string("out", "BENCH_grouping.json");

    let blocks = load_corpus_path(&corpus).expect("corpus loads");
    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
    let pruning = PruningConfig::all();
    let options = EngineOptions {
        max_search_nodes: budget,
        ..EngineOptions::default()
    };
    let group_config = GroupConfig::new(nin, nout);

    println!("block,nodes,cuts,enum_seconds,canon_seconds,cuts_per_second,patterns_cumulative");
    let mut index = PatternIndex::new(group_config.clone());
    let mut rows = Vec::new();
    let mut contexts = Vec::new();
    let mut cut_lists: Vec<Vec<Cut>> = Vec::new();
    let mut total_canon = 0.0f64;
    let mut per_block_saved: u64 = 0;
    for block in &blocks {
        let ctx = EnumContext::new(block.dfg.clone());
        let (enumeration, enum_elapsed) =
            timed(|| incremental_cuts_opts(&ctx, &constraints, &pruning, &options));
        let (coded, canon_elapsed) =
            timed(|| canonicalize_cuts(&ctx, &enumeration.cuts, &group_config));
        let selection = select_ises(
            &ctx,
            &enumeration.cuts,
            &LatencyModel::default(),
            nin,
            nout,
            4,
        );
        per_block_saved += u64::from(selection.total_saved_cycles);
        index.add_coded_block(coded, block.weight());
        let canon_seconds = canon_elapsed.as_secs_f64();
        let throughput = if canon_seconds > 0.0 {
            enumeration.cuts.len() as f64 / canon_seconds
        } else {
            0.0
        };
        total_canon += canon_seconds;
        println!(
            "{},{},{},{:.6},{:.6},{:.0},{}",
            block.dfg.name(),
            block.dfg.len(),
            enumeration.cuts.len(),
            enum_elapsed.as_secs_f64(),
            canon_seconds,
            throughput,
            index.len(),
        );
        rows.push(Json::object([
            ("block", Json::str(block.dfg.name())),
            ("nodes", Json::uint(block.dfg.len())),
            ("cuts", Json::uint(enumeration.cuts.len())),
            ("enum_seconds", Json::num(enum_elapsed.as_secs_f64())),
            ("canon_seconds", Json::num(canon_seconds)),
            ("cuts_per_second", Json::num(throughput)),
            ("patterns_cumulative", Json::uint(index.len())),
        ]));
        contexts.push(ctx);
        cut_lists.push(enumeration.cuts);
    }

    let views: Vec<&[Cut]> = cut_lists.iter().map(Vec::as_slice).collect();
    let (global, select_elapsed) = timed(|| select_ises_global(&index, &views, 0));
    let recurring = index
        .entries()
        .iter()
        .filter(|e| e.static_count() >= 2)
        .count();
    let cross_block = index
        .entries()
        .iter()
        .filter(|e| e.distinct_blocks() >= 2)
        .count();
    let overall_throughput = if total_canon > 0.0 {
        index.total_cuts() as f64 / total_canon
    } else {
        0.0
    };
    println!(
        "# {} cuts -> {} patterns ({recurring} recurring, {cross_block} cross-block), \
         {overall_throughput:.0} cuts/s coded; global {} vs per-block {} cycles",
        index.total_cuts(),
        index.len(),
        global.total_saved_cycles,
        per_block_saved,
    );
    // Pattern-first greedy dominates per-block greedy on the shipped
    // configurations (CI and tests assert it at the CLI budgets), but it is a
    // heuristic: a recurring pattern's placements can consume vertices a locally
    // better cut needed, and at some off-default budgets the serial sweep
    // measures exactly that (DESIGN.md §6.3). Record it loudly, don't abort the
    // experiment.
    if global.total_saved_cycles < per_block_saved {
        eprintln!(
            "warning: global selection ({}) lost to per-block greedy ({per_block_saved}) \
             at this configuration — see DESIGN.md §6.3 on pattern-first ordering",
            global.total_saved_cycles,
        );
    }

    if out_path != "-" {
        let doc = Json::object([
            ("schema", Json::str("ise-bench/grouping/v1")),
            ("corpus", Json::str(corpus)),
            ("nin", Json::uint(nin)),
            ("nout", Json::uint(nout)),
            ("budget", budget.map_or(Json::Null, Json::uint)),
            ("rows", Json::Array(rows)),
            (
                "aggregate",
                Json::object([
                    ("blocks", Json::uint(blocks.len())),
                    ("total_cuts", Json::uint(index.total_cuts())),
                    ("patterns", Json::uint(index.len())),
                    ("recurring_patterns", Json::uint(recurring)),
                    ("cross_block_patterns", Json::uint(cross_block)),
                    ("canon_seconds_total", Json::num(total_canon)),
                    ("cuts_per_second", Json::num(overall_throughput)),
                    (
                        "global_select_seconds",
                        Json::num(select_elapsed.as_secs_f64()),
                    ),
                    ("global_selected_patterns", Json::uint(global.chosen.len())),
                    ("global_saved_cycles", Json::UInt(global.total_saved_cycles)),
                    ("per_block_saved_cycles", Json::UInt(per_block_saved)),
                ]),
            ),
        ]);
        std::fs::write(&out_path, doc.render() + "\n").expect("artifact written");
        eprintln!("wrote {out_path}");
    }
}
