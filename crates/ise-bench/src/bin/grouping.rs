//! Experiment E8 (DESIGN.md): canonical-form grouping throughput and pattern-count
//! curves on the committed corpus, plus the memoized-canonicalization speedup.
//!
//! For every corpus block the incremental enumeration runs under the standard
//! per-block budget, then every cut is canonicalized three ways:
//!
//! 1. **memo-off** — the plain labeler path ([`canonicalize_cuts`]), the
//!    pre-memo baseline;
//! 2. **memo-on, cold** — [`canonicalize_cuts_memo`] against a shared
//!    [`CanonMemo`] that starts empty, measuring the first sweep a CLI run sees
//!    (the labeler runs once per *distinct* pattern, not once per cut);
//! 3. **memo-on, warm** — a second sweep over the whole corpus through the same
//!    memo, measuring the steady state `ise serve` reaches once every pattern
//!    has been labeled.
//!
//! Each memoized pass is asserted element-for-element equal to the memo-off
//! coding — the memo must be observably pure. In full mode the run additionally
//! asserts the warm sweep is at least 5x the memo-off throughput and that the
//! labeler ran fewer times than there are cuts (the whole point of the memo).
//!
//! The stdout report is CSV (one row per block with cut count, memo-off and
//! memo-on-cold canonicalization time and throughput, and the cumulative number
//! of distinct patterns — the pattern-count curve); the committed
//! `BENCH_grouping.json` artifact records the same rows plus corpus-level
//! aggregates: the three throughputs, the warm speedup, the memo's hit/miss
//! counters, and the grouped-vs-per-block selection comparison that motivates
//! the subsystem.
//!
//! Options (key=value): `corpus` (default `corpus`), `budget` (default 100000
//! search nodes per block, 0 = unbounded), `nin`/`nout` (default 4/2),
//! `out` (default `BENCH_grouping.json`; `out=-` disables the artifact),
//! `test` (default 0; `test=1` keeps the purity asserts but skips the
//! throughput-floor asserts, for CI smoke runs on debug builds).

use ise_bench::json::Json;
use ise_bench::{timed, Options, PAPER_NIN, PAPER_NOUT};
use ise_canon::{
    canonicalize_cuts, canonicalize_cuts_memo, select_ises_global, CanonMemo, GroupConfig,
    PatternIndex,
};
use ise_corpus::load_corpus_path;
use ise_enum::{
    incremental_cuts_opts, select_ises, Constraints, Cut, EngineOptions, EnumContext, PruningConfig,
};
use ise_graph::LatencyModel;

fn main() {
    let opts = Options::from_env();
    let corpus = opts.string("corpus", "corpus");
    let budget = match opts.usize("budget", 100_000) {
        0 => None,
        limit => Some(limit),
    };
    let nin = opts.usize("nin", PAPER_NIN);
    let nout = opts.usize("nout", PAPER_NOUT);
    let out_path = opts.string("out", "BENCH_grouping.json");
    let test_mode = opts.bool("test", false);

    let blocks = load_corpus_path(&corpus).expect("corpus loads");
    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
    let pruning = PruningConfig::all();
    let options = EngineOptions {
        max_search_nodes: budget,
        ..EngineOptions::default()
    };
    let group_config = GroupConfig::new(nin, nout);
    let memo = CanonMemo::new();

    println!(
        "block,nodes,cuts,enum_seconds,canon_seconds,cuts_per_second,\
         canon_seconds_memo,cuts_per_second_memo,patterns_cumulative"
    );
    let mut index = PatternIndex::new(group_config.clone());
    let mut rows = Vec::new();
    let mut contexts = Vec::new();
    let mut cut_lists: Vec<Vec<Cut>> = Vec::new();
    let mut cold_codings = Vec::new();
    let mut total_canon_off = 0.0f64;
    let mut total_canon_cold = 0.0f64;
    let mut per_block_saved: u64 = 0;
    for block in &blocks {
        let ctx = EnumContext::new(block.dfg.clone());
        let (enumeration, enum_elapsed) =
            timed(|| incremental_cuts_opts(&ctx, &constraints, &pruning, &options));
        let (coded, canon_elapsed) =
            timed(|| canonicalize_cuts(&ctx, &enumeration.cuts, &group_config));
        let (coded_memo, memo_elapsed) =
            timed(|| canonicalize_cuts_memo(&ctx, &enumeration.cuts, &group_config, &memo));
        assert_eq!(
            coded,
            coded_memo,
            "memoized coding must match the plain labeler on {}",
            block.dfg.name()
        );
        let selection = select_ises(
            &ctx,
            &enumeration.cuts,
            &LatencyModel::default(),
            nin,
            nout,
            4,
        );
        per_block_saved += u64::from(selection.total_saved_cycles);
        index.add_coded_block(coded, block.weight());
        let canon_seconds = canon_elapsed.as_secs_f64();
        let memo_seconds = memo_elapsed.as_secs_f64();
        let per_second = |seconds: f64| {
            if seconds > 0.0 {
                enumeration.cuts.len() as f64 / seconds
            } else {
                0.0
            }
        };
        total_canon_off += canon_seconds;
        total_canon_cold += memo_seconds;
        println!(
            "{},{},{},{:.6},{:.6},{:.0},{:.6},{:.0},{}",
            block.dfg.name(),
            block.dfg.len(),
            enumeration.cuts.len(),
            enum_elapsed.as_secs_f64(),
            canon_seconds,
            per_second(canon_seconds),
            memo_seconds,
            per_second(memo_seconds),
            index.len(),
        );
        rows.push(Json::object([
            ("block", Json::str(block.dfg.name())),
            ("nodes", Json::uint(block.dfg.len())),
            ("cuts", Json::uint(enumeration.cuts.len())),
            ("enum_seconds", Json::num(enum_elapsed.as_secs_f64())),
            ("canon_seconds", Json::num(canon_seconds)),
            ("cuts_per_second", Json::num(per_second(canon_seconds))),
            ("canon_seconds_memo", Json::num(memo_seconds)),
            ("cuts_per_second_memo", Json::num(per_second(memo_seconds))),
            ("patterns_cumulative", Json::uint(index.len())),
        ]));
        contexts.push(ctx);
        cut_lists.push(enumeration.cuts);
        cold_codings.push(coded_memo);
    }

    // Warm sweep: every pattern is already in the memo, so this measures the
    // raw-hit fast path alone — the throughput `ise serve` sustains after its
    // first request over a corpus.
    let (warm_codings, warm_elapsed) = timed(|| {
        contexts
            .iter()
            .zip(&cut_lists)
            .map(|(ctx, cuts)| canonicalize_cuts_memo(ctx, cuts, &group_config, &memo))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        warm_codings, cold_codings,
        "warm memoized coding must match the cold sweep"
    );
    let total_cuts = index.total_cuts();
    let warm_seconds = warm_elapsed.as_secs_f64();
    let throughput = |seconds: f64| {
        if seconds > 0.0 {
            total_cuts as f64 / seconds
        } else {
            0.0
        }
    };
    let warm_speedup = if warm_seconds > 0.0 {
        total_canon_off / warm_seconds
    } else {
        0.0
    };
    let stats = memo.stats();

    let views: Vec<&[Cut]> = cut_lists.iter().map(Vec::as_slice).collect();
    let (global, select_elapsed) = timed(|| select_ises_global(&index, &views, 0));
    let recurring = index
        .entries()
        .iter()
        .filter(|e| e.static_count() >= 2)
        .count();
    let cross_block = index
        .entries()
        .iter()
        .filter(|e| e.distinct_blocks() >= 2)
        .count();
    println!(
        "# {} cuts -> {} patterns ({recurring} recurring, {cross_block} cross-block); \
         {:.0} cuts/s off, {:.0} cold, {:.0} warm ({warm_speedup:.1}x); \
         {} labeler runs; global {} vs per-block {} cycles",
        total_cuts,
        index.len(),
        throughput(total_canon_off),
        throughput(total_canon_cold),
        throughput(warm_seconds),
        stats.labeler_runs,
        global.total_saved_cycles,
        per_block_saved,
    );
    if !test_mode {
        assert!(
            stats.labeler_runs < total_cuts as u64,
            "memo must run the labeler fewer times ({}) than there are cuts ({total_cuts})",
            stats.labeler_runs,
        );
        assert!(
            warm_speedup >= 5.0,
            "warm memoized coding must be at least 5x the plain labeler \
             (measured {warm_speedup:.2}x)"
        );
    }
    // Pattern-first greedy dominates per-block greedy on the shipped
    // configurations (CI and tests assert it at the CLI budgets), but it is a
    // heuristic: a recurring pattern's placements can consume vertices a locally
    // better cut needed, and at some off-default budgets the serial sweep
    // measures exactly that (DESIGN.md §6.3). Record it loudly, don't abort the
    // experiment.
    if global.total_saved_cycles < per_block_saved {
        eprintln!(
            "warning: global selection ({}) lost to per-block greedy ({per_block_saved}) \
             at this configuration — see DESIGN.md §6.3 on pattern-first ordering",
            global.total_saved_cycles,
        );
    }

    if out_path != "-" {
        let doc = Json::object([
            ("schema", Json::str("ise-bench/grouping/v2")),
            ("meta", ise_bench::bench_meta("disabled")),
            ("corpus", Json::str(corpus)),
            ("nin", Json::uint(nin)),
            ("nout", Json::uint(nout)),
            ("budget", budget.map_or(Json::Null, Json::uint)),
            ("rows", Json::Array(rows)),
            (
                "aggregate",
                Json::object([
                    ("blocks", Json::uint(blocks.len())),
                    ("total_cuts", Json::uint(total_cuts)),
                    ("patterns", Json::uint(index.len())),
                    ("recurring_patterns", Json::uint(recurring)),
                    ("cross_block_patterns", Json::uint(cross_block)),
                    ("canon_seconds_total", Json::num(total_canon_off)),
                    ("cuts_per_second", Json::num(throughput(total_canon_off))),
                    ("canon_seconds_memo_cold", Json::num(total_canon_cold)),
                    (
                        "cuts_per_second_memo_cold",
                        Json::num(throughput(total_canon_cold)),
                    ),
                    ("canon_seconds_memo_warm", Json::num(warm_seconds)),
                    (
                        "cuts_per_second_memo_warm",
                        Json::num(throughput(warm_seconds)),
                    ),
                    ("memo_warm_speedup", Json::num(warm_speedup)),
                    (
                        "memo",
                        Json::object([
                            ("raw_hits", Json::UInt(stats.raw_hits)),
                            ("fingerprint_hits", Json::UInt(stats.fingerprint_hits)),
                            ("labeler_runs", Json::UInt(stats.labeler_runs)),
                            ("entries", Json::UInt(stats.entries)),
                        ]),
                    ),
                    (
                        "global_select_seconds",
                        Json::num(select_elapsed.as_secs_f64()),
                    ),
                    ("global_selected_patterns", Json::uint(global.chosen.len())),
                    ("global_saved_cycles", Json::UInt(global.total_saved_cycles)),
                    ("per_block_saved_cycles", Json::UInt(per_block_saved)),
                ]),
            ),
        ]);
        std::fs::write(&out_path, doc.render() + "\n").expect("artifact written");
        eprintln!("wrote {out_path}");
    }
}
