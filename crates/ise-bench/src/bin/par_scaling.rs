//! E7 in DESIGN.md: intra-block task-parallel scaling on the worst committed corpus
//! block, with recursive task splitting.
//!
//! The `scaling` binary (E3) showed where the single-core constant factors live; this
//! experiment measures what the `ise_enum::par` decomposition buys on top: the
//! hardest committed block is enumerated once serially (the baseline row) and then
//! task-parallel at every requested thread count, with recursive splitting at the
//! configured threshold. Each parallel run's merged result is asserted identical to
//! the serial run — cut list *and* statistics — before its wall time is recorded, so
//! the artifact can never report a speedup for a wrong answer. Every parallel row
//! also records its final task count, the per-task `search_nodes` and the load skew
//! (max/mean, [`TaskLoadSummary`]). A second section runs the committed skewed-DAG
//! block with splitting off and on and asserts that splitting collapses the heaviest
//! task (the wall-clock floor) and the skew — that holds on any host. `host_cpus` is
//! recorded alongside: the ≥2.5x-at-4-threads scaling assertion only fires when the
//! host actually has more than one CPU; on a single-core host the thread rows
//! measure scheduling overhead (speedup ≈ 1) and the real numbers are recorded
//! as-is.
//!
//! Options (key=value): `corpus` (default `corpus`), `block` (name substring,
//! default = the largest block), `nin`/`nout` (default 4/2), `budget` (per task,
//! default 0 = unbounded; the identity assertion only runs unbudgeted), `tasks`
//! (default 16), `threads` (comma list, default `1,2,4`), `split` (node threshold
//! for recursive splitting, default 1000000, 0 = off), `out`
//! (default `BENCH_par_scaling.json`, `-` disables).

use ise_bench::json::Json;
use ise_bench::{timed, Options};
use ise_corpus::load_corpus_path;
use ise_enum::par::{parallel_cuts_traced, ParConfig, ParRun};
use ise_enum::{
    incremental_cuts_opts, Constraints, Cut, EngineOptions, EnumContext, Enumeration,
    PruningConfig, TaskLoadSummary,
};

fn keys(result: &Enumeration) -> Vec<ise_enum::CutKey<'_>> {
    result.cuts.iter().map(Cut::key).collect()
}

fn load_json(run: &ParRun) -> Json {
    let summary = TaskLoadSummary::from_task_nodes(&run.task_nodes);
    Json::object([
        ("tasks", Json::uint(summary.tasks)),
        ("max_nodes", Json::uint(summary.max_nodes)),
        ("mean_nodes", Json::num(summary.mean_nodes())),
        ("skew_ratio", Json::num(summary.skew_ratio())),
        (
            "task_search_nodes",
            Json::Array(run.task_nodes.iter().map(|&n| Json::uint(n)).collect()),
        ),
    ])
}

fn main() {
    let opts = Options::from_env();
    let corpus = opts.string("corpus", "corpus");
    let block_filter = opts.string("block", "");
    let nin = opts.usize("nin", 4);
    let nout = opts.usize("nout", 2);
    let budget = match opts.usize("budget", 0) {
        0 => None,
        b => Some(b),
    };
    let tasks = opts.usize("tasks", 16);
    let split = match opts.usize("split", 1_000_000) {
        0 => None,
        s => Some(s),
    };
    let threads: Vec<usize> = opts
        .string("threads", "1,2,4")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&t| t > 0)
        .collect();
    let out_path = opts.string("out", "BENCH_par_scaling.json");

    let blocks = load_corpus_path(&corpus).unwrap_or_else(|e| panic!("cannot load {corpus}: {e}"));
    let block = if block_filter.is_empty() {
        blocks
            .iter()
            .max_by_key(|b| b.dfg.len())
            .expect("corpus has at least one block")
    } else {
        blocks
            .iter()
            .find(|b| b.dfg.name().contains(&block_filter))
            .unwrap_or_else(|| panic!("no block matching `{block_filter}` in {corpus}"))
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "block {} ({} nodes, {} edges), Nin={nin} Nout={nout}, tasks={tasks}, \
         split={split:?}, host_cpus={host_cpus}",
        block.dfg.name(),
        block.dfg.len(),
        block.dfg.edge_count(),
    );

    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
    let pruning = PruningConfig::all();
    let options = EngineOptions {
        max_search_nodes: budget,
        ..EngineOptions::default()
    };
    let ctx = EnumContext::new(block.dfg.clone());

    let (serial, serial_elapsed) =
        timed(|| incremental_cuts_opts(&ctx, &constraints, &pruning, &options));
    let serial_seconds = serial_elapsed.as_secs_f64();
    println!("mode,tasks,threads,seconds,speedup,cuts,search_nodes,final_tasks,skew,identical");
    println!(
        "serial,1,1,{serial_seconds:.6},1.00,{},{},1,1.00,true",
        serial.stats.valid_cuts, serial.stats.search_nodes
    );
    let mut rows = vec![Json::object([
        ("mode", Json::str("serial")),
        ("tasks", Json::uint(1)),
        ("threads", Json::uint(1)),
        ("seconds", Json::num(serial_seconds)),
        ("speedup", Json::num(1.0)),
        ("cuts", Json::uint(serial.stats.valid_cuts)),
        ("search_nodes", Json::uint(serial.stats.search_nodes)),
        ("identical_to_serial", Json::Bool(true)),
    ])];

    let mut speedup_at: Vec<(usize, f64)> = Vec::new();
    for &t in &threads {
        let mut config = ParConfig::new(tasks, t);
        config.options = options;
        config.split_threshold = split;
        let (run, elapsed) = timed(|| parallel_cuts_traced(&ctx, &constraints, &pruning, &config));
        let par = &run.enumeration;
        // The merged result must be byte-identical to the serial run; a budgeted run
        // truncates per task, so only unbudgeted runs assert (and record) identity.
        let identical = budget.is_none();
        if identical {
            assert_eq!(par.stats, serial.stats, "{t} threads: stats diverge");
            assert_eq!(keys(par), keys(&serial), "{t} threads: cuts diverge");
        }
        let seconds = elapsed.as_secs_f64();
        let speedup = serial_seconds / seconds.max(f64::MIN_POSITIVE);
        speedup_at.push((t, speedup));
        let summary = TaskLoadSummary::from_task_nodes(&run.task_nodes);
        println!(
            "parallel,{tasks},{t},{seconds:.6},{speedup:.2},{},{},{},{:.2},{identical}",
            par.stats.valid_cuts,
            par.stats.search_nodes,
            summary.tasks,
            summary.skew_ratio(),
        );
        rows.push(Json::object([
            ("mode", Json::str("parallel")),
            ("tasks", Json::uint(tasks)),
            ("threads", Json::uint(t)),
            ("seconds", Json::num(seconds)),
            ("speedup", Json::num(speedup)),
            ("cuts", Json::uint(par.stats.valid_cuts)),
            ("search_nodes", Json::uint(par.stats.search_nodes)),
            ("identical_to_serial", Json::Bool(identical)),
            ("load", load_json(&run)),
        ]));
    }

    // The skew study: the committed skewed-DAG block with splitting off vs on. The
    // wall-clock floor of a decomposition is its heaviest task, so the splitting
    // claim is testable on any host — single-core included — as a node-count claim.
    // The study pins its own task count and threshold rather than inheriting the
    // CLI knobs: the max/mean skew ratio is not monotone in either (many tiny tasks
    // depress the mean), and the assertions below are calibrated for this shape.
    const SKEW_STUDY_TASKS: usize = 16;
    let skew_study = blocks
        .iter()
        .find(|b| b.dfg.name().starts_with("skewed-dag"))
        .map(|skewed| {
            let skew_ctx = EnumContext::new(skewed.dfg.clone());
            let baseline_cfg = ParConfig::new(SKEW_STUDY_TASKS, 1);
            let (baseline, _) =
                timed(|| parallel_cuts_traced(&skew_ctx, &constraints, &pruning, &baseline_cfg));
            let mut split_cfg = ParConfig::new(SKEW_STUDY_TASKS, 1);
            split_cfg.split_threshold = Some(10_000);
            let (split_run, _) =
                timed(|| parallel_cuts_traced(&skew_ctx, &constraints, &pruning, &split_cfg));
            let base = TaskLoadSummary::from_task_nodes(&baseline.task_nodes);
            let with = TaskLoadSummary::from_task_nodes(&split_run.task_nodes);
            assert!(
                with.max_nodes < base.max_nodes,
                "splitting must shrink the heaviest task on {} ({} -> {})",
                skewed.dfg.name(),
                base.max_nodes,
                with.max_nodes,
            );
            assert!(
                with.skew_ratio() < base.skew_ratio(),
                "splitting must reduce the load skew on {} ({:.2} -> {:.2})",
                skewed.dfg.name(),
                base.skew_ratio(),
                with.skew_ratio(),
            );
            eprintln!(
                "skew study {}: single-split skew {:.2} (max {} nodes) -> split@10000 \
                 skew {:.2} (max {} nodes, {} tasks)",
                skewed.dfg.name(),
                base.skew_ratio(),
                base.max_nodes,
                with.skew_ratio(),
                with.max_nodes,
                with.tasks,
            );
            Json::object([
                ("block", Json::str(skewed.dfg.name().to_string())),
                ("split_threshold", Json::uint(10_000)),
                ("single_split", load_json(&baseline)),
                ("recursive_split", load_json(&split_run)),
            ])
        });
    if skew_study.is_none() {
        eprintln!("note: no skewed-dag block in {corpus}; skipping the skew study");
    }

    // Scaling gates. The multi-core bar only applies where the hardware can deliver
    // it; the 1-thread bar (no regression from the decomposition itself) applies
    // everywhere but tolerates measurement noise.
    if budget.is_none() {
        if let Some(&(_, speedup)) = speedup_at.iter().find(|(t, _)| *t == 1) {
            assert!(
                speedup >= 0.95,
                "1-thread parallel run regressed {speedup:.2}x vs serial"
            );
        }
        if host_cpus > 1 {
            if let Some(&(_, speedup)) = speedup_at.iter().find(|(t, _)| *t == 4) {
                assert!(
                    speedup >= 2.5,
                    "expected >= 2.5x at 4 threads on a {host_cpus}-cpu host, got {speedup:.2}x"
                );
            }
        }
    }

    if out_path != "-" {
        let best_speedup = speedup_at
            .iter()
            .map(|&(_, s)| s)
            .fold(None::<f64>, |b, s| Some(b.map_or(s, |b| b.max(s))));
        let doc = Json::object([
            ("schema", Json::str("ise-bench/par-scaling/v2")),
            ("meta", ise_bench::bench_meta("disabled")),
            ("block", Json::str(block.dfg.name().to_string())),
            ("nodes", Json::uint(block.dfg.len())),
            ("edges", Json::uint(block.dfg.edge_count())),
            ("nin", Json::uint(nin)),
            ("nout", Json::uint(nout)),
            ("tasks", Json::uint(tasks)),
            ("split_threshold", split.map_or(Json::Null, Json::uint)),
            ("budget", budget.map_or(Json::Null, Json::uint)),
            ("host_cpus", Json::uint(host_cpus)),
            ("rows", Json::Array(rows)),
            ("skew_study", skew_study.unwrap_or(Json::Null)),
            (
                "summary",
                Json::object([
                    ("serial_seconds", Json::num(serial_seconds)),
                    ("best_speedup", best_speedup.map_or(Json::Null, Json::num)),
                ]),
            ),
        ]);
        std::fs::write(&out_path, doc.render() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        eprintln!(
            "wrote {out_path} (serial {serial_seconds:.3}s, best speedup {:.2}x \
             on {host_cpus} cpu(s))",
            best_speedup.unwrap_or(f64::NAN)
        );
    }
}
