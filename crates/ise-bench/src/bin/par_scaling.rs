//! E7 in DESIGN.md: intra-block task-parallel scaling on the worst committed corpus
//! block.
//!
//! The `scaling` binary (E3) showed where the single-core constant factors live; this
//! experiment measures what the `ise_enum::par` first-output task decomposition buys
//! on top: the hardest committed block is enumerated once serially (the baseline row)
//! and then task-parallel at every requested thread count. Each parallel run's merged
//! result is asserted identical to the serial run — cut list *and* statistics — before
//! its wall time is recorded, so the artifact can never report a speedup for a wrong
//! answer. `host_cpus` is recorded alongside: on a single-core host the thread rows
//! measure scheduling overhead (speedup ≈ 1), and the artifact only shows real
//! scaling when regenerated on a multi-core machine.
//!
//! Options (key=value): `corpus` (default `corpus`), `block` (name substring,
//! default = the largest block), `nin`/`nout` (default 4/2), `budget` (per task,
//! default 0 = unbounded; the identity assertion only runs unbudgeted), `tasks`
//! (default 16), `threads` (comma list, default `1,2,4`), `out`
//! (default `BENCH_par_scaling.json`, `-` disables).

use ise_bench::json::Json;
use ise_bench::{timed, Options};
use ise_corpus::load_corpus_path;
use ise_enum::par::{parallel_cuts, ParConfig};
use ise_enum::{
    incremental_cuts_opts, Constraints, Cut, EngineOptions, EnumContext, Enumeration, PruningConfig,
};

fn keys(result: &Enumeration) -> Vec<ise_enum::CutKey<'_>> {
    result.cuts.iter().map(Cut::key).collect()
}

fn main() {
    let opts = Options::from_env();
    let corpus = opts.string("corpus", "corpus");
    let block_filter = opts.string("block", "");
    let nin = opts.usize("nin", 4);
    let nout = opts.usize("nout", 2);
    let budget = match opts.usize("budget", 0) {
        0 => None,
        b => Some(b),
    };
    let tasks = opts.usize("tasks", 16);
    let threads: Vec<usize> = opts
        .string("threads", "1,2,4")
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .filter(|&t| t > 0)
        .collect();
    let out_path = opts.string("out", "BENCH_par_scaling.json");

    let blocks = load_corpus_path(&corpus).unwrap_or_else(|e| panic!("cannot load {corpus}: {e}"));
    let block = if block_filter.is_empty() {
        blocks
            .iter()
            .max_by_key(|b| b.dfg.len())
            .expect("corpus has at least one block")
    } else {
        blocks
            .iter()
            .find(|b| b.dfg.name().contains(&block_filter))
            .unwrap_or_else(|| panic!("no block matching `{block_filter}` in {corpus}"))
    };
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    eprintln!(
        "block {} ({} nodes, {} edges), Nin={nin} Nout={nout}, tasks={tasks}, host_cpus={host_cpus}",
        block.dfg.name(),
        block.dfg.len(),
        block.dfg.edge_count(),
    );

    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
    let pruning = PruningConfig::all();
    let options = EngineOptions {
        max_search_nodes: budget,
        ..EngineOptions::default()
    };
    let ctx = EnumContext::new(block.dfg.clone());

    let (serial, serial_elapsed) =
        timed(|| incremental_cuts_opts(&ctx, &constraints, &pruning, &options));
    let serial_seconds = serial_elapsed.as_secs_f64();
    println!("mode,tasks,threads,seconds,speedup,cuts,search_nodes,identical");
    println!(
        "serial,1,1,{serial_seconds:.6},1.00,{},{},true",
        serial.stats.valid_cuts, serial.stats.search_nodes
    );
    let mut rows = vec![Json::object([
        ("mode", Json::str("serial")),
        ("tasks", Json::uint(1)),
        ("threads", Json::uint(1)),
        ("seconds", Json::num(serial_seconds)),
        ("speedup", Json::num(1.0)),
        ("cuts", Json::uint(serial.stats.valid_cuts)),
        ("search_nodes", Json::uint(serial.stats.search_nodes)),
        ("identical_to_serial", Json::Bool(true)),
    ])];

    let mut best_speedup: Option<f64> = None;
    for &t in &threads {
        let mut config = ParConfig::new(tasks, t);
        config.options = options;
        let (par, elapsed) = timed(|| parallel_cuts(&ctx, &constraints, &pruning, &config));
        // The merged result must be byte-identical to the serial run; a budgeted run
        // truncates per task, so only unbudgeted runs assert (and record) identity.
        let identical = budget.is_none();
        if identical {
            assert_eq!(par.stats, serial.stats, "{t} threads: stats diverge");
            assert_eq!(keys(&par), keys(&serial), "{t} threads: cuts diverge");
        }
        let seconds = elapsed.as_secs_f64();
        let speedup = serial_seconds / seconds.max(f64::MIN_POSITIVE);
        best_speedup = Some(best_speedup.map_or(speedup, |b| b.max(speedup)));
        println!(
            "parallel,{tasks},{t},{seconds:.6},{speedup:.2},{},{},{identical}",
            par.stats.valid_cuts, par.stats.search_nodes
        );
        rows.push(Json::object([
            ("mode", Json::str("parallel")),
            ("tasks", Json::uint(tasks)),
            ("threads", Json::uint(t)),
            ("seconds", Json::num(seconds)),
            ("speedup", Json::num(speedup)),
            ("cuts", Json::uint(par.stats.valid_cuts)),
            ("search_nodes", Json::uint(par.stats.search_nodes)),
            ("identical_to_serial", Json::Bool(identical)),
        ]));
    }

    if out_path != "-" {
        let doc = Json::object([
            ("schema", Json::str("ise-bench/par-scaling/v1")),
            ("block", Json::str(block.dfg.name().to_string())),
            ("nodes", Json::uint(block.dfg.len())),
            ("edges", Json::uint(block.dfg.edge_count())),
            ("nin", Json::uint(nin)),
            ("nout", Json::uint(nout)),
            ("tasks", Json::uint(tasks)),
            ("budget", budget.map_or(Json::Null, Json::uint)),
            ("host_cpus", Json::uint(host_cpus)),
            ("rows", Json::Array(rows)),
            (
                "summary",
                Json::object([
                    ("serial_seconds", Json::num(serial_seconds)),
                    ("best_speedup", best_speedup.map_or(Json::Null, Json::num)),
                ]),
            ),
        ]);
        std::fs::write(&out_path, doc.render() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        eprintln!(
            "wrote {out_path} (serial {serial_seconds:.3}s, best speedup {:.2}x \
             on {host_cpus} cpu(s))",
            best_speedup.unwrap_or(f64::NAN)
        );
    }
}
