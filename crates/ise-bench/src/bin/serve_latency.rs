//! Experiment E9 (DESIGN.md): `ise serve` cold-vs-warm latency and cache hit rates.
//!
//! Spawns the built `ise` binary as `ise serve` over stdin/stdout pipes, replays one
//! `enumerate` request per committed corpus block twice, and measures the client-side
//! round-trip latency of each request. The first pass is cold (every request computes
//! and populates the content-addressed cache), the second is warm (every request is a
//! string lookup); the bench asserts that every warm response carries `cached:true`
//! and that its `result` payload is **byte-identical** to the cold one. A final
//! `stats` request collects the daemon's hit/miss counters and a `shutdown` request
//! checks graceful exit.
//!
//! A second phase measures the **concurrent** daemon over TCP: a fresh
//! `ise serve --listen 127.0.0.1:0` is warmed once, then its warm throughput is
//! measured from 1 client and from `clients` (default 4) parallel clients, each
//! replaying the whole request list over its own connection. On a multi-core host
//! the multi-client warm throughput must be at least 2x the single-connection
//! throughput (warm requests are lock-then-string-lookup, so they scale with
//! connections); on a single-CPU container the numbers are recorded without the
//! assertion — the artifact's `tcp.cpus` field says which world produced it.
//!
//! The stdout report is CSV (one row per block with cold/warm latency and speedup);
//! the committed `BENCH_serve.json` artifact (schema v2) records the same rows plus
//! corpus-level aggregates and the TCP throughput phase. In full mode the bench
//! asserts the aggregate warm speedup is at least 100x — the headline number the
//! cache exists to deliver.
//!
//! Options (key=value): `corpus` (default `corpus`), `budget` (default 100000 search
//! nodes per block, 20000 in smoke mode; 0 = unbounded), `nin`/`nout` (default 4/2),
//! `clients` (default 4) and `rounds` (default 8, 2 in smoke mode) for the TCP
//! phase, `bin` (path to the `ise` binary; defaults to a sibling of this
//! executable, so build `ise-cli` in the same profile first), `out` (default
//! `BENCH_serve.json` in full mode, `-` in smoke mode; `out=-` disables the
//! artifact), `smoke` (also accepted as a bare `--smoke` flag): first 3 blocks
//! only, no speedup assertions — the CI fast path.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::time::{Duration, Instant};

use ise_bench::json::Json;
use ise_bench::{Options, PAPER_NIN, PAPER_NOUT};
use ise_corpus::load_corpus_path;

/// The daemon under test: a child `ise serve` process spoken to over pipes.
struct Server {
    child: Child,
    stdin: ChildStdin,
    stdout: BufReader<ChildStdout>,
}

impl Server {
    fn spawn(bin: &str) -> Server {
        let mut child = Command::new(bin)
            .arg("serve")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|err| panic!("spawning `{bin} serve` failed: {err}"));
        let stdin = child.stdin.take().expect("piped stdin");
        let stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        Server {
            child,
            stdin,
            stdout,
        }
    }

    /// Sends one request line and reads one response line, returning the response
    /// and the client-observed round-trip latency in milliseconds.
    fn roundtrip(&mut self, request: &str) -> (String, f64) {
        let start = Instant::now();
        writeln!(self.stdin, "{request}").expect("request written");
        self.stdin.flush().expect("request flushed");
        let mut response = String::new();
        let read = self.stdout.read_line(&mut response).expect("response read");
        assert!(read > 0, "daemon closed its stdout mid-session");
        let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
        (response.trim_end().to_string(), elapsed_ms)
    }

    /// Requests shutdown and asserts the daemon acknowledges and exits cleanly.
    fn shutdown(mut self) {
        let (response, _) = self.roundtrip("{\"op\":\"shutdown\"}");
        assert_eq!(response, "{\"ok\":true,\"op\":\"shutdown\"}");
        let status = self.child.wait().expect("daemon reaped");
        assert!(status.success(), "daemon exited with {status}");
    }
}

/// A TCP daemon under test: `ise serve --listen 127.0.0.1:0`, its bound address
/// read from the startup banner.
struct TcpServer {
    child: Child,
    addr: String,
}

impl TcpServer {
    fn spawn(bin: &str) -> TcpServer {
        let mut child = Command::new(bin)
            .arg("serve")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .stdout(Stdio::piped())
            .spawn()
            .unwrap_or_else(|err| panic!("spawning `{bin} serve --listen` failed: {err}"));
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("startup banner read");
        let addr = banner
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        TcpServer { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .expect("read timeout set");
        // Without this, Nagle holds each request's trailing newline for the
        // previous segment's delayed ACK and the "throughput" measures the
        // kernel's 40ms ACK timer instead of the daemon.
        stream.set_nodelay(true).expect("nodelay set");
        stream
    }

    fn shutdown(mut self) {
        let mut stream = self.connect();
        writeln!(stream, "{{\"op\":\"shutdown\"}}").expect("shutdown sent");
        let mut response = String::new();
        BufReader::new(stream)
            .read_line(&mut response)
            .expect("shutdown acknowledged");
        assert_eq!(response.trim_end(), "{\"ok\":true,\"op\":\"shutdown\"}");
        let status = self.child.wait().expect("daemon reaped");
        assert!(status.success(), "daemon exited with {status}");
    }
}

/// Replays `requests` `rounds` times over one connection, asserting every answer
/// is a cache hit; returns the number of requests answered.
fn replay_warm(stream: &mut TcpStream, requests: &[String], rounds: usize) -> u64 {
    let mut reader = BufReader::new(stream.try_clone().expect("stream clone"));
    let mut answered = 0u64;
    for _ in 0..rounds {
        for request in requests {
            stream
                .write_all(format!("{request}\n").as_bytes())
                .expect("request written");
            let mut response = String::new();
            let read = reader.read_line(&mut response).expect("response read");
            assert!(read > 0, "daemon closed the connection mid-replay");
            assert!(
                response.starts_with("{\"ok\":true"),
                "warm replay failed: {response}"
            );
            assert!(
                response.contains("\"cached\":true"),
                "warm replay must hit the cache: {response}"
            );
            answered += 1;
        }
    }
    answered
}

/// Warm throughput in requests/second from `clients` parallel connections, each
/// replaying the full request list `rounds` times.
fn warm_throughput(server: &TcpServer, requests: &[String], clients: usize, rounds: usize) -> f64 {
    let started = Instant::now();
    let answered: u64 = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                scope.spawn(|| {
                    let mut stream = server.connect();
                    replay_warm(&mut stream, requests, rounds)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client thread"))
            .sum()
    });
    answered as f64 / started.elapsed().as_secs_f64()
}

/// The raw `result` payload bytes of an `ok:true` envelope. Taking the substring
/// (rather than parse + re-render) keeps the cold/warm comparison a true byte
/// identity check on what the daemon actually emitted.
fn payload_of(response: &str) -> &str {
    let start = response
        .find("\"result\":")
        .unwrap_or_else(|| panic!("no result field in {response}"));
    &response[start + "\"result\":".len()..response.len() - 1]
}

/// Envelope field accessor: parses the response and asserts `ok:true`.
fn envelope(response: &str) -> Json {
    let doc = Json::parse(response).expect("response parses as JSON");
    assert_eq!(
        doc.get("ok").and_then(Json::as_bool),
        Some(true),
        "request failed: {response}"
    );
    doc
}

fn default_bin() -> String {
    let exe = std::env::current_exe().expect("current executable path");
    let dir = exe.parent().expect("executable directory");
    dir.join(format!("ise{}", std::env::consts::EXE_SUFFIX))
        .to_string_lossy()
        .into_owned()
}

fn main() {
    let opts = Options::from_env();
    let smoke = opts.bool("smoke", false) || std::env::args().any(|arg| arg == "--smoke");
    let corpus = opts.string("corpus", "corpus");
    let budget = opts.usize("budget", if smoke { 20_000 } else { 100_000 });
    let nin = opts.usize("nin", PAPER_NIN);
    let nout = opts.usize("nout", PAPER_NOUT);
    let out_path = opts.string("out", if smoke { "-" } else { "BENCH_serve.json" });
    let clients = opts.usize("clients", 4).max(1);
    let rounds = opts.usize("rounds", if smoke { 2 } else { 8 }).max(1);
    let bin = opts.string("bin", &default_bin());
    if !std::path::Path::new(&bin).exists() {
        panic!(
            "ise binary not found at `{bin}` — build it first \
             (cargo build -p ise-cli, same profile as this bench) or pass bin=PATH"
        );
    }

    let mut blocks = load_corpus_path(&corpus).expect("corpus loads");
    if smoke {
        blocks.truncate(3);
    }
    let requests: Vec<String> = blocks
        .iter()
        .map(|block| {
            Json::object([
                ("op", Json::str("enumerate")),
                ("block", Json::str(block.canonical_bytes())),
                (
                    "flags",
                    Json::object([
                        ("nin", Json::uint(nin)),
                        ("nout", Json::uint(nout)),
                        ("budget", Json::uint(budget)),
                    ]),
                ),
            ])
            .render()
        })
        .collect();

    let mut server = Server::spawn(&bin);

    // Cold pass: a fresh daemon with no cache directory misses on every request.
    let mut cold: Vec<(String, f64)> = Vec::new();
    for request in &requests {
        let (response, elapsed_ms) = server.roundtrip(request);
        let doc = envelope(&response);
        assert_eq!(
            doc.get("cached").and_then(Json::as_bool),
            Some(false),
            "first pass must be cold"
        );
        cold.push((response, elapsed_ms));
    }

    // Warm pass: identical requests, every answer replayed from the response cache.
    println!("block,nodes,cuts,cold_ms,warm_ms,speedup");
    let mut rows = Vec::new();
    let mut cold_total = 0.0f64;
    let mut warm_total = 0.0f64;
    for (index, request) in requests.iter().enumerate() {
        let (response, warm_ms) = server.roundtrip(request);
        let doc = envelope(&response);
        assert_eq!(
            doc.get("cached").and_then(Json::as_bool),
            Some(true),
            "second pass must hit the cache"
        );
        let (cold_response, cold_ms) = &cold[index];
        assert_eq!(
            payload_of(cold_response),
            payload_of(&response),
            "block {}: warm payload must be byte-identical to cold",
            blocks[index].dfg.name()
        );
        let cuts = doc
            .get("result")
            .and_then(|r| r.get("aggregate"))
            .and_then(|a| a.get("total_cuts"))
            .and_then(Json::as_u64)
            .expect("enumerate result reports a cut count");
        let speedup = if warm_ms > 0.0 {
            cold_ms / warm_ms
        } else {
            0.0
        };
        cold_total += cold_ms;
        warm_total += warm_ms;
        println!(
            "{},{},{cuts},{cold_ms:.3},{warm_ms:.3},{speedup:.0}",
            blocks[index].dfg.name(),
            blocks[index].dfg.len(),
        );
        rows.push(Json::object([
            ("block", Json::str(blocks[index].dfg.name())),
            ("nodes", Json::uint(blocks[index].dfg.len())),
            ("cuts", Json::UInt(cuts)),
            (
                "key",
                doc.get("key")
                    .and_then(Json::as_str)
                    .map_or(Json::Null, Json::str),
            ),
            ("cold_ms", Json::num(*cold_ms)),
            ("warm_ms", Json::num(warm_ms)),
            ("speedup", Json::num(speedup)),
        ]));
    }

    let (stats_response, _) = server.roundtrip("{\"op\":\"stats\"}");
    let stats = envelope(&stats_response);
    let counter = |cache: &str, field: &str| {
        stats
            .get("result")
            .and_then(|r| r.get(cache))
            .and_then(|c| c.get(field))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats missing {cache}.{field}: {stats_response}"))
    };
    let response_hits = counter("responses", "hits");
    let response_misses = counter("responses", "misses");
    let hit_rate = response_hits as f64 / (response_hits + response_misses) as f64;
    server.shutdown();

    let warm_speedup = if warm_total > 0.0 {
        cold_total / warm_total
    } else {
        0.0
    };
    println!(
        "# {} blocks: cold {cold_total:.1} ms, warm {warm_total:.1} ms \
         ({warm_speedup:.0}x), response hit rate {:.2}",
        blocks.len(),
        hit_rate,
    );
    assert_eq!(
        response_hits,
        blocks.len() as u64,
        "every warm request hits the response cache"
    );
    if !smoke {
        assert!(
            warm_speedup >= 100.0,
            "warm pass must be at least 100x faster than cold (got {warm_speedup:.0}x)"
        );
    }

    // TCP throughput phase: warm a fresh concurrent daemon once, then measure
    // warm requests/second from 1 connection and from `clients` parallel
    // connections.
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let tcp = TcpServer::spawn(&bin);
    {
        let mut stream = tcp.connect();
        let mut reader = BufReader::new(stream.try_clone().expect("stream clone"));
        for request in &requests {
            writeln!(stream, "{request}").expect("warmup request written");
            let mut response = String::new();
            reader
                .read_line(&mut response)
                .expect("warmup response read");
            envelope(response.trim_end());
        }
    }
    let single_rps = warm_throughput(&tcp, &requests, 1, rounds);
    let multi_rps = warm_throughput(&tcp, &requests, clients, rounds);
    tcp.shutdown();
    let tcp_speedup = if single_rps > 0.0 {
        multi_rps / single_rps
    } else {
        0.0
    };
    println!(
        "# tcp warm throughput: 1 client {single_rps:.0} req/s, {clients} clients \
         {multi_rps:.0} req/s ({tcp_speedup:.2}x aggregate, {cpus} cpus)"
    );
    // Warm requests are lock-then-lookup, so parallel connections scale on real
    // cores; a 1-CPU container interleaves them and the ratio hovers around 1x —
    // record the numbers, skip the assertion (the artifact's `cpus` field keeps
    // the context).
    if !smoke && cpus > 1 {
        assert!(
            tcp_speedup >= 2.0,
            "{clients} warm clients must outrun one connection by >= 2x on {cpus} cpus \
             (got {tcp_speedup:.2}x)"
        );
    }

    if out_path != "-" {
        let doc = Json::object([
            ("schema", Json::str("ise-bench/serve/v2")),
            ("meta", ise_bench::bench_meta("disabled")),
            ("corpus", Json::str(corpus)),
            ("nin", Json::uint(nin)),
            ("nout", Json::uint(nout)),
            (
                "budget",
                if budget == 0 {
                    Json::Null
                } else {
                    Json::uint(budget)
                },
            ),
            ("smoke", Json::bool(smoke)),
            ("rows", Json::Array(rows)),
            (
                "aggregate",
                Json::object([
                    ("blocks", Json::uint(blocks.len())),
                    ("cold_ms_total", Json::num(cold_total)),
                    ("warm_ms_total", Json::num(warm_total)),
                    ("warm_speedup", Json::num(warm_speedup)),
                    ("response_hits", Json::UInt(response_hits)),
                    ("response_misses", Json::UInt(response_misses)),
                    ("response_hit_rate", Json::num(hit_rate)),
                    ("byte_identical", Json::bool(true)),
                ]),
            ),
            (
                "tcp",
                Json::object([
                    ("clients", Json::uint(clients)),
                    ("rounds", Json::uint(rounds)),
                    ("cpus", Json::uint(cpus)),
                    ("single_client_rps", Json::num(single_rps)),
                    ("multi_client_rps", Json::num(multi_rps)),
                    ("multi_client_speedup", Json::num(tcp_speedup)),
                ]),
            ),
        ]);
        std::fs::write(&out_path, doc.render() + "\n").expect("artifact written");
        eprintln!("wrote {out_path}");
    }
}
