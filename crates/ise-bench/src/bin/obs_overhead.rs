//! Asserts the observability layer's disabled-path cost bound (DESIGN.md §8): the
//! engine run with a wired-but-disabled recorder (`NoopRecorder`) must stay within
//! 1% of the plain `rec = None` run on an E1-style workload. This is the contract
//! that lets every layer keep its instrumentation compiled in unconditionally —
//! the hooks are a branch on a `None`/no-op, not a feature flag.
//!
//! Methodology: the same enumeration context runs `reps` times per mode and the
//! *minimum* wall time per mode is compared (min-of-N discards scheduler noise,
//! which on a loaded CI host dwarfs the effect under test). Modes alternate so
//! neither benefits from cache warm-up ordering. In full mode the bin exits
//! non-zero when the ratio exceeds the bound; `test=1` keeps the measurement and
//! the artifact but relaxes the assertion for smoke runs on noisy hosts.
//!
//! Options (key=value): `size` (default 120), `seed`, `reps` (default 5), `nin`,
//! `nout`, `bound_pct` (default 1), `test` (default 0), `out` (default
//! `BENCH_obs.json`; `out=-` disables the artifact).

use ise_bench::json::Json;
use ise_bench::{bench_meta, timed, Options, PAPER_NIN, PAPER_NOUT};
use ise_enum::{incremental_cuts_obs, Constraints, EngineOptions, EnumContext, PruningConfig};
use ise_obs::{NoopRecorder, Recorder};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};

fn main() {
    let opts = Options::from_env();
    let size = opts.usize("size", 120);
    let seed = opts.u64("seed", 42);
    let reps = opts.usize("reps", 5).max(1);
    let nin = opts.usize("nin", PAPER_NIN);
    let nout = opts.usize("nout", PAPER_NOUT);
    let bound_pct = opts.usize("bound_pct", 1);
    let smoke = opts.usize("test", 0) != 0;
    let out_path = opts.string("out", "BENCH_obs.json");

    let dfg = random_dag(&RandomDagConfig::new(size).with_memory_ratio(0.15), seed);
    let ctx = EnumContext::new(dfg);
    let constraints = Constraints::new(nin, nout).expect("non-zero I/O constraints");
    let pruning = PruningConfig::all();
    let options = EngineOptions::default();
    let noop = NoopRecorder;

    let run = |rec: Option<&dyn Recorder>| {
        let (result, elapsed) =
            timed(|| incremental_cuts_obs(&ctx, &constraints, &pruning, &options, rec));
        (result.stats.search_nodes, elapsed.as_secs_f64())
    };

    // Warm up once (page cache, allocator), then alternate modes rep by rep.
    let (baseline_nodes, _) = run(None);
    let mut plain_min = f64::INFINITY;
    let mut noop_min = f64::INFINITY;
    for _ in 0..reps {
        let (nodes, plain) = run(None);
        assert_eq!(nodes, baseline_nodes, "enumeration must be deterministic");
        let (nodes, wired) = run(Some(&noop));
        assert_eq!(
            nodes, baseline_nodes,
            "a disabled recorder must not change the search trace"
        );
        plain_min = plain_min.min(plain);
        noop_min = noop_min.min(wired);
    }

    let ratio = noop_min / plain_min.max(f64::MIN_POSITIVE);
    let bound = 1.0 + bound_pct as f64 / 100.0;
    println!(
        "size={size} nin={nin} nout={nout} search_nodes={baseline_nodes} reps={reps} \
         plain_min={plain_min:.6}s noop_min={noop_min:.6}s ratio={ratio:.4} bound={bound:.2}"
    );

    if out_path != "-" {
        let doc = Json::object([
            ("schema", Json::str("ise-bench/obs-overhead/v1")),
            ("meta", bench_meta("noop-vs-none")),
            ("size", Json::uint(size)),
            ("seed", Json::UInt(seed)),
            ("nin", Json::uint(nin)),
            ("nout", Json::uint(nout)),
            ("reps", Json::uint(reps)),
            ("search_nodes", Json::UInt(baseline_nodes as u64)),
            ("plain_min_seconds", Json::num(plain_min)),
            ("noop_min_seconds", Json::num(noop_min)),
            ("ratio", Json::num(ratio)),
            ("bound", Json::num(bound)),
            ("smoke", Json::bool(smoke)),
        ]);
        std::fs::write(&out_path, doc.render() + "\n")
            .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
        eprintln!("wrote {out_path}");
    }

    if smoke {
        // Smoke runs still catch catastrophic regressions (a recorder branch that
        // turned into real work), just with slack for noisy shared runners.
        assert!(
            ratio <= 2.0,
            "disabled-recorder smoke bound blown: ratio {ratio:.4} > 2.0"
        );
    } else {
        assert!(
            ratio <= bound,
            "disabled-recorder overhead bound blown: ratio {ratio:.4} > {bound:.2} \
             (plain {plain_min:.6}s vs wired {noop_min:.6}s)"
        );
    }
}
