//! Criterion benchmark backing the pruning ablation (E4 in DESIGN.md): the incremental
//! enumeration with all §5.3 prunings, with each one disabled in turn, and with none.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};

fn bench_pruning(c: &mut Criterion) {
    let dfg = generate_block(&MiBenchLikeConfig::new(60), 7).expect("generator output is valid");
    let ctx = EnumContext::new(dfg);
    let constraints = Constraints::new(4, 2).expect("non-zero constraints");

    let mut configurations: Vec<(String, PruningConfig)> =
        vec![("all".to_string(), PruningConfig::all())];
    for &name in PruningConfig::technique_names() {
        configurations.push((format!("no_{name}"), PruningConfig::all_except(name)));
    }
    configurations.push(("none".to_string(), PruningConfig::none()));

    let mut group = c.benchmark_group("pruning");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (name, pruning) in configurations {
        group.bench_with_input(
            BenchmarkId::from_parameter(&name),
            &pruning,
            |b, pruning| b.iter(|| incremental_cuts(&ctx, &constraints, pruning)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pruning);
criterion_main!(benches);
