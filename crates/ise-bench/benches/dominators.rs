//! Criterion benchmark backing the dominator-engine study (E5 in DESIGN.md): §5.4 of
//! the paper reports that at least 70 % of the enumeration time is spent computing
//! dominators, so the speed of the Lengauer–Tarjan implementation matters. This
//! benchmark compares it against the iterative (Cooper–Harvey–Kennedy) algorithm on
//! graphs of increasing size, plus the generalized-dominator enumeration used by the
//! basic algorithm.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_dominators::multi::enumerate_generalized_dominators;
use ise_dominators::{iterative_dominators, lengauer_tarjan, Forward};
use ise_graph::RootedDfg;
use ise_workloads::random_dag::{random_dag, RandomDagConfig};

fn bench_single_vertex(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_vertex_dominators");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4));
    for size in [100usize, 400, 1000] {
        let rooted = RootedDfg::new(random_dag(&RandomDagConfig::new(size), size as u64));
        group.bench_with_input(
            BenchmarkId::new("lengauer_tarjan", size),
            &rooted,
            |b, rooted| b.iter(|| lengauer_tarjan(&Forward(rooted))),
        );
        group.bench_with_input(BenchmarkId::new("iterative", size), &rooted, |b, rooted| {
            b.iter(|| iterative_dominators(&Forward(rooted)))
        });
    }
    group.finish();
}

fn bench_generalized(c: &mut Criterion) {
    let mut group = c.benchmark_group("generalized_dominators");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    for size in [40usize, 80] {
        let rooted = RootedDfg::new(random_dag(&RandomDagConfig::new(size), 3));
        let target = ise_graph::NodeId::from_index(rooted.original_len() - 1);
        let mut excluded = rooted.node_set();
        excluded.insert(rooted.source());
        excluded.insert(rooted.sink());
        for k in [2usize, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("k{k}"), size),
                &rooted,
                |b, rooted| {
                    b.iter(|| {
                        enumerate_generalized_dominators(&Forward(rooted), target, k, &excluded)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_single_vertex, bench_generalized);
criterion_main!(benches);
