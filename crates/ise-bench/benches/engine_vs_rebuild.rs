//! Criterion benchmark backing the engine refactor: the incremental cut-body
//! maintenance of §5.2 (`BodyStrategy::Incremental`, the default engine) against the
//! legacy rebuild-per-`CHECK-CUT` pipeline (`BodyStrategy::Rebuild`), on the scaling
//! workload's random DAGs and on a MiBench-like block. The `scaling` binary measures
//! the same pair end to end and commits the trajectory as `BENCH_scaling.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_enum::{incremental_cuts_with, BodyStrategy, Constraints, EnumContext, PruningConfig};
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};

fn contexts() -> Vec<(String, EnumContext)> {
    let mut out = Vec::new();
    for size in [50usize, 100] {
        let dfg = random_dag(&RandomDagConfig::new(size).with_memory_ratio(0.15), 42);
        out.push((format!("random_dag_{size}"), EnumContext::new(dfg)));
    }
    let dfg = generate_block(&MiBenchLikeConfig::new(80), 80).expect("generator output is valid");
    out.push(("mibench_like_80".to_string(), EnumContext::new(dfg)));
    out
}

fn bench_engine_vs_rebuild(c: &mut Criterion) {
    let constraints = Constraints::new(4, 2).expect("non-zero constraints");
    let mut group = c.benchmark_group("engine_vs_rebuild");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (name, ctx) in contexts() {
        group.bench_with_input(BenchmarkId::new("engine", &name), &ctx, |b, ctx| {
            b.iter(|| {
                incremental_cuts_with(
                    ctx,
                    &constraints,
                    &PruningConfig::all(),
                    None,
                    BodyStrategy::Incremental,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild", &name), &ctx, |b, ctx| {
            b.iter(|| {
                incremental_cuts_with(
                    ctx,
                    &constraints,
                    &PruningConfig::all(),
                    None,
                    BodyStrategy::Rebuild,
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine_vs_rebuild);
criterion_main!(benches);
