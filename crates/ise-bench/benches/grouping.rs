//! Criterion companion of the E8 `grouping` binary: the cost of canonical coding
//! and index maintenance relative to the enumeration that feeds them.
//!
//! Measurements on one mid-size random DAG: enumeration alone (the baseline),
//! canonical coding of the enumerated cuts (the grouping hot path) plain and
//! through a [`CanonMemo`] (cold: fresh memo each iteration; warm: a shared
//! pre-populated memo, the serve steady state), and the full
//! group-and-select-globally pipeline over three corpus-like copies.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use ise_canon::{
    canonicalize_cuts, canonicalize_cuts_memo, select_ises_global, CanonMemo, GroupConfig,
    PatternIndex,
};
use ise_enum::{incremental_cuts, Constraints, Cut, EnumContext, PruningConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};

fn bench_grouping(c: &mut Criterion) {
    let constraints = Constraints::new(4, 2).expect("non-zero constraints");
    let pruning = PruningConfig::all();
    let group_config = GroupConfig::default();

    let contexts: Vec<EnumContext> = (0..3)
        .map(|seed| {
            EnumContext::new(random_dag(
                &RandomDagConfig::new(48).with_memory_ratio(0.2),
                seed,
            ))
        })
        .collect();
    let cut_lists: Vec<Vec<Cut>> = contexts
        .iter()
        .map(|ctx| incremental_cuts(ctx, &constraints, &pruning).cuts)
        .collect();

    let mut group = c.benchmark_group("grouping");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("enumerate_only", |b| {
        b.iter(|| incremental_cuts(&contexts[0], &constraints, &pruning))
    });
    group.bench_function("canonicalize_cuts", |b| {
        b.iter(|| canonicalize_cuts(&contexts[0], &cut_lists[0], &group_config))
    });
    group.bench_function("canonicalize_cuts_memo_cold", |b| {
        b.iter(|| {
            let memo = CanonMemo::new();
            canonicalize_cuts_memo(&contexts[0], &cut_lists[0], &group_config, &memo)
        })
    });
    let warm = CanonMemo::new();
    canonicalize_cuts_memo(&contexts[0], &cut_lists[0], &group_config, &warm);
    group.bench_function("canonicalize_cuts_memo_warm", |b| {
        b.iter(|| canonicalize_cuts_memo(&contexts[0], &cut_lists[0], &group_config, &warm))
    });
    group.bench_function("group_and_select_global", |b| {
        b.iter(|| {
            let mut index = PatternIndex::new(group_config.clone());
            for (ctx, cuts) in contexts.iter().zip(&cut_lists) {
                index.add_block(ctx, cuts, 1.0);
            }
            let views: Vec<&[Cut]> = cut_lists.iter().map(Vec::as_slice).collect();
            select_ises_global(&index, &views, 0)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_grouping);
criterion_main!(benches);
