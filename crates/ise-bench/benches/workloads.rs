//! Criterion benchmark for the analysis substrate: workload generation, graph
//! augmentation and the reachability/forbidden-path precomputation of §5.4. These are
//! the fixed per-block costs that every enumeration run pays once.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_enum::EnumContext;
use ise_graph::{Reachability, RootedDfg};
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("precompute");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4));
    for size in [100usize, 400, 1000] {
        group.bench_with_input(
            BenchmarkId::new("generate_block", size),
            &size,
            |b, &size| {
                b.iter(|| generate_block(&MiBenchLikeConfig::new(size), 1).expect("valid block"))
            },
        );
        let dfg = generate_block(&MiBenchLikeConfig::new(size), 1).expect("valid block");
        let rooted = RootedDfg::new(dfg.clone());
        group.bench_with_input(
            BenchmarkId::new("reachability", size),
            &rooted,
            |b, rooted| b.iter(|| Reachability::compute(rooted)),
        );
        group.bench_with_input(BenchmarkId::new("enum_context", size), &dfg, |b, dfg| {
            b.iter(|| EnumContext::new(dfg.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
