//! Criterion benchmark backing the Figure 5 comparison: the polynomial enumeration
//! (incremental algorithm, all prunings) against the pruned exhaustive baseline, on
//! MiBench-like blocks of the paper's small/medium clusters and on a tree-shaped DFG.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_enum::{baseline_cuts_bounded, incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_workloads::tree::TreeDfgBuilder;

const BASELINE_BUDGET: Option<usize> = Some(2_000_000);

fn contexts() -> Vec<(String, EnumContext)> {
    let mut out = Vec::new();
    for size in [20usize, 40, 80] {
        let dfg = generate_block(&MiBenchLikeConfig::new(size), size as u64)
            .expect("generator output is valid");
        out.push((format!("mibench_like_{size}"), EnumContext::new(dfg)));
    }
    out.push((
        "tree_depth_4".to_string(),
        EnumContext::new(TreeDfgBuilder::new(4).build()),
    ));
    out
}

fn bench_enumeration(c: &mut Criterion) {
    let constraints = Constraints::new(4, 2).expect("non-zero constraints");
    let mut group = c.benchmark_group("enumeration");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (name, ctx) in contexts() {
        group.bench_with_input(BenchmarkId::new("polynomial", &name), &ctx, |b, ctx| {
            b.iter(|| incremental_cuts(ctx, &constraints, &PruningConfig::all()))
        });
        group.bench_with_input(BenchmarkId::new("baseline", &name), &ctx, |b, ctx| {
            b.iter(|| baseline_cuts_bounded(ctx, &constraints, BASELINE_BUDGET))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_enumeration);
criterion_main!(benches);
