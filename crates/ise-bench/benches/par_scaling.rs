//! Criterion companion of the E7 `par_scaling` binary: the serial incremental
//! engine against the `ise_enum::par` first-output task decomposition on one
//! mid-size block. On a multi-core host the parallel rows shrink with the worker
//! count; on a single-core host they quantify the split-and-merge overhead (which
//! must stay small — the merge is one seen-set replay).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ise_enum::par::{parallel_cuts, ParConfig};
use ise_enum::{incremental_cuts, Constraints, EnumContext, PruningConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};

fn bench_par_scaling(c: &mut Criterion) {
    let constraints = Constraints::new(4, 2).expect("non-zero constraints");
    let pruning = PruningConfig::all();
    let dfg = random_dag(&RandomDagConfig::new(64).with_memory_ratio(0.15), 42);
    let ctx = EnumContext::new(dfg);

    let mut group = c.benchmark_group("par_scaling");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    group.bench_function("serial", |b| {
        b.iter(|| incremental_cuts(&ctx, &constraints, &pruning))
    });
    for (tasks, threads) in [(8, 1), (8, 2), (8, 4)] {
        group.bench_with_input(
            BenchmarkId::new("parallel", format!("{tasks}tasks_{threads}threads")),
            &(tasks, threads),
            |b, &(tasks, threads)| {
                b.iter(|| {
                    parallel_cuts(
                        &ctx,
                        &constraints,
                        &pruning,
                        &ParConfig::new(tasks, threads),
                    )
                })
            },
        );
    }
    // Recursive splitting at a low threshold: quantifies the suspend/resume and
    // re-merge overhead of a split-heavy schedule (the results stay identical).
    group.bench_function("parallel/8tasks_2threads_split", |b| {
        let mut config = ParConfig::new(8, 2);
        config.split_threshold = Some(2_000);
        b.iter(|| parallel_cuts(&ctx, &constraints, &pruning, &config))
    });
    group.finish();
}

criterion_group!(benches, bench_par_scaling);
criterion_main!(benches);
