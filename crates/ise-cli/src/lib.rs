//! The `ise` command-line driver: corpus-scale enumeration, selection and reporting.
//!
//! This crate turns the single-graph engine of [`ise_enum`] into a batch tool over
//! serialized corpora (see [`ise_corpus`] for the `.dfg` format). Four subcommands:
//!
//! ```text
//! ise enumerate --corpus corpus/ [--threads N] [--nin 4] [--nout 2]
//!               [--budget M] [--limit K] [--out FILE|-] [--md FILE|-]
//! ise select    (same flags) [--max-instr 4] [--ports-in N] [--ports-out N] [--global]
//! ise group     (same flags) [--min-count 1] [--top 40]
//! ise report    --corpus corpus/ [--limit K] [--dot BLOCK]
//! ```
//!
//! `enumerate` runs the incremental polynomial enumeration on every block;
//! `select` additionally runs the greedy ISE selection per block (or, with
//! `--global`, the corpus-level pattern selection of [`ise_canon`]); `group`
//! recognizes recurring candidates across the corpus by canonical code (the
//! [`group`] module); `report` prints a corpus inventory (loading doubles as
//! validation) or, with `--dot`, one block as a Graphviz digraph with its
//! selected ISEs highlighted. Work is scheduled by one work-stealing pool
//! ([`batch::run_batch`]): blocks with at least `--par-threshold` vertices fan out
//! into first-output tasks (`ise_enum::par`), smaller blocks stay whole, any task
//! whose search exceeds `--split-threshold` nodes re-splits into child tasks on the
//! fly, and idle `--threads` workers steal queued items from busy peers — so a
//! single adversarial block (even one with a single skewed subtree) scales with
//! cores instead of serializing the sweep. The fan-out plan and the split points
//! are functions of the block and the flags alone (never of the thread count) and
//! the task merge is deterministic, so **every count in the JSON and markdown
//! output is identical for any thread count** — only wall times vary. Runs are budgeted per
//! block by default ([`DEFAULT_BUDGET`] search nodes, `--budget 0` to lift; fanned
//! blocks split the budget across tasks) so one adversarial block cannot stall a
//! corpus sweep, and `--dedup-mode validate-first` selects the bounded-memory
//! de-duplication fallback. Machine-readable output is JSON
//! (schemas `ise-cli/enumerate/v1` and `ise-cli/select/v1`, built on
//! [`ise_bench::json`]); `--md` adds a human-readable markdown companion. See
//! `docs/GUIDE.md` for the end-to-end walkthrough.
//!
//! # Example
//!
//! Drive the batch pipeline as a library (what the binary's `enumerate` does):
//!
//! ```
//! use ise_cli::batch::{run_batch, BatchConfig};
//! use ise_corpus::{parse_corpus, CorpusBlock};
//! use ise_enum::Constraints;
//!
//! let blocks: Vec<CorpusBlock> = parse_corpus(
//!     "dfg tiny\nnode 0 in @a\nnode 1 not\nnode 2 add\nedge 0 1\nedge 1 2\nedge 0 2\nend\n",
//! )
//! .unwrap();
//! let mut config = BatchConfig::new(Constraints::new(2, 1).unwrap());
//! config.threads = 2;
//! let outcomes = run_batch(&blocks, &config);
//! assert_eq!(outcomes.len(), 1);
//! assert!(!outcomes[0].enumeration.cuts.is_empty());
//! ```

// Deny rather than the workspace-wide forbid: the serve daemon's signal module
// (`serve::sig`) opts in with an explicit allow for its one audited libc binding.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod args;
pub mod batch;
pub mod cache;
pub mod group;
pub mod obs;
pub mod report;
pub mod serve;

pub use args::Flags;

use std::error::Error;
use std::fmt;
use std::time::Instant;

use ise_canon::{CanonMemo, GroupConfig};
use ise_corpus::{load_corpus_path, CorpusError};
use ise_enum::{Constraints, DedupMode, PruningConfig};

use batch::{
    run_batch_obs, BatchConfig, SelectionConfig, DEFAULT_PAR_THRESHOLD, DEFAULT_SPLIT_THRESHOLD,
};
use report::{batch_json, batch_markdown, corpus_markdown, RunMeta};

/// The usage text printed by `ise help` and attached to usage errors.
pub const USAGE: &str = "\
usage: ise <enumerate|select|group|report> [flags]

  ise enumerate --corpus PATH [--threads N] [--nin 4] [--nout 2]
                [--budget M] [--limit K] [--out FILE|-] [--md FILE|-]
                [--par-threshold V] [--split-threshold S]
                [--dedup-mode dedup-first|validate-first]
                [--trace-out FILE|-] [--progress]
  ise select    (same flags as enumerate)
                [--max-instr 4] [--ports-in N] [--ports-out N] [--global]
                [--no-memo]
  ise group     (same flags as enumerate)
                [--ports-in N] [--ports-out N] [--min-count 1] [--top 40|0=all]
                [--no-memo] [--memo-stats]
  ise report    --corpus PATH [--limit K]
                [--dot BLOCK [--nin 4] [--nout 2] [--budget M]
                 [--max-instr 4] [--out FILE|-]]
  ise serve     [--listen ADDR] [--cache-dir DIR] [--cache-cap 256]
                [--max-connections 64] [--compute-delay-ms 0]
                [--trace-out FILE|-]

PATH is a .dfg file or a directory of .dfg files (default: corpus).
--out/--md write JSON/markdown to FILE, or to stdout when FILE is `-`.
--budget caps the search per block in search nodes (default 1000000,
0 = unbounded); small blocks finish below it and are enumerated fully.
--threads feeds a work-stealing scheduler: blocks with at least
--par-threshold vertices (default 64; 0 = always, a huge value = never)
fan out into first-output tasks, and any task whose own search exceeds
--split-threshold nodes (default 1000000; 0 = never split) re-splits at
its next decision level into child tasks, so one skewed subtree cannot
serialize a sweep. The split points depend only on the block and the
flags, so all counts are byte-identical for any --threads value;
fanned-out blocks split their --budget evenly across the initial tasks
(budget-truncated tasks never split further).
--trace-out profiles the run as Chrome trace-event JSON (open it in
chrome://tracing or Perfetto): engine, task and merge spans nest under
their worker threads. --progress prints heartbeat lines on stderr while
the sweep runs. Both only observe — no byte of --out/--md output
changes, and all counts stay thread-count invariant with recording on.
--dedup-mode validate-first bounds the dedup arena by the valid cuts
(the memory fallback for huge blocks) at the cost of re-validating
duplicate candidates; the reported cuts are identical.
`group` recognizes structurally identical (isomorphic) candidates across
the whole corpus by canonical code and reports each pattern's occurrence
count and estimated corpus-wide saving; --min-count hides rarer patterns
from the table, --top caps the markdown table. Canonicalization runs
through a shared memo (the labeler runs once per distinct raw interface
graph, not once per cut); --no-memo disables it — the reports are
byte-identical either way — and --memo-stats adds the memo's hit/miss
counters to the JSON meta and the markdown summary.
`select --global` selects by corpus-wide benefit: one custom instruction
is credited with all of its non-overlapping occurrences. In global mode
--max-instr bounds the number of distinct instruction patterns for the
whole corpus and defaults to 0 = unlimited (select while profitable).
`report --dot BLOCK` prints the block as a Graphviz digraph with its
greedily selected ISEs highlighted.
`serve` runs a persistent daemon answering line-delimited JSON requests
({\"op\":\"enumerate|select|group|stats|shutdown\",\"block\":...,\"flags\":{...}})
on stdin/stdout or, with --listen ADDR, over TCP. Each accepted
connection gets its own thread over one shared cache, bounded by
--max-connections (default 64); concurrent cold requests for the same
key coalesce onto a single computation. The listener also answers
HTTP/1.1: POST /v1/{enumerate,group,select} with the JSON request as
body (the op comes from the path), GET /v1/stats for the stats op, and
GET /v1/metrics for a Prometheus text exposition of the daemon's
counters (requests, cache, memo, engine, pool). `serve --trace-out`
writes a Chrome trace-event profile at graceful shutdown.
Results are cached by a content hash of the canonical block bytes and
the semantic flags; --cache-cap bounds each in-memory cache (0
disables) and --cache-dir persists responses across restarts.
--compute-delay-ms is a test seam delaying every cold computation.
SIGTERM shuts the daemon down gracefully: in-flight requests finish,
then the process exits with status 0.";

/// Error surface of the `ise` binary.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// The command line is malformed; the message says how.
    Usage(String),
    /// The corpus could not be loaded or did not validate.
    Corpus(CorpusError),
    /// Writing an output file failed.
    Io {
        /// The output path that could not be written.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(message) => write!(f, "{message}"),
            CliError::Corpus(source) => write!(f, "{source}"),
            CliError::Io { path, source } => write!(f, "cannot write {path}: {source}"),
        }
    }
}

impl Error for CliError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CliError::Usage(_) => None,
            CliError::Corpus(source) => Some(source),
            CliError::Io { source, .. } => Some(source),
        }
    }
}

impl From<CorpusError> for CliError {
    fn from(source: CorpusError) -> Self {
        CliError::Corpus(source)
    }
}

/// Runs one `ise` invocation; `args` excludes the binary name.
///
/// # Errors
///
/// Returns [`CliError`] on malformed command lines, unreadable/invalid corpora, and
/// output-file write failures. The binary prints the error and exits non-zero.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage(format!("missing subcommand\n{USAGE}")));
    };
    match command.as_str() {
        "enumerate" => run_batch_command(&args[1..], false),
        "select" => run_batch_command(&args[1..], true),
        "group" => run_group_command(&args[1..]),
        "report" => run_report_command(&args[1..]),
        "serve" => serve::run_serve_command(&args[1..]),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown subcommand `{other}`\n{USAGE}"
        ))),
    }
}

/// Default per-block search budget, in search nodes (`--budget 0` lifts it).
///
/// The enumeration is polynomial but of high degree (`O(n^(Nin+Nout+1))`): the
/// committed `BENCH_scaling.json` measures ~1.2e8 search nodes (two minutes) for one
/// 208-vertex block at the paper's standard `Nin=4, Nout=2`. A batch driver pointed
/// at an arbitrary corpus must not stall on one adversarial block, so runs are
/// budgeted by default — one million search nodes keeps every committed corpus block
/// to seconds while leaving small and medium blocks exhaustively enumerated.
/// The budget is applied per block and enumeration is deterministic, so budgeted
/// counts are still identical across thread counts.
pub const DEFAULT_BUDGET: usize = 1_000_000;

const BATCH_FLAGS: &[&str] = &[
    "corpus",
    "threads",
    "nin",
    "nout",
    "budget",
    "limit",
    "out",
    "md",
    "par-threshold",
    "split-threshold",
    "dedup-mode",
    "trace-out",
];
const SELECT_FLAGS: &[&str] = &[
    "corpus",
    "threads",
    "nin",
    "nout",
    "budget",
    "limit",
    "out",
    "md",
    "par-threshold",
    "split-threshold",
    "dedup-mode",
    "trace-out",
    "max-instr",
    "ports-in",
    "ports-out",
];
const GROUP_FLAGS: &[&str] = &[
    "corpus",
    "threads",
    "nin",
    "nout",
    "budget",
    "limit",
    "out",
    "md",
    "par-threshold",
    "split-threshold",
    "dedup-mode",
    "trace-out",
    "ports-in",
    "ports-out",
    "min-count",
    "top",
];

fn parse_dedup_mode(flags: &Flags) -> Result<DedupMode, CliError> {
    match flags.get("dedup-mode") {
        None | Some("dedup-first") => Ok(DedupMode::DedupFirst),
        Some("validate-first") => Ok(DedupMode::ValidateFirst),
        Some(other) => Err(CliError::Usage(format!(
            "`--dedup-mode` must be dedup-first or validate-first, got `{other}`"
        ))),
    }
}

/// The flags shared by every batch-driven subcommand, parsed once.
struct CommonBatchArgs {
    corpus: String,
    nin: usize,
    nout: usize,
    threads: usize,
    budget: Option<usize>,
    par_threshold: usize,
    split_threshold: Option<usize>,
    dedup_mode: DedupMode,
    constraints: Constraints,
}

fn parse_common(flags: &Flags) -> Result<CommonBatchArgs, CliError> {
    let nin = flags.usize("nin", 4)?;
    let nout = flags.usize("nout", 2)?;
    Ok(CommonBatchArgs {
        corpus: flags.string("corpus", "corpus"),
        nin,
        nout,
        threads: flags.usize("threads", 1)?,
        budget: match flags.usize("budget", DEFAULT_BUDGET)? {
            0 => None,
            limit => Some(limit),
        },
        par_threshold: flags.usize("par-threshold", DEFAULT_PAR_THRESHOLD)?,
        split_threshold: match flags.usize("split-threshold", DEFAULT_SPLIT_THRESHOLD)? {
            0 => None,
            threshold => Some(threshold),
        },
        dedup_mode: parse_dedup_mode(flags)?,
        constraints: Constraints::new(nin, nout)
            .map_err(|e| CliError::Usage(format!("--nin/--nout: {e}")))?,
    })
}

impl CommonBatchArgs {
    fn batch_config(&self, select: Option<SelectionConfig>) -> BatchConfig {
        BatchConfig {
            constraints: self.constraints.clone(),
            pruning: PruningConfig::all(),
            budget: self.budget,
            threads: self.threads,
            select,
            dedup_mode: self.dedup_mode,
            par_threshold: self.par_threshold,
            split_threshold: self.split_threshold,
        }
    }

    fn meta(&self, select: bool, elapsed: std::time::Duration) -> RunMeta {
        RunMeta {
            corpus: self.corpus.clone(),
            nin: self.nin,
            nout: self.nout,
            threads: self.threads,
            budget: self.budget,
            par_threshold: self.par_threshold,
            split_threshold: self.split_threshold,
            dedup_mode: self.dedup_mode,
            select,
            elapsed,
        }
    }
}

fn run_batch_command(args: &[String], select: bool) -> Result<(), CliError> {
    let allowed = if select { SELECT_FLAGS } else { BATCH_FLAGS };
    let switches: &[&str] = if select {
        &["global", "no-memo", "progress"]
    } else {
        &["progress"]
    };
    let flags = Flags::parse_with_switches(args, allowed, switches)?;
    validate_out_targets(&flags)?;
    let common = parse_common(&flags)?;
    let global = flags.bool("global", false)?;
    let ports_in = flags.usize("ports-in", common.nin)?;
    let ports_out = flags.usize("ports-out", common.nout)?;
    let selection = if select && !global {
        Some(SelectionConfig {
            max_instructions: flags.usize("max-instr", 4)?,
            ports_in,
            ports_out,
        })
    } else {
        None
    };

    let blocks = load_blocks(&common.corpus, &flags)?;
    let config = common.batch_config(selection);
    let trace_out = flags.get("trace-out").map(str::to_string);
    let registry = obs::registry_for(trace_out.as_deref(), flags.bool("progress", false)?);
    let start = Instant::now();
    let heartbeat = obs::Heartbeat::start(registry.clone(), flags.bool("progress", false)?);
    let outcomes = run_batch_obs(&blocks, &config, recorder(&registry));
    if let Some(heartbeat) = heartbeat {
        heartbeat.stop();
    }
    let meta = common.meta(select, start.elapsed());

    if global {
        // Corpus-level selection: --max-instr bounds *distinct patterns* and
        // defaults to unlimited, because reusing one implemented instruction at
        // another occurrence costs no additional opcode.
        let group_config = GroupConfig::new(ports_in, ports_out);
        let max_patterns = flags.usize("max-instr", 0)?;
        let mut memo = (!flags.bool("no-memo", false)?).then(CanonMemo::new);
        if let (Some(memo), Some(registry)) = (memo.as_mut(), &registry) {
            memo.set_recorder(registry.as_ref());
        }
        let (json, markdown, _) = group::global_select_report(
            &blocks,
            &outcomes,
            &meta,
            &group_config,
            max_patterns,
            memo.as_ref(),
        );
        emit(&flags.string("out", "-"), &(json.render() + "\n"))?;
        if let Some(md) = flags.get("md") {
            emit(md, &markdown)?;
        }
        return write_trace_if_requested(trace_out.as_deref(), registry.as_deref());
    }
    if flags.bool("no-memo", false)? {
        return Err(CliError::Usage(
            "`--no-memo` only applies to `select --global` (per-block selection \
             does not canonicalize)"
                .to_string(),
        ));
    }

    emit(
        &flags.string("out", "-"),
        &(batch_json(&outcomes, &meta).render() + "\n"),
    )?;
    if let Some(md) = flags.get("md") {
        emit(md, &batch_markdown(&outcomes, &meta))?;
    }
    write_trace_if_requested(trace_out.as_deref(), registry.as_deref())
}

fn run_group_command(args: &[String]) -> Result<(), CliError> {
    let flags =
        Flags::parse_with_switches(args, GROUP_FLAGS, &["no-memo", "memo-stats", "progress"])?;
    validate_out_targets(&flags)?;
    let common = parse_common(&flags)?;
    let ports_in = flags.usize("ports-in", common.nin)?;
    let ports_out = flags.usize("ports-out", common.nout)?;
    let min_count = flags.usize("min-count", 1)?;
    let top = match flags.usize("top", 40)? {
        0 => usize::MAX, // 0 = unlimited, consistent with --budget / global --max-instr
        top => top,
    };
    let mut memo = (!flags.bool("no-memo", false)?).then(CanonMemo::new);
    if flags.bool("memo-stats", false)? && memo.is_none() {
        return Err(CliError::Usage(
            "`--memo-stats` needs the memo; drop `--no-memo`".to_string(),
        ));
    }

    let blocks = load_blocks(&common.corpus, &flags)?;
    let config = common.batch_config(None);
    let trace_out = flags.get("trace-out").map(str::to_string);
    let registry = obs::registry_for(trace_out.as_deref(), flags.bool("progress", false)?);
    if let (Some(memo), Some(registry)) = (memo.as_mut(), &registry) {
        memo.set_recorder(registry.as_ref());
    }
    let start = Instant::now();
    let heartbeat = obs::Heartbeat::start(registry.clone(), flags.bool("progress", false)?);
    let outcomes = run_batch_obs(&blocks, &config, recorder(&registry));
    if let Some(heartbeat) = heartbeat {
        heartbeat.stop();
    }
    let index = group::group_outcomes(
        &blocks,
        &outcomes,
        &GroupConfig::new(ports_in, ports_out),
        common.threads,
        memo.as_ref(),
    );
    let meta = common.meta(false, start.elapsed());
    let memo_stats = if flags.bool("memo-stats", false)? {
        memo.as_ref().map(|m| m.stats())
    } else {
        None
    };

    emit(
        &flags.string("out", "-"),
        &(group::group_json(&index, &outcomes, &meta, min_count, memo_stats.as_ref()).render()
            + "\n"),
    )?;
    if let Some(md) = flags.get("md") {
        emit(
            md,
            &group::group_markdown(
                &index,
                &outcomes,
                &meta,
                min_count,
                top,
                memo_stats.as_ref(),
            ),
        )?;
    }
    write_trace_if_requested(trace_out.as_deref(), registry.as_deref())
}

/// The `Option<&dyn Recorder>` view of an optional registry, for threading into
/// [`run_batch_obs`].
fn recorder(
    registry: &Option<std::sync::Arc<ise_obs::MetricsRegistry>>,
) -> Option<&dyn ise_obs::Recorder> {
    registry.as_deref().map(|r| r as &dyn ise_obs::Recorder)
}

fn write_trace_if_requested(
    trace_out: Option<&str>,
    registry: Option<&ise_obs::MetricsRegistry>,
) -> Result<(), CliError> {
    if let (Some(path), Some(registry)) = (trace_out, registry) {
        obs::write_trace(path, registry)?;
    }
    Ok(())
}

const REPORT_FLAGS: &[&str] = &[
    "corpus",
    "limit",
    "dot",
    "out",
    "nin",
    "nout",
    "budget",
    "max-instr",
    "ports-in",
    "ports-out",
];

fn run_report_command(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, REPORT_FLAGS)?;
    validate_out_targets(&flags)?;
    let corpus = flags.string("corpus", "corpus");
    if flags.get("dot").is_none() {
        // Don't silently ignore flags that only make sense with --dot (a user
        // who forgets --dot must not get an inventory on stdout and no file).
        for dot_only in [
            "out",
            "nin",
            "nout",
            "budget",
            "max-instr",
            "ports-in",
            "ports-out",
        ] {
            if flags.get(dot_only).is_some() {
                return Err(CliError::Usage(format!(
                    "`--{dot_only}` requires `--dot BLOCK`"
                )));
            }
        }
    }
    let blocks = load_blocks(&corpus, &flags)?;
    if let Some(name) = flags.get("dot") {
        return run_dot_report(&flags, &blocks, name);
    }
    print!("{}", corpus_markdown(&corpus, &blocks));
    Ok(())
}

/// The `ise report --dot <block>` escape hatch: render one block as a Graphviz
/// digraph with its greedily selected ISEs highlighted, for visual inspection of
/// grouped patterns and selected instructions.
fn run_dot_report(
    flags: &Flags,
    blocks: &[ise_corpus::CorpusBlock],
    name: &str,
) -> Result<(), CliError> {
    use ise_enum::{incremental_cuts_opts, select_ises, EngineOptions, EnumContext};
    use ise_graph::{DotOptions, LatencyModel};

    let Some(block) = blocks.iter().find(|b| b.dfg.name() == name) else {
        return Err(CliError::Usage(format!(
            "--dot: no block named `{name}` in the corpus"
        )));
    };
    let nin = flags.usize("nin", 4)?;
    let nout = flags.usize("nout", 2)?;
    let constraints =
        Constraints::new(nin, nout).map_err(|e| CliError::Usage(format!("--nin/--nout: {e}")))?;
    let budget = match flags.usize("budget", DEFAULT_BUDGET)? {
        0 => None,
        limit => Some(limit),
    };
    let ctx = EnumContext::new(block.dfg.clone());
    let options = EngineOptions {
        max_search_nodes: budget,
        ..EngineOptions::default()
    };
    let enumeration = incremental_cuts_opts(&ctx, &constraints, &PruningConfig::all(), &options);
    let selection = select_ises(
        &ctx,
        &enumeration.cuts,
        &LatencyModel::default(),
        flags.usize("ports-in", nin)?,
        flags.usize("ports-out", nout)?,
        flags.usize("max-instr", 4)?,
    );
    let mut dot = DotOptions::new();
    for (cut, _) in &selection.chosen {
        dot = dot.highlight(cut);
    }
    emit(&flags.string("out", "-"), &dot.render(&block.dfg))
}

fn load_blocks(corpus: &str, flags: &Flags) -> Result<Vec<ise_corpus::CorpusBlock>, CliError> {
    let mut blocks = load_corpus_path(corpus)?;
    if flags.get("limit").is_some() {
        let limit = flags.usize("limit", blocks.len())?;
        blocks.truncate(limit);
    }
    Ok(blocks)
}

/// Validates every output target of `flags` (`--out`, `--md`, `--trace-out`)
/// **before** the long
/// part of a run: a typo'd directory must fail in milliseconds, not after minutes
/// of enumeration whose report then has nowhere to go. `-` (stdout) always
/// validates; for files the parent directory must exist and an existing target
/// must be a writable file (not a directory, not read-only).
fn validate_out_targets(flags: &Flags) -> Result<(), CliError> {
    for key in ["out", "md", "trace-out"] {
        if let Some(target) = flags.get(key) {
            validate_out_target(target)?;
        }
    }
    Ok(())
}

fn validate_out_target(target: &str) -> Result<(), CliError> {
    if target == "-" {
        return Ok(());
    }
    let io_error = |kind, message: String| CliError::Io {
        path: target.to_string(),
        source: std::io::Error::new(kind, message),
    };
    let path = std::path::Path::new(target);
    match std::fs::metadata(path) {
        Ok(meta) if meta.is_dir() => {
            return Err(io_error(
                std::io::ErrorKind::InvalidInput,
                "is a directory, not a writable file".to_string(),
            ));
        }
        Ok(meta) if meta.permissions().readonly() => {
            return Err(io_error(
                std::io::ErrorKind::PermissionDenied,
                "exists but is read-only".to_string(),
            ));
        }
        _ => {}
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.is_dir() {
            return Err(io_error(
                std::io::ErrorKind::NotFound,
                format!("parent directory `{}` does not exist", parent.display()),
            ));
        }
    }
    Ok(())
}

fn emit(target: &str, contents: &str) -> Result<(), CliError> {
    if target == "-" {
        print!("{contents}");
        Ok(())
    } else {
        std::fs::write(target, contents).map_err(|source| CliError::Io {
            path: target.to_string(),
            source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    fn demo_corpus(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ise-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("a.dfg"),
            "dfg alpha\nnode 0 in @a\nnode 1 not\nnode 2 shl\nedge 0 1\nedge 1 2\nend\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("b.dfg"),
            "dfg beta\nnode 0 in @p\nnode 1 in @q\nnode 2 add\nnode 3 mul\n\
             edge 0 2\nedge 1 2\nedge 2 3\nedge 1 3\noutput 2\nend\n",
        )
        .unwrap();
        dir
    }

    #[test]
    fn enumerate_writes_json_and_markdown_files() {
        let dir = demo_corpus("enum");
        let out = dir.join("r.json");
        let md = dir.join("r.md");
        run(&argv(&[
            "enumerate",
            "--corpus",
            dir.to_str().unwrap(),
            "--threads",
            "2",
            "--out",
            out.to_str().unwrap(),
            "--md",
            md.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""schema":"ise-cli/enumerate/v1""#));
        assert!(json.contains(r#""name":"alpha""#) && json.contains(r#""name":"beta""#));
        let markdown = std::fs::read_to_string(&md).unwrap();
        assert!(markdown.contains("| alpha |") && markdown.contains("| beta |"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn select_and_limit_are_honoured() {
        let dir = demo_corpus("select");
        let out = dir.join("s.json");
        run(&argv(&[
            "select",
            "--corpus",
            dir.to_str().unwrap(),
            "--limit",
            "1",
            "--max-instr",
            "2",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""schema":"ise-cli/select/v1""#));
        assert!(json.contains(r#""name":"alpha""#), "{json}");
        assert!(!json.contains(r#""name":"beta""#), "limit ignored: {json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_subcommand_emits_pattern_reports_deterministically() {
        let dir = demo_corpus("group");
        let render = |threads: &str, tag: &str| {
            let out = dir.join(format!("g{tag}.json"));
            let md = dir.join(format!("g{tag}.md"));
            run(&argv(&[
                "group",
                "--corpus",
                dir.to_str().unwrap(),
                "--threads",
                threads,
                "--out",
                out.to_str().unwrap(),
                "--md",
                md.to_str().unwrap(),
            ]))
            .unwrap();
            (
                std::fs::read_to_string(&out).unwrap(),
                std::fs::read_to_string(&md).unwrap(),
            )
        };
        let (one, md) = render("1", "1");
        assert!(one.contains(r#""schema":"ise-cli/group/v1""#), "{one}");
        assert!(one.contains(r#""patterns":["#), "{one}");
        assert!(md.starts_with("# ISE pattern grouping report"));
        // Thread-count invariance, wall times aside.
        let (four, _) = render("4", "4");
        let strip = |s: &str| {
            s.split(',')
                .filter(|f| !f.contains("_seconds") && !f.contains("\"threads\""))
                .collect::<Vec<_>>()
                .join(",")
        };
        assert_eq!(strip(&one), strip(&four));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn memo_flags_are_observable_and_pure() {
        let dir = demo_corpus("memo");
        let render = |tag: &str, extra: &[&str]| {
            let out = dir.join(format!("m{tag}.json"));
            let mut args = argv(&["group", "--corpus", dir.to_str().unwrap()]);
            args.extend(argv(extra));
            args.extend(argv(&["--out", out.to_str().unwrap()]));
            run(&args).unwrap();
            std::fs::read_to_string(&out).unwrap()
        };
        let strip = |s: &str| {
            s.split(',')
                .filter(|f| !f.contains("_seconds"))
                .collect::<Vec<_>>()
                .join(",")
        };
        // Memo on (default) and off produce byte-identical reports, wall times aside.
        let on = render("on", &[]);
        let off = render("off", &["--no-memo"]);
        assert_eq!(
            strip(&on),
            strip(&off),
            "memoization must be observably pure"
        );
        assert!(!on.contains(r#""memo""#), "stats are opt-in");
        // --memo-stats surfaces the counters in the meta.
        let stats = render("stats", &["--memo-stats"]);
        assert!(stats.contains(r#""memo":{"raw_hits":"#), "{stats}");
        assert!(stats.contains(r#""labeler_runs":"#), "{stats}");
        // Conflicting and misplaced switches fail loudly.
        let err = run(&argv(&[
            "group",
            "--corpus",
            dir.to_str().unwrap(),
            "--no-memo",
            "--memo-stats",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--memo-stats"), "{err}");
        let err = run(&argv(&[
            "select",
            "--corpus",
            dir.to_str().unwrap(),
            "--no-memo",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--no-memo"), "{err}");
        // select --global accepts --no-memo and still matches the memoized run.
        let g1 = dir.join("g1.json");
        let g2 = dir.join("g2.json");
        run(&argv(&[
            "select",
            "--corpus",
            dir.to_str().unwrap(),
            "--global",
            "--out",
            g1.to_str().unwrap(),
        ]))
        .unwrap();
        run(&argv(&[
            "select",
            "--corpus",
            dir.to_str().unwrap(),
            "--global",
            "--no-memo",
            "--out",
            g2.to_str().unwrap(),
        ]))
        .unwrap();
        assert_eq!(
            strip(&std::fs::read_to_string(&g1).unwrap()),
            strip(&std::fs::read_to_string(&g2).unwrap())
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn select_global_mode_reports_corpus_wide_selection() {
        let dir = demo_corpus("global");
        let out = dir.join("gs.json");
        run(&argv(&[
            "select",
            "--corpus",
            dir.to_str().unwrap(),
            "--global",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""schema":"ise-cli/select/v1""#), "{json}");
        assert!(json.contains(r#""mode":"global""#), "{json}");
        assert!(
            json.contains(r#""max_patterns":0"#),
            "unlimited by default: {json}"
        );
        assert!(json.contains(r#""total_selected":"#), "{json}");
        // Per-block mode stays available and is tagged.
        let out2 = dir.join("ps.json");
        run(&argv(&[
            "select",
            "--corpus",
            dir.to_str().unwrap(),
            "--out",
            out2.to_str().unwrap(),
        ]))
        .unwrap();
        let json2 = std::fs::read_to_string(&out2).unwrap();
        assert!(json2.contains(r#""mode":"per-block""#), "{json2}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_dot_renders_the_block_with_highlights() {
        let dir = demo_corpus("dot");
        let out = dir.join("b.dot");
        run(&argv(&[
            "report",
            "--corpus",
            dir.to_str().unwrap(),
            "--dot",
            "beta",
            "--nin",
            "3",
            "--nout",
            "1",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let dot = std::fs::read_to_string(&out).unwrap();
        assert!(dot.starts_with("digraph \"beta\""), "{dot}");
        assert!(
            dot.contains("fillcolor=lightyellow"),
            "a selected cut is shaded: {dot}"
        );
        let err = run(&argv(&[
            "report",
            "--corpus",
            dir.to_str().unwrap(),
            "--dot",
            "nonesuch",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("no block named"), "{err}");
        // Dot-only flags without --dot must error, not be silently dropped (a
        // forgotten --dot would otherwise print the inventory and write nothing).
        let err = run(&argv(&[
            "report",
            "--corpus",
            dir.to_str().unwrap(),
            "--out",
            "inventory.md",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("requires `--dot"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn usage_errors_are_reported() {
        assert!(matches!(run(&argv(&[])), Err(CliError::Usage(_))));
        assert!(matches!(
            run(&argv(&["frobnicate"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["enumerate", "--bogus", "1"])),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run(&argv(&["enumerate", "--corpus", "/nonexistent-ise-corpus"])),
            Err(CliError::Corpus(_))
        ));
        let err = run(&argv(&["enumerate", "--corpus", "x", "--nin", "0"])).unwrap_err();
        assert!(err.to_string().contains("--nin"), "{err}");
        let err = run(&argv(&[
            "enumerate",
            "--corpus",
            "x",
            "--dedup-mode",
            "later",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("--dedup-mode"), "{err}");
    }

    #[test]
    fn output_paths_are_validated_before_the_run() {
        // The corpus path is deliberately nonexistent: getting the *output-path*
        // error proves validation ran before corpus loading (and therefore before
        // any enumeration work).
        let bad_out = "/nonexistent-ise-dir/report.json";
        for subcommand in ["enumerate", "select", "group"] {
            let err = run(&argv(&[
                subcommand,
                "--corpus",
                "/nonexistent-ise-corpus",
                "--out",
                bad_out,
            ]))
            .unwrap_err();
            assert!(
                matches!(&err, CliError::Io { path, .. } if path == bad_out),
                "{subcommand}: {err}"
            );
            assert!(err.to_string().contains("parent directory"), "{err}");
        }
        // --md is validated too, and a directory target is rejected.
        let dir = demo_corpus("outval");
        let err = run(&argv(&[
            "enumerate",
            "--corpus",
            dir.to_str().unwrap(),
            "--md",
            "/nonexistent-ise-dir/report.md",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("parent directory"), "{err}");
        let err = run(&argv(&[
            "report",
            "--corpus",
            dir.to_str().unwrap(),
            "--dot",
            "alpha",
            "--out",
            dir.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("is a directory"), "{err}");
        // Writable targets still pass (the happy paths of the other tests), and
        // stdout (`-`) always validates.
        run(&argv(&[
            "enumerate",
            "--corpus",
            dir.to_str().unwrap(),
            "--out",
            dir.join("ok.json").to_str().unwrap(),
        ]))
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dedup_mode_and_par_threshold_flags_are_accepted() {
        let dir = demo_corpus("flags");
        let out = dir.join("f.json");
        run(&argv(&[
            "enumerate",
            "--corpus",
            dir.to_str().unwrap(),
            "--dedup-mode",
            "validate-first",
            "--par-threshold",
            "1",
            "--split-threshold",
            "5",
            "--budget",
            "0",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""dedup_mode":"validate-first""#), "{json}");
        assert!(json.contains(r#""par_threshold":1"#), "{json}");
        assert!(json.contains(r#""split_threshold":5"#), "{json}");
        assert!(json.contains(r#""tasks":"#), "{json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn split_threshold_zero_disables_splitting() {
        let dir = demo_corpus("nosplit");
        let out = dir.join("f.json");
        run(&argv(&[
            "enumerate",
            "--corpus",
            dir.to_str().unwrap(),
            "--split-threshold",
            "0",
            "--out",
            out.to_str().unwrap(),
        ]))
        .unwrap();
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains(r#""split_threshold":null"#), "{json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
