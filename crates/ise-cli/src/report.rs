//! JSON and markdown rendering of batch outcomes.

use std::fmt::Write as _;
use std::time::Duration;

use ise_bench::json::Json;
use ise_corpus::CorpusBlock;
use ise_enum::DedupMode;

use crate::batch::BlockOutcome;

/// Run-level facts recorded alongside the per-block rows.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// The corpus path as given on the command line.
    pub corpus: String,
    /// The input-port constraint `Nin`.
    pub nin: usize,
    /// The output-port constraint `Nout`.
    pub nout: usize,
    /// Worker-thread count of the run.
    pub threads: usize,
    /// Per-block search budget, if any.
    pub budget: Option<usize>,
    /// Minimum block size (vertices) for intra-block fan-out.
    pub par_threshold: usize,
    /// Recursive task-split threshold in search nodes (`None` = splitting off).
    pub split_threshold: Option<usize>,
    /// De-duplication mode of the run.
    pub dedup_mode: DedupMode,
    /// Whether this was an `ise select` run. Carried explicitly so the schema and
    /// selection aggregates stay correct even for runs over zero blocks.
    pub select: bool,
    /// Wall time of the whole batch (not the sum of per-block times).
    pub elapsed: Duration,
}

/// Renders the machine-readable result of `ise enumerate` / `ise select`
/// (schema `ise-cli/enumerate/v1` / `ise-cli/select/v1`).
///
/// Everything except the wall times is deterministic in the corpus and the
/// constraints — per-block rows are in corpus order and the aggregate counts are
/// plain sums — so diffing two runs' JSON (ignoring `*_seconds`) detects any
/// behavioral drift, and aggregate counts are identical for every `--threads` value.
pub fn batch_json(outcomes: &[BlockOutcome], meta: &RunMeta) -> Json {
    let mut top = Vec::new();
    let mut aggregate = Vec::new();
    if meta.select {
        top.push(("mode", Json::str("per-block")));
        let selected: usize = outcomes
            .iter()
            .filter_map(|o| o.selection.as_ref())
            .map(|s| s.chosen.len())
            .sum();
        let saved: u64 = outcomes
            .iter()
            .filter_map(|o| o.selection.as_ref())
            .map(|s| u64::from(s.total_saved_cycles))
            .sum();
        aggregate.push(("total_selected", Json::uint(selected)));
        aggregate.push(("total_saved_cycles", Json::UInt(saved)));
    }
    batch_json_with(meta, outcomes, top, aggregate)
}

/// The shared scaffold of the `enumerate`/`select` schemas: metadata, per-block
/// rows, and the base aggregates, with extension points for mode-specific top-level
/// sections (`extra_top`, placed after the metadata) and aggregate entries
/// (`extra_aggregate`, appended after `elapsed_seconds`). `ise select --global`
/// builds on this in [`crate::group`].
pub(crate) fn batch_json_with(
    meta: &RunMeta,
    outcomes: &[BlockOutcome],
    extra_top: Vec<(&'static str, Json)>,
    extra_aggregate: Vec<(&'static str, Json)>,
) -> Json {
    let schema = if meta.select {
        "ise-cli/select/v1"
    } else {
        "ise-cli/enumerate/v1"
    };
    let rows: Vec<Json> = outcomes.iter().map(block_row).collect();

    let total_cuts: usize = outcomes.iter().map(|o| o.enumeration.cuts.len()).sum();
    let total_search: usize = outcomes
        .iter()
        .map(|o| o.enumeration.stats.search_nodes)
        .sum();
    let total_candidates: usize = outcomes
        .iter()
        .map(|o| o.enumeration.stats.candidates_checked)
        .sum();
    let mut aggregate = vec![
        ("blocks", Json::uint(outcomes.len())),
        ("total_cuts", Json::uint(total_cuts)),
        ("total_search_nodes", Json::uint(total_search)),
        ("total_candidates_checked", Json::uint(total_candidates)),
        ("elapsed_seconds", Json::num(meta.elapsed.as_secs_f64())),
    ];
    aggregate.extend(extra_aggregate);

    let mut doc = vec![
        ("schema", Json::str(schema)),
        ("corpus", Json::str(meta.corpus.clone())),
        ("nin", Json::uint(meta.nin)),
        ("nout", Json::uint(meta.nout)),
        ("threads", Json::uint(meta.threads)),
        ("budget", meta.budget.map_or(Json::Null, Json::uint)),
        ("par_threshold", Json::uint(meta.par_threshold)),
        (
            "split_threshold",
            meta.split_threshold.map_or(Json::Null, Json::uint),
        ),
        (
            "dedup_mode",
            Json::str(match meta.dedup_mode {
                DedupMode::DedupFirst => "dedup-first",
                DedupMode::ValidateFirst => "validate-first",
            }),
        ),
    ];
    doc.extend(extra_top);
    doc.push(("blocks", Json::Array(rows)));
    doc.push(("aggregate", Json::object(aggregate)));
    Json::object(doc)
}

pub(crate) fn block_row(outcome: &BlockOutcome) -> Json {
    let stats = &outcome.enumeration.stats;
    let mut row = vec![
        ("name", Json::str(outcome.name.clone())),
        ("nodes", Json::uint(outcome.nodes)),
        ("edges", Json::uint(outcome.edges)),
        ("forbidden", Json::uint(outcome.forbidden)),
        ("tasks", Json::uint(outcome.tasks)),
        ("cuts", Json::uint(outcome.enumeration.cuts.len())),
        ("search_nodes", Json::uint(stats.search_nodes)),
        ("candidates_checked", Json::uint(stats.candidates_checked)),
        ("elapsed_seconds", Json::num(outcome.elapsed.as_secs_f64())),
    ];
    if let Some(selection) = &outcome.selection {
        row.push((
            "selection",
            Json::object([
                ("chosen", Json::uint(selection.chosen.len())),
                (
                    "saved_cycles",
                    Json::uint(selection.total_saved_cycles as usize),
                ),
                (
                    "block_software_cycles",
                    Json::uint(selection.block_software_cycles as usize),
                ),
                ("block_speedup", Json::num(selection.block_speedup())),
            ]),
        ));
    }
    Json::object(row)
}

/// Renders the human-readable markdown companion of [`batch_json`].
pub fn batch_markdown(outcomes: &[BlockOutcome], meta: &RunMeta) -> String {
    let selecting = meta.select;
    let mut out = String::new();
    let title = if selecting {
        "ISE batch selection report"
    } else {
        "ISE batch enumeration report"
    };
    writeln!(out, "# {title}\n").expect("writing to a String cannot fail");
    writeln!(
        out,
        "Corpus `{}` — {} blocks, Nin={}, Nout={}, {} thread{}, {:.3}s wall time.{}\n",
        meta.corpus,
        outcomes.len(),
        meta.nin,
        meta.nout,
        meta.threads,
        if meta.threads == 1 { "" } else { "s" },
        meta.elapsed.as_secs_f64(),
        meta.budget
            .map(|b| format!(" Per-block search budget: {b} nodes."))
            .unwrap_or_default(),
    )
    .expect("writing to a String cannot fail");

    if selecting {
        out.push_str(
            "| block | nodes | forbidden | cuts | selected | saved cycles | speedup | time (s) |\n\
             |---|---:|---:|---:|---:|---:|---:|---:|\n",
        );
    } else {
        out.push_str(
            "| block | nodes | edges | forbidden | cuts | search nodes | time (s) |\n\
             |---|---:|---:|---:|---:|---:|---:|\n",
        );
    }
    for o in outcomes {
        if let Some(sel) = &o.selection {
            writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {:.2}x | {:.3} |",
                o.name,
                o.nodes,
                o.forbidden,
                o.enumeration.cuts.len(),
                sel.chosen.len(),
                sel.total_saved_cycles,
                sel.block_speedup(),
                o.elapsed.as_secs_f64(),
            )
            .expect("writing to a String cannot fail");
        } else {
            writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} | {:.3} |",
                o.name,
                o.nodes,
                o.edges,
                o.forbidden,
                o.enumeration.cuts.len(),
                o.enumeration.stats.search_nodes,
                o.elapsed.as_secs_f64(),
            )
            .expect("writing to a String cannot fail");
        }
    }

    let total_cuts: usize = outcomes.iter().map(|o| o.enumeration.cuts.len()).sum();
    let total_search: usize = outcomes
        .iter()
        .map(|o| o.enumeration.stats.search_nodes)
        .sum();
    writeln!(
        out,
        "\n**Aggregate**: {total_cuts} cuts over {} blocks ({total_search} search nodes).",
        outcomes.len(),
    )
    .expect("writing to a String cannot fail");
    if selecting {
        let selected: usize = outcomes
            .iter()
            .filter_map(|o| o.selection.as_ref())
            .map(|s| s.chosen.len())
            .sum();
        let saved: u64 = outcomes
            .iter()
            .filter_map(|o| o.selection.as_ref())
            .map(|s| u64::from(s.total_saved_cycles))
            .sum();
        writeln!(
            out,
            "**Selected**: {selected} custom instructions, {saved} cycles saved per full-corpus execution.",
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Renders the `ise report` corpus inventory: one row per block with its family,
/// structural counts, and I/O shape — corpus validation happens as a side effect of
/// loading.
pub fn corpus_markdown(corpus: &str, blocks: &[CorpusBlock]) -> String {
    let mut out = String::new();
    writeln!(out, "# Corpus report\n").expect("writing to a String cannot fail");
    writeln!(
        out,
        "Corpus `{corpus}` — {} blocks, {} vertices total.\n",
        blocks.len(),
        blocks.iter().map(|b| b.dfg.len()).sum::<usize>(),
    )
    .expect("writing to a String cannot fail");
    out.push_str(
        "| block | family | nodes | edges | live-ins | live-outs | forbidden |\n\
         |---|---|---:|---:|---:|---:|---:|\n",
    );
    for block in blocks {
        let family = block
            .meta
            .iter()
            .find(|(k, _)| k == "family")
            .map_or("-", |(_, v)| v.as_str());
        writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            block.dfg.name(),
            family,
            block.dfg.len(),
            block.dfg.edge_count(),
            block.dfg.external_inputs().len(),
            block.dfg.external_outputs().len(),
            block.dfg.forbidden().len(),
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{run_batch, BatchConfig, SelectionConfig};
    use ise_enum::Constraints;
    use ise_workloads::random_dag::{random_dag, RandomDagConfig};

    fn outcomes(select: bool) -> (Vec<BlockOutcome>, RunMeta) {
        let blocks: Vec<CorpusBlock> = (0..2)
            .map(|i| CorpusBlock {
                dfg: random_dag(&RandomDagConfig::new(25), i),
                meta: vec![("family".into(), "random-dag".into())],
            })
            .collect();
        let mut cfg = BatchConfig::new(Constraints::new(4, 2).unwrap());
        if select {
            cfg.select = Some(SelectionConfig {
                max_instructions: 2,
                ports_in: 4,
                ports_out: 2,
            });
        }
        let outcomes = run_batch(&blocks, &cfg);
        let meta = RunMeta {
            corpus: "test".into(),
            nin: 4,
            nout: 2,
            threads: 1,
            budget: None,
            par_threshold: crate::batch::DEFAULT_PAR_THRESHOLD,
            split_threshold: Some(crate::batch::DEFAULT_SPLIT_THRESHOLD),
            dedup_mode: DedupMode::DedupFirst,
            select,
            elapsed: Duration::from_millis(5),
        };
        (outcomes, meta)
    }

    #[test]
    fn enumerate_json_has_schema_rows_and_aggregate() {
        let (outcomes, meta) = outcomes(false);
        let text = batch_json(&outcomes, &meta).render();
        assert!(
            text.contains(r#""schema":"ise-cli/enumerate/v1""#),
            "{text}"
        );
        assert!(text.contains(r#""blocks":[{"name":"random-dag-25-0""#));
        assert!(text.contains(r#""aggregate":{"blocks":2,"total_cuts":"#));
        assert!(!text.contains("selection"));
    }

    #[test]
    fn select_json_adds_selection_fields() {
        let (outcomes, meta) = outcomes(true);
        let text = batch_json(&outcomes, &meta).render();
        assert!(text.contains(r#""schema":"ise-cli/select/v1""#));
        assert!(text.contains(r#""selection":{"chosen":"#));
        assert!(text.contains(r#""total_selected":"#));
    }

    #[test]
    fn select_schema_is_mode_derived_even_with_no_outcomes() {
        let meta = RunMeta {
            corpus: "empty".into(),
            nin: 4,
            nout: 2,
            threads: 1,
            budget: None,
            par_threshold: crate::batch::DEFAULT_PAR_THRESHOLD,
            split_threshold: Some(crate::batch::DEFAULT_SPLIT_THRESHOLD),
            dedup_mode: DedupMode::DedupFirst,
            select: true,
            elapsed: Duration::from_millis(1),
        };
        let text = batch_json(&[], &meta).render();
        assert!(text.contains(r#""schema":"ise-cli/select/v1""#), "{text}");
        assert!(text.contains(r#""total_selected":0"#), "{text}");
        assert!(batch_markdown(&[], &meta).starts_with("# ISE batch selection report"));
    }

    #[test]
    fn markdown_reports_render_tables() {
        let (outcomes, meta) = outcomes(false);
        let md = batch_markdown(&outcomes, &meta);
        assert!(md.starts_with("# ISE batch enumeration report"));
        assert!(md.contains("| block | nodes | edges |"));
        assert!(md.contains("**Aggregate**"));

        let (outcomes, meta) = outcomes_select();
        let md = batch_markdown(&outcomes, &meta);
        assert!(md.starts_with("# ISE batch selection report"));
        assert!(md.contains("| block | nodes | forbidden | cuts | selected |"));
        assert!(md.contains("**Selected**"));
    }

    fn outcomes_select() -> (Vec<BlockOutcome>, RunMeta) {
        outcomes(true)
    }

    #[test]
    fn corpus_markdown_lists_every_block() {
        let (outcomes, _) = outcomes(false);
        let blocks: Vec<CorpusBlock> = (0..2)
            .map(|i| CorpusBlock {
                dfg: random_dag(&RandomDagConfig::new(25), i),
                meta: vec![("family".into(), "random-dag".into())],
            })
            .collect();
        let md = corpus_markdown("corpus", &blocks);
        assert!(md.contains("# Corpus report"));
        assert!(md.contains("| random-dag-25-0 | random-dag | 33 |"));
        assert_eq!(md.matches("| random-dag-25-").count(), outcomes.len());
    }
}
