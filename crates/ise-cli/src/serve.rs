//! `ise serve`: a persistent enumeration daemon with a content-addressed cache.
//!
//! A long-running process accepting **line-delimited JSON** requests — one request
//! per line, one response line per request — over stdin/stdout or, with
//! `--listen ADDR`, over TCP. The protocol (DESIGN.md §7):
//!
//! ```text
//! {"op":"enumerate"|"select"|"group", "block": <.dfg text or corpus path>,
//!  "flags": {"nin":4, "nout":2, "budget":1000000, ...}}
//! {"op":"stats"}      -> cache hit/miss/eviction counters (never cached)
//! {"op":"shutdown"}   -> acknowledge and exit the serve loop
//! ```
//!
//! A successful evaluation answers
//! `{"ok":true,"op":...,"key":"<hex>","cached":bool,"elapsed_ms":N,"result":{...}}`;
//! failures answer `{"ok":false,"error":"..."}` and the daemon keeps serving.
//!
//! **Caching.** Every evaluated request is keyed by a stable content hash
//! ([`crate::cache::content_hash`]) over semantic inputs only: the canonical `.dfg`
//! bytes of every block ([`ise_corpus::CorpusBlock::canonical_bytes`], so
//! formatting-only variants of a block share a key), the engine flag tokens
//! ([`ise_enum::Constraints::cache_token`], [`ise_enum::PruningConfig::cache_token`],
//! budget, fan-out threshold, dedup mode) and the op-specific flags. Results are
//! held in a bounded in-memory LRU ([`crate::cache::ResponseCache`]) backed by an
//! optional `--cache-dir` directory that survives restarts. Below the response
//! cache, per-block `Enumeration`s and canonical codings are cached under their own
//! content keys, so an `enumerate` followed by a `group` over the same corpus
//! re-enumerates nothing. Beneath all three sits a shared [`ise_canon::CanonMemo`]:
//! the canonical labeler runs once per distinct raw interface graph over the
//! daemon's whole lifetime, so even coding-cache misses (new port configurations,
//! LRU evictions) reuse every previously computed code. The `stats` op reports
//! the memo's hit/miss/entry counters alongside the cache counters.
//!
//! **Determinism.** Cached payloads embed no wall times, thread counts or request
//! paths (elapsed fields are zeroed, `threads` is pinned to 1, the `corpus` field
//! is the corpus content key) — so a warm response is **byte-identical** to the
//! cold response it replays, and the volatile facts (`cached`, `elapsed_ms`) live
//! only in the envelope. CI's serve smoke strips the envelope fields and `cmp`s
//! cold vs warm bytes.
//!
//! **Shutdown.** SIGTERM and SIGINT set a flag polled by both serve loops (the
//! handler itself only stores an `AtomicBool`), so an in-flight request finishes,
//! the loop exits and the process terminates with status 0 — what CI's smoke
//! asserts after `kill -TERM`.

use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use ise_bench::json::Json;
use ise_canon::{canonicalize_cuts_memo, CanonMemo, CodedCut, GroupConfig, PatternIndex};
use ise_corpus::{load_corpus_path, parse_corpus, CorpusBlock};
use ise_enum::{select_ises, EnumContext, Enumeration, PruningConfig};
use ise_graph::LatencyModel;

use crate::batch::{run_batch, BatchConfig, BlockOutcome, SelectionConfig};
use crate::cache::{content_hash, CacheStats, LruCache, ResponseCache};
use crate::report::batch_json;
use crate::{group, parse_common, CliError, CommonBatchArgs, Flags};

/// Default bound, in entries, of each of the daemon's caches (`--cache-cap`).
pub const DEFAULT_CACHE_CAP: usize = 256;

/// Signal handling for graceful shutdown: SIGTERM/SIGINT set a flag the serve
/// loops poll. The single `unsafe` block of the workspace lives here — one audited
/// libc `signal` binding; the handler body is async-signal-safe (one atomic store).
#[cfg(unix)]
#[allow(unsafe_code)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn terminated() -> bool {
        false
    }
}

const SERVE_FLAGS: &[&str] = &["listen", "cache-dir", "cache-cap"];

/// Flags a request may carry, per op (the batch CLI's flags minus `corpus`, which
/// the `block` field replaces, and the output-file flags, which a protocol response
/// replaces).
const REQ_COMMON: &[&str] = &[
    "threads",
    "nin",
    "nout",
    "budget",
    "limit",
    "par-threshold",
    "dedup-mode",
];
const REQ_SELECT_EXTRA: &[&str] = &["max-instr", "ports-in", "ports-out"];
const REQ_GROUP_EXTRA: &[&str] = &["ports-in", "ports-out", "min-count"];

/// Runs `ise serve` until EOF, a `shutdown` request, or SIGTERM/SIGINT.
///
/// # Errors
///
/// Returns [`CliError`] on malformed serve flags, an unbindable `--listen`
/// address, or a broken stdout pipe. Request-level failures are answered in-band
/// (`{"ok":false,...}`) and never terminate the daemon.
pub fn run_serve_command(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, SERVE_FLAGS)?;
    let cap = flags.usize("cache-cap", DEFAULT_CACHE_CAP)?;
    let dir = flags.get("cache-dir").map(PathBuf::from);
    let mut state = ServerState::new(cap, dir);
    sig::install();
    match flags.get("listen") {
        Some(addr) => serve_tcp(&mut state, addr),
        None => serve_stdin(&mut state),
    }
}

/// One daemon's caches and shutdown latch. [`ServerState::handle_line`] is the
/// whole protocol — the serve loops only move lines in and out — so tests drive
/// the daemon in-process without sockets.
pub struct ServerState {
    responses: ResponseCache,
    enumerations: LruCache<(Enumeration, usize)>,
    codings: LruCache<Vec<CodedCut>>,
    /// Raw-encoding → canonical-code memo shared by every coding the daemon
    /// performs. It sits *beneath* the codings LRU: even when a coding key is
    /// evicted or a new port configuration misses the LRU, patterns already
    /// labeled in any earlier request skip the canonical labeler.
    memo: CanonMemo,
    shutdown: bool,
}

enum Reply {
    /// An evaluated (possibly cached) request: the deterministic payload plus the
    /// envelope facts.
    Evaluated {
        op: &'static str,
        key: String,
        cached: bool,
        payload: String,
    },
    /// A control response emitted verbatim (`stats`, `shutdown`).
    Bare(String),
}

impl ServerState {
    /// A fresh state whose three caches (responses, per-block enumerations,
    /// per-block codings) each hold at most `cap` entries; `cache_dir` persists
    /// response payloads across restarts.
    pub fn new(cap: usize, cache_dir: Option<PathBuf>) -> Self {
        ServerState {
            responses: ResponseCache::new(cap, cache_dir),
            enumerations: LruCache::new(cap),
            codings: LruCache::new(cap),
            memo: CanonMemo::new(),
            shutdown: false,
        }
    }

    /// Whether a `shutdown` request has been acknowledged.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Handles one protocol line and returns the response line (without the
    /// trailing newline). Never panics on malformed input — every failure becomes
    /// an `{"ok":false,...}` response.
    pub fn handle_line(&mut self, line: &str) -> String {
        let started = Instant::now();
        match self.dispatch(line) {
            Ok(Reply::Evaluated {
                op,
                key,
                cached,
                payload,
            }) => format!(
                "{{\"ok\":true,\"op\":\"{op}\",\"key\":\"{key}\",\"cached\":{cached},\
                 \"elapsed_ms\":{},\"result\":{payload}}}",
                started.elapsed().as_millis(),
            ),
            Ok(Reply::Bare(text)) => text,
            Err(error) => format!(
                "{{\"ok\":false,\"error\":{}}}",
                Json::str(error.to_string()).render()
            ),
        }
    }

    fn dispatch(&mut self, line: &str) -> Result<Reply, CliError> {
        let request =
            Json::parse(line).map_err(|e| CliError::Usage(format!("request is not JSON: {e}")))?;
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Usage("request needs a string `op` field".into()))?;
        match op {
            "enumerate" => self.evaluate("enumerate", &request),
            "select" => self.evaluate("select", &request),
            "group" => self.evaluate("group", &request),
            "stats" => Ok(Reply::Bare(self.stats_response())),
            "shutdown" => {
                self.shutdown = true;
                Ok(Reply::Bare("{\"ok\":true,\"op\":\"shutdown\"}".to_string()))
            }
            other => Err(CliError::Usage(format!(
                "unknown op `{other}` (enumerate|select|group|stats|shutdown)"
            ))),
        }
    }

    /// The shared evaluate path: resolve blocks, derive the content key, answer
    /// from the response cache or compute-and-fill.
    fn evaluate(&mut self, op: &'static str, request: &Json) -> Result<Reply, CliError> {
        let block_field = request
            .get("block")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Usage("request needs a string `block` field".into()))?;
        let (allowed, switches): (Vec<&str>, &[&str]) = match op {
            "select" => (
                [REQ_COMMON, REQ_SELECT_EXTRA].concat(),
                &["global"] as &[&str],
            ),
            "group" => ([REQ_COMMON, REQ_GROUP_EXTRA].concat(), &[]),
            _ => (REQ_COMMON.to_vec(), &[]),
        };
        let flags = flags_from_json(request.get("flags"), &allowed, switches)?;
        let common = parse_common(&flags)?;

        let mut blocks = resolve_blocks(block_field)?;
        if flags.get("limit").is_some() {
            let limit = flags.usize("limit", blocks.len())?;
            blocks.truncate(limit);
        }
        let canonical: Vec<String> = blocks.iter().map(CorpusBlock::canonical_bytes).collect();
        let engine_token = engine_token(&common);
        let op_token = op_token(op, &common, &flags)?;

        let mut parts: Vec<&str> = Vec::with_capacity(canonical.len() + 2);
        parts.extend(canonical.iter().map(String::as_str));
        parts.push(&engine_token);
        parts.push(&op_token);
        let key = content_hash(&parts);

        if let Some(payload) = self.responses.get(&key) {
            return Ok(Reply::Evaluated {
                op,
                key,
                cached: true,
                payload,
            });
        }
        let payload = self.compute(op, &blocks, &canonical, &common, &flags, &engine_token)?;
        self.responses.put(&key, &payload);
        Ok(Reply::Evaluated {
            op,
            key,
            cached: false,
            payload,
        })
    }

    fn compute(
        &mut self,
        op: &str,
        blocks: &[CorpusBlock],
        canonical: &[String],
        common: &CommonBatchArgs,
        flags: &Flags,
        engine_token: &str,
    ) -> Result<String, CliError> {
        let select = op == "select";
        let global = flags.bool("global", false)?;
        let ports_in = flags.usize("ports-in", common.nin)?;
        let ports_out = flags.usize("ports-out", common.nout)?;
        let selection = if select && !global {
            Some(SelectionConfig {
                max_instructions: flags.usize("max-instr", 4)?,
                ports_in,
                ports_out,
            })
        } else {
            None
        };
        let config = common.batch_config(selection);
        let (outcomes, enum_keys) =
            self.outcomes_with_cache(blocks, canonical, &config, engine_token);

        // The deterministic payload: no wall times, no thread counts, no request
        // paths. `corpus` names the corpus *content*, so an inline block and a file
        // holding the same block render the same bytes.
        let mut meta = common.meta(select, Duration::ZERO);
        meta.threads = 1;
        let corpus_parts: Vec<&str> = canonical.iter().map(String::as_str).collect();
        meta.corpus = format!("cache:{}", content_hash(&corpus_parts));

        let payload = match op {
            "group" => {
                let group_config = GroupConfig::new(ports_in, ports_out);
                let index = self.index_with_cache(blocks, &outcomes, &enum_keys, &group_config);
                let min_count = flags.usize("min-count", 1)?;
                // Memo stats are never embedded in the payload: they depend on
                // request history, and serve payloads must be byte-identical
                // cold vs. warm. The `stats` op reports them instead.
                group::group_json(&index, &outcomes, &meta, min_count, None).render()
            }
            "select" if global => {
                let group_config = GroupConfig::new(ports_in, ports_out);
                let index = self.index_with_cache(blocks, &outcomes, &enum_keys, &group_config);
                let max_patterns = flags.usize("max-instr", 0)?;
                let (json, _, _) = group::global_select_report_with_index(
                    &index,
                    blocks,
                    &outcomes,
                    &meta,
                    &group_config,
                    max_patterns,
                );
                json.render()
            }
            _ => batch_json(&outcomes, &meta).render(),
        };
        Ok(payload)
    }

    /// Per-block enumeration through the content-addressed cache: cached blocks
    /// are reconstructed, missed blocks run through the real batch scheduler (the
    /// per-block result of [`run_batch`] is a function of the block and the config
    /// alone, so a partial batch reproduces the full batch's rows exactly).
    fn outcomes_with_cache(
        &mut self,
        blocks: &[CorpusBlock],
        canonical: &[String],
        config: &BatchConfig,
        engine_token: &str,
    ) -> (Vec<BlockOutcome>, Vec<String>) {
        let keys: Vec<String> = canonical
            .iter()
            .map(|bytes| content_hash(&[bytes, engine_token]))
            .collect();
        let mut slots: Vec<Option<BlockOutcome>> = Vec::new();
        slots.resize_with(blocks.len(), || None);
        let mut missed: Vec<usize> = Vec::new();
        for (i, block) in blocks.iter().enumerate() {
            if let Some((enumeration, tasks)) = self.enumerations.get(&keys[i]).cloned() {
                slots[i] = Some(rebuild_outcome(i, block, enumeration, tasks, config));
            } else {
                missed.push(i);
            }
        }
        if !missed.is_empty() {
            let misses: Vec<CorpusBlock> = missed.iter().map(|&i| blocks[i].clone()).collect();
            let fresh = run_batch(&misses, config);
            for (&i, mut outcome) in missed.iter().zip(fresh) {
                self.enumerations
                    .put(&keys[i], (outcome.enumeration.clone(), outcome.tasks));
                outcome.index = i;
                outcome.elapsed = Duration::ZERO;
                slots[i] = Some(outcome);
            }
        }
        let outcomes = slots
            .into_iter()
            .map(|slot| slot.expect("every block is either cached or freshly run"))
            .collect();
        (outcomes, keys)
    }

    /// Builds the pattern index over the outcomes through the per-block coding
    /// cache, merging strictly in corpus order (the [`PatternIndex`] determinism
    /// contract).
    fn index_with_cache(
        &mut self,
        blocks: &[CorpusBlock],
        outcomes: &[BlockOutcome],
        enum_keys: &[String],
        config: &GroupConfig,
    ) -> PatternIndex {
        let mut index = PatternIndex::new(config.clone());
        for (i, outcome) in outcomes.iter().enumerate() {
            let ports = format!(
                "code:ports-in={};ports-out={}",
                config.ports_in, config.ports_out
            );
            let key = content_hash(&[&enum_keys[i], &ports]);
            let coded = match self.codings.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    let ctx = EnumContext::new(blocks[i].dfg.clone());
                    let coded =
                        canonicalize_cuts_memo(&ctx, &outcome.enumeration.cuts, config, &self.memo);
                    self.codings.put(&key, coded.clone());
                    coded
                }
            };
            index.add_coded_block(coded, blocks[i].weight());
        }
        index
    }

    fn stats_response(&self) -> String {
        let cache = |stats: CacheStats, len: usize, cap: usize| {
            Json::object([
                ("hits", Json::UInt(stats.hits)),
                ("misses", Json::UInt(stats.misses)),
                ("disk_hits", Json::UInt(stats.disk_hits)),
                ("puts", Json::UInt(stats.puts)),
                ("evictions", Json::UInt(stats.evictions)),
                ("entries", Json::uint(len)),
                ("cap", Json::uint(cap)),
            ])
        };
        let result = Json::object([
            (
                "responses",
                cache(
                    self.responses.stats(),
                    self.responses.len(),
                    self.responses.cap(),
                ),
            ),
            (
                "enumerations",
                cache(
                    self.enumerations.stats(),
                    self.enumerations.len(),
                    self.enumerations.cap(),
                ),
            ),
            (
                "codings",
                cache(self.codings.stats(), self.codings.len(), self.codings.cap()),
            ),
            ("memo", group::memo_stats_json(&self.memo.stats())),
        ]);
        format!(
            "{{\"ok\":true,\"op\":\"stats\",\"result\":{}}}",
            result.render()
        )
    }
}

/// A cached block outcome, reconstructed from the block's structural facts plus
/// the cached enumeration; the selection (when requested) is recomputed — it is a
/// cheap deterministic function of the cuts.
fn rebuild_outcome(
    index: usize,
    block: &CorpusBlock,
    enumeration: Enumeration,
    tasks: usize,
    config: &BatchConfig,
) -> BlockOutcome {
    let selection = config.select.as_ref().map(|sel| {
        let ctx = EnumContext::new(block.dfg.clone());
        select_ises(
            &ctx,
            &enumeration.cuts,
            &LatencyModel::default(),
            sel.ports_in,
            sel.ports_out,
            sel.max_instructions,
        )
    });
    BlockOutcome {
        index,
        name: block.dfg.name().to_string(),
        nodes: block.dfg.len(),
        edges: block.dfg.edge_count(),
        forbidden: block.dfg.forbidden().len(),
        tasks,
        enumeration,
        selection,
        elapsed: Duration::ZERO,
    }
}

/// The engine facts every evaluated op keys on: constraints, prunings, budget,
/// fan-out threshold and dedup mode. Thread counts are deliberately absent — they
/// never change a result byte.
fn engine_token(common: &CommonBatchArgs) -> String {
    format!(
        "{};{};budget={};par-threshold={};dedup={}",
        common.constraints.cache_token(),
        PruningConfig::all().cache_token(),
        common
            .budget
            .map_or_else(|| "none".to_string(), |b| b.to_string()),
        common.par_threshold,
        common.dedup_mode.as_str(),
    )
}

/// The op-specific key facts, with the per-op flag defaults resolved so that an
/// explicit `--max-instr 4` and the default key identically.
fn op_token(op: &str, common: &CommonBatchArgs, flags: &Flags) -> Result<String, CliError> {
    let ports_in = flags.usize("ports-in", common.nin)?;
    let ports_out = flags.usize("ports-out", common.nout)?;
    Ok(match op {
        "select" => {
            let global = flags.bool("global", false)?;
            let max_instr = flags.usize("max-instr", if global { 0 } else { 4 })?;
            format!(
                "select:global={global};max-instr={max_instr};ports-in={ports_in};ports-out={ports_out}"
            )
        }
        "group" => format!(
            "group:ports-in={ports_in};ports-out={ports_out};min-count={}",
            flags.usize("min-count", 1)?
        ),
        _ => "enumerate".to_string(),
    })
}

/// Converts a request's `flags` object into the CLI flag parser's argv form, so
/// the daemon accepts exactly the batch subcommands' flags with exactly their
/// validation. JSON booleans map to switches (`"global":true`) or `true`/`false`
/// values; numbers must be non-negative integers.
fn flags_from_json(
    flags: Option<&Json>,
    allowed: &[&str],
    switches: &[&str],
) -> Result<Flags, CliError> {
    let mut argv: Vec<String> = Vec::new();
    if let Some(object) = flags {
        let Json::Object(pairs) = object else {
            return Err(CliError::Usage("`flags` must be a JSON object".into()));
        };
        for (key, value) in pairs {
            match value {
                Json::Bool(true) if switches.contains(&key.as_str()) => {
                    argv.push(format!("--{key}"));
                }
                Json::Bool(false) if switches.contains(&key.as_str()) => {}
                Json::Str(text) => {
                    argv.push(format!("--{key}"));
                    argv.push(text.clone());
                }
                Json::UInt(number) => {
                    argv.push(format!("--{key}"));
                    argv.push(number.to_string());
                }
                Json::Bool(flag) => {
                    argv.push(format!("--{key}"));
                    argv.push(flag.to_string());
                }
                _ => {
                    return Err(CliError::Usage(format!(
                        "flag `{key}` must be a string, integer or boolean"
                    )));
                }
            }
        }
    }
    Flags::parse_with_switches(&argv, allowed, switches)
}

/// Resolves the request's `block` field: inline `.dfg` text (anything containing a
/// newline or starting like a block) is parsed directly, anything else is a
/// filesystem path loaded like the batch subcommands' `--corpus`.
fn resolve_blocks(block: &str) -> Result<Vec<CorpusBlock>, CliError> {
    let trimmed = block.trim_start();
    if block.contains('\n') || trimmed.starts_with("dfg ") || trimmed.starts_with('#') {
        parse_corpus(block).map_err(|e| CliError::Usage(format!("inline block: {e}")))
    } else {
        load_corpus_path(block).map_err(CliError::from)
    }
}

/// The stdin/stdout serve loop: a reader thread feeds a channel so the main loop
/// can poll the shutdown flag every 100ms even while no request arrives. EOF on
/// stdin ends the loop (the channel disconnects).
fn serve_stdin(state: &mut ServerState) -> Result<(), CliError> {
    let (sender, receiver) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if sender.send(line).is_err() {
                break;
            }
        }
    });
    let stdout = io::stdout();
    loop {
        if sig::terminated() {
            return Ok(());
        }
        match receiver.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = state.handle_line(&line);
                let mut out = stdout.lock();
                writeln!(out, "{response}")
                    .and_then(|()| out.flush())
                    .map_err(|source| CliError::Io {
                        path: "<stdout>".to_string(),
                        source,
                    })?;
                if state.shutdown_requested() {
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// The TCP serve loop: a non-blocking accept loop (so SIGTERM is noticed within
/// ~50ms even while idle) serving one connection at a time — the daemon is a
/// per-corpus cache, not a concurrent job server. The bound address is announced
/// on stdout so callers binding port 0 learn the port.
fn serve_tcp(state: &mut ServerState, addr: &str) -> Result<(), CliError> {
    let listener = TcpListener::bind(addr).map_err(|source| CliError::Io {
        path: addr.to_string(),
        source,
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|source| CliError::Io {
            path: addr.to_string(),
            source,
        })?;
    if let Ok(local) = listener.local_addr() {
        println!("listening on {local}");
        let _ = io::stdout().flush();
    }
    loop {
        if sig::terminated() || state.shutdown_requested() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _)) => {
                // Connection-level I/O errors drop the connection, not the daemon.
                let _ = serve_connection(state, stream);
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Serves one TCP connection line by line. Reads poll with a 100ms timeout so a
/// SIGTERM during an idle connection still shuts the daemon down promptly; a
/// partial line survives the poll (it stays in `line` across timeouts).
fn serve_connection(state: &mut ServerState, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    loop {
        if sig::terminated() {
            return Ok(());
        }
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()),
            Ok(_) => {
                if !line.trim().is_empty() {
                    let response = state.handle_line(line.trim_end());
                    writeln!(stream, "{response}")?;
                    stream.flush()?;
                    if state.shutdown_requested() {
                        return Ok(());
                    }
                }
                line.clear();
            }
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut => {}
            Err(error) => return Err(error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const INLINE: &str = "dfg mac\nnode 0 in @a\nnode 1 in @x\nnode 2 in @acc\n\
                          node 3 mul\nnode 4 add\nedge 0 3\nedge 1 3\nedge 3 4\nedge 2 4\n\
                          output 4\nend\n";

    fn request(op: &str, block: &str, flags: &str) -> String {
        let doc = Json::object([("op", Json::str(op)), ("block", Json::str(block))]);
        let mut text = doc.render();
        if !flags.is_empty() {
            text.truncate(text.len() - 1);
            text.push_str(&format!(",\"flags\":{flags}}}"));
        }
        text
    }

    fn result_of(response: &str) -> Json {
        let doc = Json::parse(response).expect("response is JSON");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        doc.get("result").expect("result present").clone()
    }

    #[test]
    fn enumerate_cold_then_warm_is_byte_identical() {
        let mut state = ServerState::new(8, None);
        let req = request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#);
        let cold = state.handle_line(&req);
        let warm = state.handle_line(&req);
        let parse = |text: &str| Json::parse(text).unwrap();
        assert_eq!(parse(&cold).get("cached"), Some(&Json::Bool(false)));
        assert_eq!(parse(&warm).get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            result_of(&cold).render(),
            result_of(&warm).render(),
            "cold and warm payloads must be byte-identical"
        );
        assert_eq!(
            parse(&cold).get("key"),
            parse(&warm).get("key"),
            "same request, same content key"
        );
    }

    #[test]
    fn formatting_only_variants_share_a_key_and_flag_changes_miss() {
        let mut state = ServerState::new(8, None);
        let noisy = format!(
            "# comment\n\n{}",
            INLINE.replace("node 3 mul", "node 3   mul")
        );
        let key_of = |state: &mut ServerState, block: &str, flags: &str| {
            let response = state.handle_line(&request("enumerate", block, flags));
            Json::parse(&response)
                .unwrap()
                .get("key")
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        };
        let base = key_of(&mut state, INLINE, r#"{"nin":3,"nout":1}"#);
        assert_eq!(
            base,
            key_of(&mut state, &noisy, r#"{"nin":3,"nout":1}"#),
            "comments and spacing must not change the cache key"
        );
        assert_ne!(base, key_of(&mut state, INLINE, r#"{"nin":2,"nout":1}"#));
        assert_ne!(
            base,
            key_of(&mut state, INLINE, r#"{"nin":3,"nout":1,"budget":7}"#)
        );
    }

    #[test]
    fn threads_flag_does_not_change_key_or_payload() {
        let mut state = ServerState::new(8, None);
        let one = state.handle_line(&request(
            "enumerate",
            INLINE,
            r#"{"nin":3,"nout":1,"threads":1}"#,
        ));
        let four = state.handle_line(&request(
            "enumerate",
            INLINE,
            r#"{"nin":3,"nout":1,"threads":4}"#,
        ));
        let doc = Json::parse(&four).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)), "{four}");
        assert_eq!(result_of(&one).render(), result_of(&four).render());
    }

    #[test]
    fn group_and_global_select_reuse_the_enumeration_cache() {
        let mut state = ServerState::new(8, None);
        let _ = state.handle_line(&request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#));
        let enum_misses = state.enumerations.stats().misses;
        let grouped = state.handle_line(&request("group", INLINE, r#"{"nin":3,"nout":1}"#));
        assert!(
            result_of(&grouped).render().contains("ise-cli/group/v1"),
            "{grouped}"
        );
        let selected = state.handle_line(&request(
            "select",
            INLINE,
            r#"{"nin":3,"nout":1,"global":true}"#,
        ));
        let selected_payload = result_of(&selected).render();
        assert!(
            selected_payload.contains("\"mode\":\"global\""),
            "{selected}"
        );
        assert_eq!(
            state.enumerations.stats().misses,
            enum_misses,
            "group and global select must hit the per-block enumeration cache"
        );
        assert!(
            state.codings.stats().hits > 0,
            "global select reuses group's coding"
        );
    }

    #[test]
    fn canon_memo_persists_across_requests_and_port_configs() {
        let mut state = ServerState::new(8, None);
        let _ = state.handle_line(&request("group", INLINE, r#"{"nin":3,"nout":1}"#));
        let cold = state.memo.stats();
        assert!(cold.labeler_runs > 0, "cold group must run the labeler");
        // A different port configuration misses the codings LRU (the key embeds
        // the ports) but every pattern was already labeled: the memo answers all
        // of them and the labeler never runs again.
        let coding_misses = state.codings.stats().misses;
        let _ = state.handle_line(&request(
            "group",
            INLINE,
            r#"{"nin":3,"nout":1,"ports-in":2}"#,
        ));
        assert!(
            state.codings.stats().misses > coding_misses,
            "changed ports must miss the codings cache"
        );
        let warm = state.memo.stats();
        assert_eq!(
            warm.labeler_runs, cold.labeler_runs,
            "memo must answer every re-coded cut"
        );
        assert!(warm.raw_hits > cold.raw_hits);
        let stats = state.handle_line(r#"{"op":"stats"}"#);
        let memo = Json::parse(&stats)
            .unwrap()
            .get("result")
            .and_then(|r| r.get("memo"))
            .cloned()
            .expect("stats op reports the memo");
        assert_eq!(
            memo.get("labeler_runs").and_then(Json::as_u64),
            Some(warm.labeler_runs)
        );
        assert_eq!(
            memo.get("entries").and_then(Json::as_u64),
            Some(warm.entries)
        );
    }

    #[test]
    fn per_block_select_matches_modes_and_caches() {
        let mut state = ServerState::new(8, None);
        let response = state.handle_line(&request(
            "select",
            INLINE,
            r#"{"nin":3,"nout":1,"max-instr":2}"#,
        ));
        let payload = result_of(&response).render();
        assert!(payload.contains("\"mode\":\"per-block\""), "{response}");
        assert!(payload.contains("\"selection\":{"), "{response}");
        assert!(payload.contains("\"threads\":1"), "pinned: {response}");
        assert!(payload.contains("\"corpus\":\"cache:"), "{response}");
    }

    #[test]
    fn malformed_requests_answer_in_band_errors() {
        let mut state = ServerState::new(8, None);
        for (line, expect) in [
            ("not json", "not JSON"),
            ("{}", "`op` field"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"enumerate"}"#, "`block` field"),
            (
                r#"{"op":"enumerate","block":"dfg x\nend\n","flags":{"nin":0}}"#,
                "--nin",
            ),
            (
                r#"{"op":"enumerate","block":"dfg x\nend\n","flags":{"bogus":1}}"#,
                "unknown flag",
            ),
            (
                r#"{"op":"enumerate","block":"dfg x\nnode 0 bad-op\nend\n"}"#,
                "inline block",
            ),
            (r#"{"op":"enumerate","block":"/nonexistent-ise-path"}"#, ""),
        ] {
            let response = state.handle_line(line);
            let doc = Json::parse(&response).expect("error responses are JSON");
            assert_eq!(
                doc.get("ok"),
                Some(&Json::Bool(false)),
                "{line} -> {response}"
            );
            let message = doc.get("error").and_then(Json::as_str).unwrap();
            assert!(message.contains(expect), "{line} -> {message}");
        }
    }

    #[test]
    fn stats_and_shutdown_ops_work() {
        let mut state = ServerState::new(8, None);
        let _ = state.handle_line(&request("enumerate", INLINE, ""));
        let _ = state.handle_line(&request("enumerate", INLINE, ""));
        let stats = state.handle_line(r#"{"op":"stats"}"#);
        let doc = Json::parse(&stats).unwrap();
        let responses = doc.get("result").and_then(|r| r.get("responses")).unwrap();
        assert_eq!(responses.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(responses.get("misses").and_then(Json::as_u64), Some(1));
        assert!(!state.shutdown_requested());
        let bye = state.handle_line(r#"{"op":"shutdown"}"#);
        assert!(bye.contains("\"ok\":true"), "{bye}");
        assert!(state.shutdown_requested());
    }

    #[test]
    fn disk_cache_survives_a_restart_byte_identically() {
        let dir = std::env::temp_dir().join(format!("ise-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#);
        let cold = {
            let mut state = ServerState::new(8, Some(dir.clone()));
            state.handle_line(&req)
        };
        let mut restarted = ServerState::new(8, Some(dir.clone()));
        let warm = restarted.handle_line(&req);
        assert_eq!(
            Json::parse(&warm).unwrap().get("cached"),
            Some(&Json::Bool(true)),
            "{warm}"
        );
        assert_eq!(result_of(&cold).render(), result_of(&warm).render());
        assert_eq!(restarted.responses.stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
