//! `ise serve`: a concurrent enumeration daemon with a content-addressed cache.
//!
//! A long-running process accepting **line-delimited JSON** requests — one request
//! per line, one response line per request — over stdin/stdout or, with
//! `--listen ADDR`, over TCP, where each accepted connection is served by its own
//! thread over one shared [`ServerState`]. The same listener also speaks a minimal
//! **HTTP/1.1** dialect (the first line of a connection is sniffed: an HTTP method
//! selects the HTTP shim, anything else is treated as a JSON request line), so
//! load balancers and plain `curl` can talk to the daemon. The protocol
//! (DESIGN.md §7):
//!
//! ```text
//! {"op":"enumerate"|"select"|"group", "block": <.dfg text or corpus path>,
//!  "flags": {"nin":4, "nout":2, "budget":1000000, ...}}
//! {"op":"stats"}      -> cache/server counters (never cached)
//! {"op":"shutdown"}   -> acknowledge and exit the serve loop
//!
//! POST /v1/enumerate|/v1/group|/v1/select   (JSON request body, minus "op")
//! GET  /v1/stats                            -> the stats op
//! GET  /v1/metrics                          -> Prometheus text exposition
//! ```
//!
//! A successful evaluation answers
//! `{"ok":true,"op":...,"key":"<hex>","cached":bool,"elapsed_ms":N,"result":{...}}`;
//! failures answer `{"ok":false,"error":"..."}` and the daemon keeps serving. The
//! HTTP shim returns the identical envelope as the response body (status 200 for
//! `ok:true`, 400 otherwise).
//!
//! **Caching.** Every evaluated request is keyed by a stable content hash
//! ([`crate::cache::content_hash`]) over semantic inputs only: the canonical `.dfg`
//! bytes of every block ([`ise_corpus::CorpusBlock::canonical_bytes`], so
//! formatting-only variants of a block share a key), the engine flag tokens
//! ([`ise_enum::Constraints::cache_token`], [`ise_enum::PruningConfig::cache_token`],
//! budget, fan-out threshold, dedup mode) and the op-specific flags. Results are
//! held in a bounded in-memory LRU ([`crate::cache::ResponseCache`]) backed by an
//! optional `--cache-dir` directory that survives restarts. Below the response
//! cache, per-block `Enumeration`s and canonical codings are cached under their own
//! content keys, so an `enumerate` followed by a `group` over the same corpus
//! re-enumerates nothing. Beneath all three sits a shared [`ise_canon::CanonMemo`]:
//! the canonical labeler runs once per distinct raw interface graph over the
//! daemon's whole lifetime. The `stats` op reports every cache's counters plus the
//! daemon-level `server` counters (requests, hits, misses, errors, coalesced,
//! connection errors).
//!
//! **Concurrency.** `--listen` accepts up to `--max-connections` concurrent
//! connections, each on its own thread; all threads share one [`ServerState`]
//! whose caches live behind mutexes and whose counters are atomics. Concurrent
//! *cold* requests for the same content key are **coalesced**
//! ([`crate::cache::SingleFlight`]): one thread computes, every concurrent
//! duplicate blocks on the published outcome — N clients asking for the same cold
//! block trigger exactly one `run_batch`. Coalesced responses report
//! `"cached":true` (they were answered without computing) and are counted by the
//! `coalesced` counter in the `stats` op. Byte-identity is preserved under any
//! interleaving because every payload is a pure function of its content key — the
//! concurrency stress harness (`tests/serve_concurrent.rs` and
//! `crates/ise-cli/tests/serve_daemon.rs`) replays mixed workloads from many
//! clients and compares stripped responses against a serial replay.
//!
//! **Determinism.** Cached payloads embed no wall times, thread counts or request
//! paths (elapsed fields are zeroed, `threads` is pinned to 1, the `corpus` field
//! is the corpus content key) — so a warm response is **byte-identical** to the
//! cold response it replays, and the volatile facts (`cached`, `elapsed_ms`) live
//! only in the envelope. CI's serve smoke strips the envelope fields and `cmp`s
//! cold vs warm bytes — and the concurrent replay against a serial one.
//!
//! **Shutdown.** SIGTERM and SIGINT set a flag polled by every serve loop (the
//! handler itself only stores an `AtomicBool`), as does the `shutdown` op. The
//! accept loop stops accepting, every connection thread finishes its in-flight
//! request (responses are written before the flag is re-checked), the threads are
//! joined and the process exits with status 0 — what CI's smoke asserts after
//! `kill -TERM` under load.

use std::io::{self, BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use ise_bench::json::Json;
use ise_canon::{
    canonicalize_cuts_memo, CanonMemo, CodedCut, GroupConfig, MemoStats, PatternIndex,
};
use ise_corpus::{load_corpus_path, parse_corpus, CorpusBlock};
use ise_enum::{select_ises, EnumContext, Enumeration, PruningConfig};
use ise_graph::LatencyModel;
use ise_obs::{Counter, MetricsRegistry, Recorder};

use crate::batch::{run_batch_obs, BatchConfig, BlockOutcome, SelectionConfig};
use crate::cache::{
    content_hash, CacheStats, Flight, FlightStats, LruCache, ResponseCache, SingleFlight,
};
use crate::report::batch_json;
use crate::{group, parse_common, CliError, CommonBatchArgs, Flags};

/// Default bound, in entries, of each of the daemon's caches (`--cache-cap`).
pub const DEFAULT_CACHE_CAP: usize = 256;

/// Default bound on concurrent TCP connections (`--max-connections`). Beyond it
/// the accept loop simply stops accepting until a connection finishes — pending
/// clients queue in the kernel backlog instead of being refused.
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;

/// Signal handling for graceful shutdown: SIGTERM/SIGINT set a flag the serve
/// loops poll. The single `unsafe` block of the workspace lives here — one audited
/// libc `signal` binding; the handler body is async-signal-safe (one atomic store).
#[cfg(unix)]
#[allow(unsafe_code)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }

    pub fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn terminated() -> bool {
        false
    }
}

const SERVE_FLAGS: &[&str] = &[
    "listen",
    "cache-dir",
    "cache-cap",
    "max-connections",
    "compute-delay-ms",
    "trace-out",
];

/// Flags a request may carry, per op (the batch CLI's flags minus `corpus`, which
/// the `block` field replaces, and the output-file flags, which a protocol response
/// replaces).
const REQ_COMMON: &[&str] = &[
    "threads",
    "nin",
    "nout",
    "budget",
    "limit",
    "par-threshold",
    "split-threshold",
    "dedup-mode",
];
const REQ_SELECT_EXTRA: &[&str] = &["max-instr", "ports-in", "ports-out"];
const REQ_GROUP_EXTRA: &[&str] = &["ports-in", "ports-out", "min-count"];

/// Runs `ise serve` until EOF, a `shutdown` request, or SIGTERM/SIGINT.
///
/// # Errors
///
/// Returns [`CliError`] on malformed serve flags, an unbindable `--listen`
/// address, or a broken stdout pipe. Request-level failures are answered in-band
/// (`{"ok":false,...}`) and never terminate the daemon.
pub fn run_serve_command(args: &[String]) -> Result<(), CliError> {
    let flags = Flags::parse(args, SERVE_FLAGS)?;
    let cap = flags.usize("cache-cap", DEFAULT_CACHE_CAP)?;
    let dir = flags.get("cache-dir").map(PathBuf::from);
    let max_connections = flags.usize("max-connections", DEFAULT_MAX_CONNECTIONS)?;
    if max_connections == 0 {
        return Err(CliError::Usage(
            "`--max-connections` must be at least 1".to_string(),
        ));
    }
    let mut state = ServerState::new(cap, dir);
    // Test seam (used by the concurrency harness and CI's shutdown-under-load
    // smoke): an artificial delay on every cold computation, so "mid-request"
    // and "concurrent cold duplicates" are reproducible states.
    let delay_ms = flags.usize("compute-delay-ms", 0)?;
    if delay_ms > 0 {
        state = state.with_compute_delay(Duration::from_millis(delay_ms as u64));
    }
    let trace_out = flags.get("trace-out").map(str::to_string);
    if let Some(path) = &trace_out {
        crate::validate_out_target(path)?;
    }
    sig::install();
    let state = Arc::new(state);
    match flags.get("listen") {
        Some(addr) => serve_tcp(&state, addr, max_connections)?,
        None => serve_stdin(&state)?,
    }
    // The trace is written once, at graceful shutdown, so it covers the daemon's
    // whole lifetime (the buffer is bounded; long-lived daemons keep the oldest
    // spans and count the dropped tail).
    if let Some(path) = &trace_out {
        crate::obs::write_trace(path, state.registry())?;
    }
    Ok(())
}

/// Daemon-level request accounting, reported as the `server` object of the
/// `stats` op. Every protocol line that evaluates (or fails) counts exactly one
/// of `hits` (answered without computing: response cache or a coalesced flight),
/// `misses` (this request ran the computation) or `errors` (`ok:false`), so
/// `hits + misses + errors == requests` is an invariant the concurrency stress
/// harness asserts. `stats` and `shutdown` lines are control traffic and are
/// deliberately not counted.
///
/// Each counter is a handle into the daemon's [`MetricsRegistry`]
/// (`ise_serve_<name>_total`), so the same cells feed the `stats` op and the
/// `GET /v1/metrics` exposition.
#[derive(Debug)]
struct ServeCounters {
    requests: Counter,
    hits: Counter,
    misses: Counter,
    errors: Counter,
    connection_errors: Counter,
}

impl ServeCounters {
    fn new(rec: &dyn Recorder) -> Self {
        ServeCounters {
            requests: rec.counter("ise_serve_requests_total"),
            hits: rec.counter("ise_serve_hits_total"),
            misses: rec.counter("ise_serve_misses_total"),
            errors: rec.counter("ise_serve_errors_total"),
            connection_errors: rec.counter("ise_serve_connection_errors_total"),
        }
    }
}

/// One daemon's shared state: caches, single-flight table, counters and the
/// shutdown latch. Every cache lives behind its own mutex and every counter is
/// atomic, so [`ServerState::handle_line`] takes `&self` and one state serves
/// any number of connection threads ([`ServerState`] is `Sync`). The serve loops
/// only move lines in and out — so tests drive the daemon in-process without
/// sockets, or concurrently over `Arc<ServerState>`.
pub struct ServerState {
    responses: Mutex<ResponseCache>,
    enumerations: Mutex<LruCache<(Enumeration, usize)>>,
    codings: Mutex<LruCache<Vec<CodedCut>>>,
    /// Raw-encoding → canonical-code memo shared by every coding the daemon
    /// performs. It sits *beneath* the codings LRU: even when a coding key is
    /// evicted or a new port configuration misses the LRU, patterns already
    /// labeled in any earlier request skip the canonical labeler. Already
    /// lock-striped internally — no outer mutex needed.
    memo: CanonMemo,
    /// Coalesces concurrent cold computations of one response key: N clients
    /// asking for the same cold block trigger exactly one `run_batch`.
    flights: SingleFlight,
    counters: ServeCounters,
    /// The daemon's metrics registry: request/engine/pool counters, request
    /// spans and cache/memo gauges, rendered by `GET /v1/metrics` (Prometheus)
    /// and `--trace-out` (Chrome trace events). Pure observability — nothing in
    /// it ever reaches a cached payload.
    registry: Arc<MetricsRegistry>,
    /// Test seam: sleep this long at the start of every cold computation.
    compute_delay: Option<Duration>,
    shutdown: AtomicBool,
}

// `ServerState` is shared by reference across connection threads; keep the
// compiler proving that is sound as fields evolve.
const _: fn() = || {
    fn assert_sync<T: Send + Sync>() {}
    assert_sync::<ServerState>();
};

enum Reply {
    /// An evaluated (possibly cached or coalesced) request: the deterministic
    /// payload plus the envelope facts.
    Evaluated {
        op: &'static str,
        key: String,
        cached: bool,
        payload: String,
    },
    /// A control response emitted verbatim (`stats`, `shutdown`).
    Bare(String),
}

impl ServerState {
    /// A fresh state whose three caches (responses, per-block enumerations,
    /// per-block codings) each hold at most `cap` entries; `cache_dir` persists
    /// response payloads across restarts.
    pub fn new(cap: usize, cache_dir: Option<PathBuf>) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let mut memo = CanonMemo::new();
        memo.set_recorder(registry.as_ref());
        ServerState {
            responses: Mutex::new(ResponseCache::new(cap, cache_dir)),
            enumerations: Mutex::new(LruCache::new(cap)),
            codings: Mutex::new(LruCache::new(cap)),
            memo,
            flights: SingleFlight::default(),
            counters: ServeCounters::new(registry.as_ref()),
            registry,
            compute_delay: None,
            shutdown: AtomicBool::new(false),
        }
    }

    /// The daemon's metrics registry (for `--trace-out` and test observability).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Test seam: sleep `delay` at the start of every cold computation, so
    /// concurrency tests can hold a request "mid-flight" deterministically
    /// (the same role `CanonMemo::with_fingerprinter` plays for the memo).
    /// Exposed to the binary as the `--compute-delay-ms` flag.
    #[must_use]
    pub fn with_compute_delay(mut self, delay: Duration) -> Self {
        self.compute_delay = Some(delay);
        self
    }

    /// Whether a `shutdown` request has been acknowledged.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// The response cache's counters (test observability).
    pub fn response_stats(&self) -> CacheStats {
        self.responses.lock().expect("response cache lock").stats()
    }

    /// The per-block enumeration cache's counters (test observability).
    pub fn enumeration_stats(&self) -> CacheStats {
        self.enumerations
            .lock()
            .expect("enumeration cache lock")
            .stats()
    }

    /// The per-block coding cache's counters (test observability).
    pub fn coding_stats(&self) -> CacheStats {
        self.codings.lock().expect("coding cache lock").stats()
    }

    /// The canonicalization memo's counters (test observability).
    pub fn memo_stats(&self) -> MemoStats {
        self.memo.stats()
    }

    /// The single-flight counters (test observability).
    pub fn flight_stats(&self) -> FlightStats {
        self.flights.stats()
    }

    /// Handles one protocol line and returns the response line (without the
    /// trailing newline). Never panics on malformed input — every failure becomes
    /// an `{"ok":false,...}` response. Safe to call from many threads at once;
    /// concurrent duplicate cold requests coalesce onto one computation.
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        let span = self.registry.span_begin("serve", "request");
        let outcome = self.dispatch(line);
        self.registry.span_end(span);
        match outcome {
            Ok(Reply::Evaluated {
                op,
                key,
                cached,
                payload,
            }) => {
                self.counters.requests.incr();
                if cached {
                    self.counters.hits.incr();
                } else {
                    self.counters.misses.incr();
                }
                // `elapsed_us` exists because warm hits routinely finish in well
                // under a millisecond, where `elapsed_ms` truncates to 0; both
                // are envelope-only facts (never cached, stripped as volatile).
                let elapsed = started.elapsed();
                format!(
                    "{{\"ok\":true,\"op\":\"{op}\",\"key\":\"{key}\",\"cached\":{cached},\
                     \"elapsed_ms\":{},\"elapsed_us\":{},\"result\":{payload}}}",
                    elapsed.as_millis(),
                    elapsed.as_micros(),
                )
            }
            Ok(Reply::Bare(text)) => text,
            Err(error) => self.error_response(&error.to_string()),
        }
    }

    /// Renders (and counts) one in-band error response. Also used by the HTTP
    /// shim for routing failures, so the `server` counters stay consistent for
    /// any transport.
    fn error_response(&self, message: &str) -> String {
        self.counters.requests.incr();
        self.counters.errors.incr();
        format!("{{\"ok\":false,\"error\":{}}}", Json::str(message).render())
    }

    /// Logs a connection-level I/O failure and bumps the `connection_errors`
    /// counter — a dropped connection must be observable, never silent.
    fn note_connection_error(&self, peer: &str, error: &io::Error) {
        self.counters.connection_errors.incr();
        eprintln!("ise serve: connection {peer}: {error}");
    }

    fn dispatch(&self, line: &str) -> Result<Reply, CliError> {
        let request =
            Json::parse(line).map_err(|e| CliError::Usage(format!("request is not JSON: {e}")))?;
        let op = request
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Usage("request needs a string `op` field".into()))?;
        match op {
            "enumerate" => self.evaluate("enumerate", &request),
            "select" => self.evaluate("select", &request),
            "group" => self.evaluate("group", &request),
            "stats" => Ok(Reply::Bare(self.stats_response())),
            "shutdown" => {
                self.shutdown.store(true, Ordering::SeqCst);
                Ok(Reply::Bare("{\"ok\":true,\"op\":\"shutdown\"}".to_string()))
            }
            other => Err(CliError::Usage(format!(
                "unknown op `{other}` (enumerate|select|group|stats|shutdown)"
            ))),
        }
    }

    /// The shared evaluate path: resolve blocks, derive the content key, answer
    /// from the response cache, a coalesced flight, or compute-and-fill.
    fn evaluate(&self, op: &'static str, request: &Json) -> Result<Reply, CliError> {
        let block_field = request
            .get("block")
            .and_then(Json::as_str)
            .ok_or_else(|| CliError::Usage("request needs a string `block` field".into()))?;
        let (allowed, switches): (Vec<&str>, &[&str]) = match op {
            "select" => (
                [REQ_COMMON, REQ_SELECT_EXTRA].concat(),
                &["global"] as &[&str],
            ),
            "group" => ([REQ_COMMON, REQ_GROUP_EXTRA].concat(), &[]),
            _ => (REQ_COMMON.to_vec(), &[]),
        };
        let flags = flags_from_json(request.get("flags"), &allowed, switches)?;
        let common = parse_common(&flags)?;

        let mut blocks = resolve_blocks(block_field)?;
        if flags.get("limit").is_some() {
            let limit = flags.usize("limit", blocks.len())?;
            blocks.truncate(limit);
        }
        let canonical: Vec<String> = blocks.iter().map(CorpusBlock::canonical_bytes).collect();
        let engine_token = engine_token(&common);
        let op_token = op_token(op, &common, &flags)?;

        let mut parts: Vec<&str> = Vec::with_capacity(canonical.len() + 2);
        parts.extend(canonical.iter().map(String::as_str));
        parts.push(&engine_token);
        parts.push(&op_token);
        let key = content_hash(&parts);

        if let Some(payload) = self
            .responses
            .lock()
            .expect("response cache lock")
            .get(&key)
        {
            return Ok(Reply::Evaluated {
                op,
                key,
                cached: true,
                payload,
            });
        }
        match self.flights.join(&key) {
            // Another thread computed this key while we waited: its published
            // payload is byte-identical to what we would compute, so answer it
            // as a cache hit — the computation never ran for this request.
            Flight::Coalesced(Ok(payload)) => Ok(Reply::Evaluated {
                op,
                key,
                cached: true,
                payload,
            }),
            Flight::Coalesced(Err(message)) => Err(CliError::Usage(message)),
            Flight::Leader(lead) => {
                // Between our cache miss and winning the flight, a previous
                // leader may have finished: re-check (without re-counting — the
                // miss above already counted this request) before computing.
                if let Some(payload) = self
                    .responses
                    .lock()
                    .expect("response cache lock")
                    .peek(&key)
                {
                    lead.publish(Ok(payload.clone()));
                    return Ok(Reply::Evaluated {
                        op,
                        key,
                        cached: true,
                        payload,
                    });
                }
                let payload =
                    match self.compute(op, &blocks, &canonical, &common, &flags, &engine_token) {
                        Ok(payload) => payload,
                        Err(error) => {
                            lead.publish(Err(error.to_string()));
                            return Err(error);
                        }
                    };
                // Fill the cache *before* publishing, so a request arriving as
                // the flight retires finds the payload where it looks first.
                self.responses
                    .lock()
                    .expect("response cache lock")
                    .put(&key, &payload);
                lead.publish(Ok(payload.clone()));
                Ok(Reply::Evaluated {
                    op,
                    key,
                    cached: false,
                    payload,
                })
            }
        }
    }

    fn compute(
        &self,
        op: &str,
        blocks: &[CorpusBlock],
        canonical: &[String],
        common: &CommonBatchArgs,
        flags: &Flags,
        engine_token: &str,
    ) -> Result<String, CliError> {
        if let Some(delay) = self.compute_delay {
            std::thread::sleep(delay);
        }
        let select = op == "select";
        let global = flags.bool("global", false)?;
        let ports_in = flags.usize("ports-in", common.nin)?;
        let ports_out = flags.usize("ports-out", common.nout)?;
        let selection = if select && !global {
            Some(SelectionConfig {
                max_instructions: flags.usize("max-instr", 4)?,
                ports_in,
                ports_out,
            })
        } else {
            None
        };
        let config = common.batch_config(selection);
        let (outcomes, enum_keys) =
            self.outcomes_with_cache(blocks, canonical, &config, engine_token);

        // The deterministic payload: no wall times, no thread counts, no request
        // paths. `corpus` names the corpus *content*, so an inline block and a file
        // holding the same block render the same bytes.
        let mut meta = common.meta(select, Duration::ZERO);
        meta.threads = 1;
        let corpus_parts: Vec<&str> = canonical.iter().map(String::as_str).collect();
        meta.corpus = format!("cache:{}", content_hash(&corpus_parts));

        let payload = match op {
            "group" => {
                let group_config = GroupConfig::new(ports_in, ports_out);
                let index = self.index_with_cache(blocks, &outcomes, &enum_keys, &group_config);
                let min_count = flags.usize("min-count", 1)?;
                // Memo stats are never embedded in the payload: they depend on
                // request history, and serve payloads must be byte-identical
                // cold vs. warm. The `stats` op reports them instead.
                group::group_json(&index, &outcomes, &meta, min_count, None).render()
            }
            "select" if global => {
                let group_config = GroupConfig::new(ports_in, ports_out);
                let index = self.index_with_cache(blocks, &outcomes, &enum_keys, &group_config);
                let max_patterns = flags.usize("max-instr", 0)?;
                let (json, _, _) = group::global_select_report_with_index(
                    &index,
                    blocks,
                    &outcomes,
                    &meta,
                    &group_config,
                    max_patterns,
                );
                json.render()
            }
            _ => batch_json(&outcomes, &meta).render(),
        };
        Ok(payload)
    }

    /// Per-block enumeration through the content-addressed cache: cached blocks
    /// are reconstructed, missed blocks run through the real batch scheduler with
    /// the daemon's registry observing (the per-block result of [`run_batch_obs`]
    /// is a function of the block and the config alone — never of the recorder —
    /// so a partial batch reproduces the full batch's rows exactly). The
    /// cache lock is held per lookup/insert, never across `run_batch` — two
    /// threads may race to compute the same block, in which case both compute the
    /// identical value and the second insert overwrites with the same bytes
    /// (response-level single-flight makes this race rare in practice).
    fn outcomes_with_cache(
        &self,
        blocks: &[CorpusBlock],
        canonical: &[String],
        config: &BatchConfig,
        engine_token: &str,
    ) -> (Vec<BlockOutcome>, Vec<String>) {
        let keys: Vec<String> = canonical
            .iter()
            .map(|bytes| content_hash(&[bytes, engine_token]))
            .collect();
        let mut slots: Vec<Option<BlockOutcome>> = Vec::new();
        slots.resize_with(blocks.len(), || None);
        let mut missed: Vec<usize> = Vec::new();
        for (i, block) in blocks.iter().enumerate() {
            let cached = self
                .enumerations
                .lock()
                .expect("enumeration cache lock")
                .get(&keys[i])
                .cloned();
            if let Some((enumeration, tasks)) = cached {
                slots[i] = Some(rebuild_outcome(i, block, enumeration, tasks, config));
            } else {
                missed.push(i);
            }
        }
        if !missed.is_empty() {
            let misses: Vec<CorpusBlock> = missed.iter().map(|&i| blocks[i].clone()).collect();
            let fresh = run_batch_obs(&misses, config, Some(self.registry.as_ref()));
            for (&i, mut outcome) in missed.iter().zip(fresh) {
                self.enumerations
                    .lock()
                    .expect("enumeration cache lock")
                    .put(&keys[i], (outcome.enumeration.clone(), outcome.tasks));
                outcome.index = i;
                outcome.elapsed = Duration::ZERO;
                slots[i] = Some(outcome);
            }
        }
        let outcomes = slots
            .into_iter()
            .map(|slot| slot.expect("every block is either cached or freshly run"))
            .collect();
        (outcomes, keys)
    }

    /// Builds the pattern index over the outcomes through the per-block coding
    /// cache, merging strictly in corpus order (the [`PatternIndex`] determinism
    /// contract). Like the enumeration cache, the coding cache lock is never held
    /// across the coding itself.
    fn index_with_cache(
        &self,
        blocks: &[CorpusBlock],
        outcomes: &[BlockOutcome],
        enum_keys: &[String],
        config: &GroupConfig,
    ) -> PatternIndex {
        let mut index = PatternIndex::new(config.clone());
        for (i, outcome) in outcomes.iter().enumerate() {
            let ports = format!(
                "code:ports-in={};ports-out={}",
                config.ports_in, config.ports_out
            );
            let key = content_hash(&[&enum_keys[i], &ports]);
            let cached = self
                .codings
                .lock()
                .expect("coding cache lock")
                .get(&key)
                .cloned();
            let coded = match cached {
                Some(hit) => hit,
                None => {
                    let ctx = EnumContext::new(blocks[i].dfg.clone());
                    let coded =
                        canonicalize_cuts_memo(&ctx, &outcome.enumeration.cuts, config, &self.memo);
                    self.codings
                        .lock()
                        .expect("coding cache lock")
                        .put(&key, coded.clone());
                    coded
                }
            };
            index.add_coded_block(coded, blocks[i].weight());
        }
        index
    }

    fn stats_response(&self) -> String {
        let cache = |stats: CacheStats, len: usize, cap: usize| {
            Json::object([
                ("hits", Json::UInt(stats.hits)),
                ("misses", Json::UInt(stats.misses)),
                ("disk_hits", Json::UInt(stats.disk_hits)),
                ("puts", Json::UInt(stats.puts)),
                ("evictions", Json::UInt(stats.evictions)),
                ("entries", Json::uint(len)),
                ("cap", Json::uint(cap)),
            ])
        };
        let (response_stats, response_len, response_cap) = {
            let responses = self.responses.lock().expect("response cache lock");
            (responses.stats(), responses.len(), responses.cap())
        };
        let (enum_stats, enum_len, enum_cap) = {
            let enumerations = self.enumerations.lock().expect("enumeration cache lock");
            (enumerations.stats(), enumerations.len(), enumerations.cap())
        };
        let (coding_stats, coding_len, coding_cap) = {
            let codings = self.codings.lock().expect("coding cache lock");
            (codings.stats(), codings.len(), codings.cap())
        };
        let flights = self.flights.stats();
        self.publish_gauges();
        let obs = Json::object(
            self.registry
                .snapshot()
                .into_iter()
                .map(|(key, value)| (key, Json::UInt(value))),
        );
        let result = Json::object([
            (
                "server",
                Json::object([
                    ("requests", Json::UInt(self.counters.requests.get())),
                    ("hits", Json::UInt(self.counters.hits.get())),
                    ("misses", Json::UInt(self.counters.misses.get())),
                    ("errors", Json::UInt(self.counters.errors.get())),
                    ("coalesced", Json::UInt(flights.coalesced)),
                    ("flights_led", Json::UInt(flights.leaders)),
                    (
                        "connection_errors",
                        Json::UInt(self.counters.connection_errors.get()),
                    ),
                ]),
            ),
            (
                "responses",
                cache(response_stats, response_len, response_cap),
            ),
            ("enumerations", cache(enum_stats, enum_len, enum_cap)),
            ("codings", cache(coding_stats, coding_len, coding_cap)),
            ("memo", group::memo_stats_json(&self.memo.stats())),
            // The registry's flat counter/gauge snapshot — the same series
            // `GET /v1/metrics` exposes, here for JSON-protocol clients. Volatile
            // by nature (it accumulates across requests): CI strips it alongside
            // `cached`/`elapsed_*` before byte comparisons.
            ("obs", obs),
        ]);
        format!(
            "{{\"ok\":true,\"op\":\"stats\",\"result\":{}}}",
            result.render()
        )
    }

    /// Pushes the mutex-guarded cache/memo/flight snapshots into the registry as
    /// gauges, so a scrape (or the `stats` op) sees current values next to the
    /// always-live atomic counters.
    fn publish_gauges(&self) {
        let rec: &dyn Recorder = self.registry.as_ref();
        self.response_stats().publish(rec, "responses");
        self.enumeration_stats().publish(rec, "enumerations");
        self.coding_stats().publish(rec, "codings");
        self.memo_stats().publish(rec);
        self.flight_stats().publish(rec);
    }

    /// The `GET /v1/metrics` body: the registry rendered as Prometheus text
    /// exposition (version 0.0.4), covering the server counters, engine and pool
    /// counters/histograms, and the cache/memo/flight gauges published at scrape
    /// time.
    fn metrics_response(&self) -> String {
        self.publish_gauges();
        self.registry.render_prometheus()
    }
}

/// A cached block outcome, reconstructed from the block's structural facts plus
/// the cached enumeration; the selection (when requested) is recomputed — it is a
/// cheap deterministic function of the cuts.
fn rebuild_outcome(
    index: usize,
    block: &CorpusBlock,
    enumeration: Enumeration,
    tasks: usize,
    config: &BatchConfig,
) -> BlockOutcome {
    let selection = config.select.as_ref().map(|sel| {
        let ctx = EnumContext::new(block.dfg.clone());
        select_ises(
            &ctx,
            &enumeration.cuts,
            &LatencyModel::default(),
            sel.ports_in,
            sel.ports_out,
            sel.max_instructions,
        )
    });
    BlockOutcome {
        index,
        name: block.dfg.name().to_string(),
        nodes: block.dfg.len(),
        edges: block.dfg.edge_count(),
        forbidden: block.dfg.forbidden().len(),
        tasks,
        enumeration,
        selection,
        elapsed: Duration::ZERO,
    }
}

/// The engine facts every evaluated op keys on: constraints, prunings, budget,
/// fan-out and split thresholds and dedup mode. Thread counts are deliberately
/// absent — they never change a result byte. The split threshold is included
/// because budgeted runs re-budget split-off tasks, so it can change counts there
/// (deterministically).
fn engine_token(common: &CommonBatchArgs) -> String {
    format!(
        "{};{};budget={};par-threshold={};split-threshold={};dedup={}",
        common.constraints.cache_token(),
        PruningConfig::all().cache_token(),
        common
            .budget
            .map_or_else(|| "none".to_string(), |b| b.to_string()),
        common.par_threshold,
        common
            .split_threshold
            .map_or_else(|| "none".to_string(), |t| t.to_string()),
        common.dedup_mode.as_str(),
    )
}

/// The op-specific key facts, with the per-op flag defaults resolved so that an
/// explicit `--max-instr 4` and the default key identically.
fn op_token(op: &str, common: &CommonBatchArgs, flags: &Flags) -> Result<String, CliError> {
    let ports_in = flags.usize("ports-in", common.nin)?;
    let ports_out = flags.usize("ports-out", common.nout)?;
    Ok(match op {
        "select" => {
            let global = flags.bool("global", false)?;
            let max_instr = flags.usize("max-instr", if global { 0 } else { 4 })?;
            format!(
                "select:global={global};max-instr={max_instr};ports-in={ports_in};ports-out={ports_out}"
            )
        }
        "group" => format!(
            "group:ports-in={ports_in};ports-out={ports_out};min-count={}",
            flags.usize("min-count", 1)?
        ),
        _ => "enumerate".to_string(),
    })
}

/// Converts a request's `flags` object into the CLI flag parser's argv form, so
/// the daemon accepts exactly the batch subcommands' flags with exactly their
/// validation. JSON booleans map to switches (`"global":true`) or `true`/`false`
/// values; numbers must be non-negative integers.
fn flags_from_json(
    flags: Option<&Json>,
    allowed: &[&str],
    switches: &[&str],
) -> Result<Flags, CliError> {
    let mut argv: Vec<String> = Vec::new();
    if let Some(object) = flags {
        let Json::Object(pairs) = object else {
            return Err(CliError::Usage("`flags` must be a JSON object".into()));
        };
        for (key, value) in pairs {
            match value {
                Json::Bool(true) if switches.contains(&key.as_str()) => {
                    argv.push(format!("--{key}"));
                }
                Json::Bool(false) if switches.contains(&key.as_str()) => {}
                Json::Str(text) => {
                    argv.push(format!("--{key}"));
                    argv.push(text.clone());
                }
                Json::UInt(number) => {
                    argv.push(format!("--{key}"));
                    argv.push(number.to_string());
                }
                Json::Bool(flag) => {
                    argv.push(format!("--{key}"));
                    argv.push(flag.to_string());
                }
                _ => {
                    return Err(CliError::Usage(format!(
                        "flag `{key}` must be a string, integer or boolean"
                    )));
                }
            }
        }
    }
    Flags::parse_with_switches(&argv, allowed, switches)
}

/// Resolves the request's `block` field: inline `.dfg` text (anything containing a
/// newline or starting like a block) is parsed directly, anything else is a
/// filesystem path loaded like the batch subcommands' `--corpus`.
fn resolve_blocks(block: &str) -> Result<Vec<CorpusBlock>, CliError> {
    let trimmed = block.trim_start();
    if block.contains('\n') || trimmed.starts_with("dfg ") || trimmed.starts_with('#') {
        parse_corpus(block).map_err(|e| CliError::Usage(format!("inline block: {e}")))
    } else {
        load_corpus_path(block).map_err(CliError::from)
    }
}

/// The stdin/stdout serve loop: a reader thread feeds a channel so the main loop
/// can poll the shutdown flag every 100ms even while no request arrives. EOF on
/// stdin ends the loop (the channel disconnects).
fn serve_stdin(state: &ServerState) -> Result<(), CliError> {
    let (sender, receiver) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if sender.send(line).is_err() {
                break;
            }
        }
    });
    let stdout = io::stdout();
    loop {
        if sig::terminated() {
            return Ok(());
        }
        match receiver.recv_timeout(Duration::from_millis(100)) {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = state.handle_line(&line);
                let mut out = stdout.lock();
                writeln!(out, "{response}")
                    .and_then(|()| out.flush())
                    .map_err(|source| CliError::Io {
                        path: "<stdout>".to_string(),
                        source,
                    })?;
                if state.shutdown_requested() {
                    return Ok(());
                }
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {}
            Err(mpsc::RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

/// The TCP serve loop: a non-blocking accept loop (so SIGTERM is noticed within
/// ~50ms even while idle) handing each accepted connection to its own thread
/// over the shared state, up to `max_connections` at once — beyond the bound the
/// loop pauses accepting and pending clients wait in the kernel backlog. On
/// SIGTERM or a `shutdown` op the loop stops accepting and **drains**: every
/// connection thread finishes its in-flight request (its response is written
/// before the thread re-checks the flag) and is joined before the daemon exits 0.
/// The bound address is announced on stdout so callers binding port 0 learn the
/// port.
fn serve_tcp(state: &Arc<ServerState>, addr: &str, max_connections: usize) -> Result<(), CliError> {
    let listener = TcpListener::bind(addr).map_err(|source| CliError::Io {
        path: addr.to_string(),
        source,
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|source| CliError::Io {
            path: addr.to_string(),
            source,
        })?;
    if let Ok(local) = listener.local_addr() {
        println!("listening on {local}");
        let _ = io::stdout().flush();
    }
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !(sig::terminated() || state.shutdown_requested()) {
        workers.retain(|worker| !worker.is_finished());
        if workers.len() >= max_connections {
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        match listener.accept() {
            Ok((stream, peer)) => {
                let state = Arc::clone(state);
                workers.push(std::thread::spawn(move || {
                    let peer = peer.to_string();
                    if let Err(error) = serve_connection(&state, stream) {
                        state.note_connection_error(&peer, &error);
                    }
                }));
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    // Graceful drain: connection threads notice the flag at their next poll and
    // return once their in-flight response is written.
    for worker in workers {
        let _ = worker.join();
    }
    Ok(())
}

/// Serves one TCP connection, sniffing the transport from its first line: an
/// HTTP method selects the HTTP/1.1 shim, anything else (in practice a `{`) is
/// line-delimited JSON. Reads poll with a 100ms timeout so a SIGTERM during an
/// idle connection still shuts the daemon down promptly.
fn serve_connection(state: &ServerState, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(100)))?;
    // Each response is one small write the client latency-chains on; Nagle
    // would hold it for the previous segment's (possibly delayed) ACK.
    let _ = stream.set_nodelay(true);
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut first = String::new();
    if read_line_polled(state, &mut reader, &mut first)? == 0 {
        return Ok(());
    }
    if is_http_request_line(&first) {
        serve_http(state, &mut stream, &mut reader, first)
    } else {
        serve_json(state, &mut stream, &mut reader, first)
    }
}

/// Whether a connection's first line looks like an HTTP request line.
fn is_http_request_line(line: &str) -> bool {
    ["POST ", "GET ", "HEAD ", "PUT ", "DELETE ", "OPTIONS "]
        .iter()
        .any(|method| line.starts_with(method))
}

/// Reads one line, polling through read timeouts so shutdown flags are honoured
/// while blocked on a quiet peer. Returns `Ok(0)` on a clean end (EOF between
/// lines, or shutdown while idle); a peer that disconnects **mid-line** is an
/// error — the caller surfaces it as a connection error rather than silently
/// dropping the partial request.
fn read_line_polled(
    state: &ServerState,
    reader: &mut impl BufRead,
    line: &mut String,
) -> io::Result<usize> {
    loop {
        match reader.read_line(line) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(0);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("connection closed mid-line after {} bytes", line.len()),
                ));
            }
            Ok(_) => {
                if line.ends_with('\n') {
                    return Ok(line.len());
                }
                // EOF with a partial line: the next read returns Ok(0) with a
                // non-empty buffer and reports the mid-line disconnect above.
            }
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut =>
            {
                if sig::terminated() || state.shutdown_requested() {
                    return Ok(0);
                }
            }
            Err(error) => return Err(error),
        }
    }
}

/// Reads exactly `buf.len()` bytes, polling through read timeouts like
/// [`read_line_polled`]. An EOF before the buffer fills is a mid-request
/// disconnect and reported as an error.
fn read_exact_polled(
    state: &ServerState,
    reader: &mut impl BufRead,
    buf: &mut [u8],
) -> io::Result<()> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!(
                        "connection closed mid-body after {filled} of {} bytes",
                        buf.len()
                    ),
                ));
            }
            Ok(read) => filled += read,
            Err(error)
                if error.kind() == io::ErrorKind::WouldBlock
                    || error.kind() == io::ErrorKind::TimedOut =>
            {
                if sig::terminated() || state.shutdown_requested() {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "shutdown while reading a request body",
                    ));
                }
            }
            Err(error) => return Err(error),
        }
    }
    Ok(())
}

/// The line-delimited JSON loop: one request per line, one response line per
/// request. `line` already holds the connection's first request line.
fn serve_json(
    state: &ServerState,
    stream: &mut TcpStream,
    reader: &mut impl BufRead,
    mut line: String,
) -> io::Result<()> {
    loop {
        if !line.trim().is_empty() {
            let mut response = state.handle_line(line.trim_end());
            response.push('\n');
            // One write per response: a formatted write would emit the payload
            // and the newline as separate segments.
            stream.write_all(response.as_bytes())?;
            stream.flush()?;
            if state.shutdown_requested() {
                return Ok(());
            }
        }
        if sig::terminated() {
            return Ok(());
        }
        line.clear();
        if read_line_polled(state, reader, &mut line)? == 0 {
            return Ok(());
        }
    }
}

/// The HTTP/1.1 shim: a hand-rolled keep-alive loop mapping
/// `POST /v1/{enumerate,group,select}` (JSON request body, the `op` implied by
/// the path) and `GET /v1/stats` onto the same handlers as the JSON protocol —
/// the response body is the identical envelope. No chunked encoding, no TLS, no
/// dependencies: request bodies are delimited by `Content-Length`, responses
/// always carry one.
fn serve_http(
    state: &ServerState,
    stream: &mut TcpStream,
    reader: &mut impl BufRead,
    mut request_line: String,
) -> io::Result<()> {
    loop {
        let (method, path) = {
            let mut parts = request_line.split_whitespace();
            (
                parts.next().unwrap_or("").to_string(),
                parts.next().unwrap_or("").to_string(),
            )
        };
        // Headers: only Content-Length (body delimiter) and Connection: close
        // (keep-alive override) matter; everything else is skipped.
        let mut content_length = 0usize;
        let mut close = false;
        let mut header = String::new();
        loop {
            header.clear();
            if read_line_polled(state, reader, &mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside HTTP headers",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse().map_err(|_| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("bad Content-Length `{value}`"),
                        )
                    })?;
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value.eq_ignore_ascii_case("close");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        read_exact_polled(state, reader, &mut body)?;
        let body = String::from_utf8_lossy(&body).into_owned();

        let (status, content_type, payload) = http_reply(state, &method, &path, &body);
        let response = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: {}\r\n\r\n{payload}",
            payload.len(),
            if close { "close" } else { "keep-alive" },
        );
        stream.write_all(response.as_bytes())?;
        stream.flush()?;
        if close || state.shutdown_requested() || sig::terminated() {
            return Ok(());
        }
        request_line.clear();
        if read_line_polled(state, reader, &mut request_line)? == 0 {
            return Ok(());
        }
    }
}

/// The Content-Type of every JSON-bodied HTTP response.
const CONTENT_JSON: &str = "application/json";

/// The Content-Type of the Prometheus text exposition format.
const CONTENT_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Routes one HTTP request to the protocol handlers and picks the status line
/// and content type. Routing failures are answered with the same in-band
/// `{"ok":false,...}` body the JSON protocol uses (and counted by the same
/// `server` counters).
fn http_reply(
    state: &ServerState,
    method: &str,
    path: &str,
    body: &str,
) -> (&'static str, &'static str, String) {
    match (method, path) {
        ("GET", "/v1/stats") => ("200 OK", CONTENT_JSON, state.stats_response()),
        ("GET", "/v1/metrics") => ("200 OK", CONTENT_PROMETHEUS, state.metrics_response()),
        ("POST", "/v1/enumerate" | "/v1/group" | "/v1/select") => {
            let op = path.rsplit('/').next().expect("path has segments");
            match http_request_line(op, body) {
                Ok(line) => {
                    let response = state.handle_line(&line);
                    let status = if response.starts_with("{\"ok\":true") {
                        "200 OK"
                    } else {
                        "400 Bad Request"
                    };
                    (status, CONTENT_JSON, response)
                }
                Err(message) => (
                    "400 Bad Request",
                    CONTENT_JSON,
                    state.error_response(&message),
                ),
            }
        }
        ("POST" | "GET", _) => (
            "404 Not Found",
            CONTENT_JSON,
            state.error_response(&format!(
                "unknown path `{path}` (POST /v1/{{enumerate,group,select}}, \
                 GET /v1/stats, GET /v1/metrics)"
            )),
        ),
        _ => (
            "405 Method Not Allowed",
            CONTENT_JSON,
            state.error_response(&format!("method `{method}` is not supported")),
        ),
    }
}

/// Builds the JSON-protocol request line for an HTTP body: the body's object with
/// the path-implied `op` prepended (a conflicting `op` in the body is replaced —
/// the path is authoritative).
fn http_request_line(op: &str, body: &str) -> Result<String, String> {
    let body = if body.trim().is_empty() { "{}" } else { body };
    let doc = Json::parse(body).map_err(|e| format!("request body is not JSON: {e}"))?;
    let Json::Object(mut pairs) = doc else {
        return Err("request body must be a JSON object".to_string());
    };
    pairs.retain(|(key, _)| key != "op");
    pairs.insert(0, ("op".to_string(), Json::str(op)));
    Ok(Json::Object(pairs).render())
}

#[cfg(test)]
mod tests {
    use super::*;

    const INLINE: &str = "dfg mac\nnode 0 in @a\nnode 1 in @x\nnode 2 in @acc\n\
                          node 3 mul\nnode 4 add\nedge 0 3\nedge 1 3\nedge 3 4\nedge 2 4\n\
                          output 4\nend\n";

    fn request(op: &str, block: &str, flags: &str) -> String {
        let doc = Json::object([("op", Json::str(op)), ("block", Json::str(block))]);
        let mut text = doc.render();
        if !flags.is_empty() {
            text.truncate(text.len() - 1);
            text.push_str(&format!(",\"flags\":{flags}}}"));
        }
        text
    }

    fn result_of(response: &str) -> Json {
        let doc = Json::parse(response).expect("response is JSON");
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "{response}"
        );
        doc.get("result").expect("result present").clone()
    }

    #[test]
    fn enumerate_cold_then_warm_is_byte_identical() {
        let state = ServerState::new(8, None);
        let req = request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#);
        let cold = state.handle_line(&req);
        let warm = state.handle_line(&req);
        let parse = |text: &str| Json::parse(text).unwrap();
        assert_eq!(parse(&cold).get("cached"), Some(&Json::Bool(false)));
        assert_eq!(parse(&warm).get("cached"), Some(&Json::Bool(true)));
        assert_eq!(
            result_of(&cold).render(),
            result_of(&warm).render(),
            "cold and warm payloads must be byte-identical"
        );
        assert_eq!(
            parse(&cold).get("key"),
            parse(&warm).get("key"),
            "same request, same content key"
        );
    }

    #[test]
    fn formatting_only_variants_share_a_key_and_flag_changes_miss() {
        let state = ServerState::new(8, None);
        let noisy = format!(
            "# comment\n\n{}",
            INLINE.replace("node 3 mul", "node 3   mul")
        );
        let key_of = |state: &ServerState, block: &str, flags: &str| {
            let response = state.handle_line(&request("enumerate", block, flags));
            Json::parse(&response)
                .unwrap()
                .get("key")
                .and_then(Json::as_str)
                .unwrap()
                .to_string()
        };
        let base = key_of(&state, INLINE, r#"{"nin":3,"nout":1}"#);
        assert_eq!(
            base,
            key_of(&state, &noisy, r#"{"nin":3,"nout":1}"#),
            "comments and spacing must not change the cache key"
        );
        assert_ne!(base, key_of(&state, INLINE, r#"{"nin":2,"nout":1}"#));
        assert_ne!(
            base,
            key_of(&state, INLINE, r#"{"nin":3,"nout":1,"budget":7}"#)
        );
    }

    #[test]
    fn threads_flag_does_not_change_key_or_payload() {
        let state = ServerState::new(8, None);
        let one = state.handle_line(&request(
            "enumerate",
            INLINE,
            r#"{"nin":3,"nout":1,"threads":1}"#,
        ));
        let four = state.handle_line(&request(
            "enumerate",
            INLINE,
            r#"{"nin":3,"nout":1,"threads":4}"#,
        ));
        let doc = Json::parse(&four).unwrap();
        assert_eq!(doc.get("cached"), Some(&Json::Bool(true)), "{four}");
        assert_eq!(result_of(&one).render(), result_of(&four).render());
    }

    #[test]
    fn group_and_global_select_reuse_the_enumeration_cache() {
        let state = ServerState::new(8, None);
        let _ = state.handle_line(&request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#));
        let enum_misses = state.enumeration_stats().misses;
        let grouped = state.handle_line(&request("group", INLINE, r#"{"nin":3,"nout":1}"#));
        assert!(
            result_of(&grouped).render().contains("ise-cli/group/v1"),
            "{grouped}"
        );
        let selected = state.handle_line(&request(
            "select",
            INLINE,
            r#"{"nin":3,"nout":1,"global":true}"#,
        ));
        let selected_payload = result_of(&selected).render();
        assert!(
            selected_payload.contains("\"mode\":\"global\""),
            "{selected}"
        );
        assert_eq!(
            state.enumeration_stats().misses,
            enum_misses,
            "group and global select must hit the per-block enumeration cache"
        );
        assert!(
            state.coding_stats().hits > 0,
            "global select reuses group's coding"
        );
    }

    #[test]
    fn canon_memo_persists_across_requests_and_port_configs() {
        let state = ServerState::new(8, None);
        let _ = state.handle_line(&request("group", INLINE, r#"{"nin":3,"nout":1}"#));
        let cold = state.memo_stats();
        assert!(cold.labeler_runs > 0, "cold group must run the labeler");
        // A different port configuration misses the codings LRU (the key embeds
        // the ports) but every pattern was already labeled: the memo answers all
        // of them and the labeler never runs again.
        let coding_misses = state.coding_stats().misses;
        let _ = state.handle_line(&request(
            "group",
            INLINE,
            r#"{"nin":3,"nout":1,"ports-in":2}"#,
        ));
        assert!(
            state.coding_stats().misses > coding_misses,
            "changed ports must miss the codings cache"
        );
        let warm = state.memo_stats();
        assert_eq!(
            warm.labeler_runs, cold.labeler_runs,
            "memo must answer every re-coded cut"
        );
        assert!(warm.raw_hits > cold.raw_hits);
        let stats = state.handle_line(r#"{"op":"stats"}"#);
        let memo = Json::parse(&stats)
            .unwrap()
            .get("result")
            .and_then(|r| r.get("memo"))
            .cloned()
            .expect("stats op reports the memo");
        assert_eq!(
            memo.get("labeler_runs").and_then(Json::as_u64),
            Some(warm.labeler_runs)
        );
        assert_eq!(
            memo.get("entries").and_then(Json::as_u64),
            Some(warm.entries)
        );
    }

    #[test]
    fn per_block_select_matches_modes_and_caches() {
        let state = ServerState::new(8, None);
        let response = state.handle_line(&request(
            "select",
            INLINE,
            r#"{"nin":3,"nout":1,"max-instr":2}"#,
        ));
        let payload = result_of(&response).render();
        assert!(payload.contains("\"mode\":\"per-block\""), "{response}");
        assert!(payload.contains("\"selection\":{"), "{response}");
        assert!(payload.contains("\"threads\":1"), "pinned: {response}");
        assert!(payload.contains("\"corpus\":\"cache:"), "{response}");
    }

    #[test]
    fn malformed_requests_answer_in_band_errors() {
        let state = ServerState::new(8, None);
        for (line, expect) in [
            ("not json", "not JSON"),
            ("{}", "`op` field"),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"enumerate"}"#, "`block` field"),
            (
                r#"{"op":"enumerate","block":"dfg x\nend\n","flags":{"nin":0}}"#,
                "--nin",
            ),
            (
                r#"{"op":"enumerate","block":"dfg x\nend\n","flags":{"bogus":1}}"#,
                "unknown flag",
            ),
            (
                r#"{"op":"enumerate","block":"dfg x\nnode 0 bad-op\nend\n"}"#,
                "inline block",
            ),
            (r#"{"op":"enumerate","block":"/nonexistent-ise-path"}"#, ""),
        ] {
            let response = state.handle_line(line);
            let doc = Json::parse(&response).expect("error responses are JSON");
            assert_eq!(
                doc.get("ok"),
                Some(&Json::Bool(false)),
                "{line} -> {response}"
            );
            let message = doc.get("error").and_then(Json::as_str).unwrap();
            assert!(message.contains(expect), "{line} -> {message}");
        }
    }

    #[test]
    fn stats_and_shutdown_ops_work() {
        let state = ServerState::new(8, None);
        let _ = state.handle_line(&request("enumerate", INLINE, ""));
        let _ = state.handle_line(&request("enumerate", INLINE, ""));
        let stats = state.handle_line(r#"{"op":"stats"}"#);
        let doc = Json::parse(&stats).unwrap();
        let responses = doc.get("result").and_then(|r| r.get("responses")).unwrap();
        assert_eq!(responses.get("hits").and_then(Json::as_u64), Some(1));
        assert_eq!(responses.get("misses").and_then(Json::as_u64), Some(1));
        assert!(!state.shutdown_requested());
        let bye = state.handle_line(r#"{"op":"shutdown"}"#);
        assert!(bye.contains("\"ok\":true"), "{bye}");
        assert!(state.shutdown_requested());
    }

    #[test]
    fn server_counters_classify_every_request_exactly_once() {
        let state = ServerState::new(8, None);
        let _ = state.handle_line(&request("enumerate", INLINE, "")); // miss
        let _ = state.handle_line(&request("enumerate", INLINE, "")); // hit
        let _ = state.handle_line("not json"); // error
        let _ = state.handle_line(r#"{"op":"stats"}"#); // control: not counted
        let stats = state.handle_line(r#"{"op":"stats"}"#);
        let server = Json::parse(&stats)
            .unwrap()
            .get("result")
            .and_then(|r| r.get("server"))
            .cloned()
            .expect("stats op reports the server counters");
        let counter = |field: &str| server.get(field).and_then(Json::as_u64).unwrap();
        assert_eq!(counter("requests"), 3, "{stats}");
        assert_eq!(counter("hits"), 1, "{stats}");
        assert_eq!(counter("misses"), 1, "{stats}");
        assert_eq!(counter("errors"), 1, "{stats}");
        assert_eq!(
            counter("hits") + counter("misses") + counter("errors"),
            counter("requests"),
            "every counted request is exactly one of hit/miss/error: {stats}"
        );
        assert_eq!(counter("coalesced"), 0, "single-threaded: no coalescing");
        assert_eq!(counter("connection_errors"), 0);
    }

    #[test]
    fn envelopes_report_microsecond_latency_alongside_milliseconds() {
        let state = ServerState::new(8, None);
        let req = request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#);
        let _ = state.handle_line(&req);
        let warm = state.handle_line(&req);
        let doc = Json::parse(&warm).unwrap();
        // A warm hit is typically sub-millisecond: `elapsed_ms` alone reads 0.
        // `elapsed_us` must be present (envelope-only; the payload has neither).
        assert!(
            doc.get("elapsed_ms").and_then(Json::as_u64).is_some(),
            "{warm}"
        );
        assert!(
            doc.get("elapsed_us").and_then(Json::as_u64).is_some(),
            "{warm}"
        );
        let payload = result_of(&warm).render();
        assert!(!payload.contains("elapsed_us"), "envelope-only: {payload}");
        assert!(
            !payload.contains("\"obs\""),
            "no obs in payloads: {payload}"
        );
    }

    #[test]
    fn metrics_endpoint_renders_valid_prometheus_exposition() {
        let state = ServerState::new(8, None);
        let _ = state.handle_line(&request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#));
        let _ = state.handle_line(&request("group", INLINE, r#"{"nin":3,"nout":1}"#));
        let (status, content_type, body) = http_reply(&state, "GET", "/v1/metrics", "");
        assert_eq!(status, "200 OK");
        assert!(content_type.starts_with("text/plain"), "{content_type}");
        // Exposition validity: every non-comment line is `name[{labels}] value`,
        // and every series is preceded by its # TYPE header.
        let mut typed: Vec<&str> = Vec::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                typed.push(rest.split(' ').next().unwrap());
                continue;
            }
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (series, value) = line
                .rsplit_once(' ')
                .expect("sample lines are `name value`");
            let base = series.split('{').next().unwrap();
            assert!(
                typed.contains(&base),
                "sample `{series}` lacks a # TYPE header:\n{body}"
            );
            assert!(
                value.parse::<f64>().is_ok(),
                "sample value `{value}` is not numeric"
            );
        }
        // The exposition covers every layer: server, cache, memo, engine, pool.
        for series in [
            "ise_serve_requests_total 2",
            "ise_cache_hits{cache=\"responses\"}",
            "ise_memo_entries",
            "ise_engine_runs_total",
            "ise_pool_seeded_total",
        ] {
            assert!(body.contains(series), "missing `{series}`:\n{body}");
        }
    }

    #[test]
    fn stats_op_reports_the_registry_snapshot() {
        let state = ServerState::new(8, None);
        let _ = state.handle_line(&request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#));
        let stats = state.handle_line(r#"{"op":"stats"}"#);
        let obs = Json::parse(&stats)
            .unwrap()
            .get("result")
            .and_then(|r| r.get("obs"))
            .cloned()
            .expect("stats op reports the obs snapshot");
        assert_eq!(
            obs.get("ise_serve_requests_total").and_then(Json::as_u64),
            Some(1),
            "{stats}"
        );
        assert!(
            obs.get("ise_engine_runs_total")
                .and_then(Json::as_u64)
                .is_some_and(|runs| runs >= 1),
            "{stats}"
        );
        // The request span ledger balances even with dispatch errors in between.
        let _ = state.handle_line("not json");
        assert_eq!(
            state.registry().spans_entered(),
            state.registry().spans_exited()
        );
    }

    #[test]
    fn http_request_line_injects_the_path_op() {
        let line = http_request_line("enumerate", r#"{"block":"b.dfg","flags":{"nin":3}}"#)
            .expect("valid body");
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("enumerate"));
        assert_eq!(doc.get("block").and_then(Json::as_str), Some("b.dfg"));
        // A conflicting body op is replaced by the path's.
        let line = http_request_line("group", r#"{"op":"shutdown","block":"b.dfg"}"#).unwrap();
        let doc = Json::parse(&line).unwrap();
        assert_eq!(doc.get("op").and_then(Json::as_str), Some("group"));
        // Malformed bodies are reported, not panicked on.
        assert!(http_request_line("enumerate", "[1,2]").is_err());
        assert!(http_request_line("enumerate", "{nope").is_err());
        // An empty body is an empty object (the request then fails validation
        // in-band, with the usual "needs a `block` field" message).
        let line = http_request_line("enumerate", "  ").unwrap();
        assert_eq!(
            Json::parse(&line).unwrap().get("op").and_then(Json::as_str),
            Some("enumerate")
        );
    }

    #[test]
    fn http_reply_routes_paths_and_status_codes() {
        let state = ServerState::new(8, None);
        let (status, content_type, body) = http_reply(&state, "GET", "/v1/stats", "");
        assert_eq!(status, "200 OK");
        assert_eq!(content_type, CONTENT_JSON);
        assert!(body.contains("\"op\":\"stats\""), "{body}");
        let request_body = format!(
            "{{\"block\":{},\"flags\":{{\"nin\":3,\"nout\":1}}}}",
            Json::str(INLINE).render()
        );
        let (status, _, body) = http_reply(&state, "POST", "/v1/enumerate", &request_body);
        assert_eq!(status, "200 OK", "{body}");
        assert!(body.contains("\"op\":\"enumerate\""), "{body}");
        assert!(
            body.contains("ise-cli/enumerate/v1"),
            "the HTTP body is the JSON protocol's envelope: {body}"
        );
        // The HTTP response envelope equals the JSON-protocol response envelope
        // byte for byte (the warm pass here also proves the transports share
        // one cache).
        let via_json = state.handle_line(&request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#));
        let stripped = |text: &str| Json::parse(text).unwrap().get("result").unwrap().render();
        assert_eq!(stripped(&body), stripped(&via_json));
        assert!(via_json.contains("\"cached\":true"), "{via_json}");

        let (status, _, body) = http_reply(&state, "POST", "/v1/enumerate", "{nope");
        assert_eq!(status, "400 Bad Request");
        assert!(body.contains("\"ok\":false"), "{body}");
        let (status, _, body) = http_reply(&state, "POST", "/v1/frobnicate", "{}");
        assert_eq!(status, "404 Not Found");
        assert!(body.contains("unknown path"), "{body}");
        let (status, _, _) = http_reply(&state, "PATCH", "/v1/stats", "");
        assert_eq!(status, "405 Method Not Allowed");
        // Routing failures feed the same counters as in-band errors.
        let stats = state.handle_line(r#"{"op":"stats"}"#);
        let server = Json::parse(&stats)
            .unwrap()
            .get("result")
            .and_then(|r| r.get("server"))
            .cloned()
            .unwrap();
        let counter = |field: &str| server.get(field).and_then(Json::as_u64).unwrap();
        assert_eq!(
            counter("hits") + counter("misses") + counter("errors"),
            counter("requests"),
            "{stats}"
        );
    }

    #[test]
    fn http_sniffing_recognizes_methods_not_json() {
        for http in [
            "POST /v1/enumerate HTTP/1.1\r\n",
            "GET /v1/stats HTTP/1.1\r\n",
            "DELETE /x HTTP/1.1\r\n",
        ] {
            assert!(is_http_request_line(http), "{http}");
        }
        for json in [
            "{\"op\":\"stats\"}\n",
            " {\"op\":\"stats\"}\n",
            "not json\n",
        ] {
            assert!(!is_http_request_line(json), "{json}");
        }
    }

    #[test]
    fn disk_cache_survives_a_restart_byte_identically() {
        let dir = std::env::temp_dir().join(format!("ise-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let req = request("enumerate", INLINE, r#"{"nin":3,"nout":1}"#);
        let cold = {
            let state = ServerState::new(8, Some(dir.clone()));
            state.handle_line(&req)
        };
        let restarted = ServerState::new(8, Some(dir.clone()));
        let warm = restarted.handle_line(&req);
        assert_eq!(
            Json::parse(&warm).unwrap().get("cached"),
            Some(&Json::Bool(true)),
            "{warm}"
        );
        assert_eq!(result_of(&cold).render(), result_of(&warm).render());
        assert_eq!(restarted.response_stats().disk_hits, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
