//! `--flag value` command-line parsing for the `ise` subcommands.

use std::collections::HashMap;

use crate::CliError;

/// Parsed `--key value` / `--key=value` flags. Every flag takes a value.
#[derive(Clone, Debug, Default)]
pub struct Flags {
    values: HashMap<String, String>,
}

impl Flags {
    /// Parses `args`, accepting only flag names listed in `allowed` (without the
    /// leading `--`). Every flag takes exactly one value, either inline
    /// (`--key=value`) or as the next argument; a flag followed by another flag is a
    /// missing value, reported rather than guessed (a forgotten `--out` filename
    /// must not silently route output into a file named after the next flag).
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] on unknown, repeated or value-less flags and on
    /// positional arguments (the subcommand itself is consumed before flag parsing).
    ///
    /// # Example
    ///
    /// ```
    /// use ise_cli::Flags;
    ///
    /// let args: Vec<String> = ["--threads", "4", "--corpus=corpus"]
    ///     .iter()
    ///     .map(ToString::to_string)
    ///     .collect();
    /// let flags = Flags::parse(&args, &["threads", "corpus"]).unwrap();
    /// assert_eq!(flags.usize("threads", 1).unwrap(), 4);
    /// assert_eq!(flags.string("corpus", "-"), "corpus");
    /// assert!(Flags::parse(&args, &["threads"]).is_err(), "corpus not allowed");
    /// ```
    pub fn parse(args: &[String], allowed: &[&str]) -> Result<Flags, CliError> {
        Self::parse_with_switches(args, allowed, &[])
    }

    /// Like [`Flags::parse`], but additionally accepts the valueless *switches*
    /// listed in `switches` (for example `--global`): a switch never consumes the
    /// next argument and is stored as the value `true`, queryable through
    /// [`Flags::bool`]. An inline value (`--global=yes`) on a switch is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] under the same conditions as [`Flags::parse`].
    pub fn parse_with_switches(
        args: &[String],
        allowed: &[&str],
        switches: &[&str],
    ) -> Result<Flags, CliError> {
        let mut values = HashMap::new();
        let mut rest = args.iter().peekable();
        while let Some(arg) = rest.next() {
            let Some(flag) = arg.strip_prefix("--") else {
                return Err(CliError::Usage(format!(
                    "unexpected argument `{arg}` (flags start with --)"
                )));
            };
            let (key, inline_value) = match flag.split_once('=') {
                Some((key, value)) => (key, Some(value.to_string())),
                None => (flag, None),
            };
            let value = if switches.contains(&key) {
                if inline_value.is_some() {
                    return Err(CliError::Usage(format!(
                        "switch `--{key}` does not take a value"
                    )));
                }
                "true".to_string()
            } else if allowed.contains(&key) {
                match inline_value {
                    Some(value) => value,
                    None => match rest.peek() {
                        Some(next) if !next.starts_with("--") => {
                            rest.next().expect("peeked value exists").clone()
                        }
                        _ => {
                            return Err(CliError::Usage(format!("flag `--{key}` needs a value")));
                        }
                    },
                }
            } else {
                return Err(CliError::Usage(format!("unknown flag `--{key}`")));
            };
            if values.insert(key.to_string(), value).is_some() {
                return Err(CliError::Usage(format!("flag `--{key}` given twice")));
            }
        }
        Ok(Flags { values })
    }

    /// The string flag `key`, or `default` if absent.
    pub fn string(&self, key: &str, default: &str) -> String {
        self.values
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }

    /// The string flag `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(String::as_str)
    }

    /// The `usize` flag `key`, or `default` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if the value is present but not a number.
    pub fn usize(&self, key: &str, default: usize) -> Result<usize, CliError> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("`--{key}` needs a number, got `{v}`"))),
        }
    }

    /// The boolean flag `key` (`--key true` / `--key=false`), or `default` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Usage`] if the value is neither `true` nor `false`.
    pub fn bool(&self, key: &str, default: bool) -> Result<bool, CliError> {
        match self.values.get(key).map(String::as_str) {
            None => Ok(default),
            Some("true") | Some("1") => Ok(true),
            Some("false") | Some("0") => Ok(false),
            Some(v) => Err(CliError::Usage(format!(
                "`--{key}` needs true or false, got `{v}`"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn parses_separate_and_inline_forms() {
        let flags = Flags::parse(
            &argv(&["--threads", "8", "--out=report.json", "--check", "true"]),
            &["threads", "out", "check"],
        )
        .unwrap();
        assert_eq!(flags.usize("threads", 1).unwrap(), 8);
        assert_eq!(flags.string("out", "-"), "report.json");
        assert!(flags.bool("check", false).unwrap());
        assert_eq!(flags.usize("missing", 3).unwrap(), 3);
        assert_eq!(flags.get("missing"), None);
    }

    #[test]
    fn rejects_unknown_repeated_and_positional() {
        let allowed = &["threads"];
        assert!(Flags::parse(&argv(&["--bogus", "1"]), allowed).is_err());
        assert!(Flags::parse(&argv(&["--threads", "1", "--threads", "2"]), allowed).is_err());
        assert!(Flags::parse(&argv(&["stray"]), allowed).is_err());
    }

    #[test]
    fn rejects_flags_without_values() {
        // A forgotten value must error, not swallow the next flag or default to
        // "true" (e.g. `--out --md r.md` would otherwise write a file named `true`).
        let allowed = &["out", "md"];
        let err = Flags::parse(&argv(&["--out", "--md", "r.md"]), allowed).unwrap_err();
        assert!(err.to_string().contains("`--out` needs a value"), "{err}");
        let err = Flags::parse(&argv(&["--out"]), allowed).unwrap_err();
        assert!(err.to_string().contains("`--out` needs a value"), "{err}");
    }

    #[test]
    fn switches_take_no_value_and_do_not_swallow_arguments() {
        let flags = Flags::parse_with_switches(
            &argv(&["--global", "--out", "r.json"]),
            &["out"],
            &["global"],
        )
        .unwrap();
        assert!(flags.bool("global", false).unwrap());
        assert_eq!(flags.string("out", "-"), "r.json");
        // Absent switch defaults to false; inline values and duplicates error.
        let flags = Flags::parse_with_switches(&argv(&[]), &["out"], &["global"]).unwrap();
        assert!(!flags.bool("global", false).unwrap());
        assert!(Flags::parse_with_switches(&argv(&["--global=yes"]), &[], &["global"]).is_err());
        assert!(
            Flags::parse_with_switches(&argv(&["--global", "--global"]), &[], &["global"]).is_err()
        );
    }

    #[test]
    fn rejects_malformed_values() {
        let flags = Flags::parse(&argv(&["--threads", "lots"]), &["threads"]).unwrap();
        assert!(flags.usize("threads", 1).is_err());
        let flags = Flags::parse(&argv(&["--check", "maybe"]), &["check"]).unwrap();
        assert!(flags.bool("check", false).is_err());
    }
}
