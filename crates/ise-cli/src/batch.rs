//! The sharded batch runner: a two-level dynamic (work-sharing) scheduler over
//! (block, task) items.
//!
//! PR 3's runner sharded whole *blocks* across workers, which left one adversarial
//! block serializing an entire corpus sweep. This revision flattens the work into
//! `(block, task)` items — large blocks fan out into first-output tasks via
//! [`ise_enum::par`], small blocks stay whole — and all workers pull items from a
//! single lock-free [`AtomicUsize`] fetch-add cursor (the former `Mutex<VecDeque>`
//! queue was an index range behind a lock; the cursor is the same schedule without
//! the lock). The worker completing a block's last task merges its task outputs and
//! finalizes the block, so `--threads` now feeds both levels at once.
//!
//! **Determinism.** The fan-out decision ([`BatchConfig::par_threshold`],
//! [`MAX_TASKS_PER_BLOCK`]) and the per-task budget split are functions of the block
//! and the configuration alone — never of the thread count — and the task merge is
//! deterministic, so every count in the output is byte-identical for any `--threads`
//! value (the PR 3 guarantee). Unbudgeted fanned-out blocks reproduce the serial
//! enumeration exactly, statistics included; budgeted ones split the block budget
//! evenly across tasks (each subtree is truncated independently), which is
//! deterministic but intentionally not identical to a serially budgeted run.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use ise_corpus::CorpusBlock;
use ise_enum::par::{merge_tasks, run_root_task, task_ranges, TaskOutput};
use ise_enum::{
    incremental_cuts_opts, select_ises, Constraints, DedupMode, EngineOptions, EnumContext,
    Enumeration, PruningConfig, Selection,
};
use ise_graph::{Dfg, LatencyModel};

/// Blocks with at least this many vertices fan out into first-output tasks by
/// default (`--par-threshold` overrides).
pub const DEFAULT_PAR_THRESHOLD: usize = 64;

/// Upper bound on the number of tasks one block fans out into. A constant (not a
/// function of the thread count!) so that budgeted runs are byte-identical for any
/// `--threads` value; 16 tasks keep every realistic worker count fed while bounding
/// the per-block merge state.
pub const MAX_TASKS_PER_BLOCK: usize = 16;

/// Selection settings for `ise select` (enumeration settings live in [`BatchConfig`]).
#[derive(Clone, Debug)]
pub struct SelectionConfig {
    /// Maximum number of custom instructions chosen per block.
    pub max_instructions: usize,
    /// Register-file read ports available per cycle for operand transfer.
    pub ports_in: usize,
    /// Register-file write ports available per cycle for result transfer.
    pub ports_out: usize,
}

/// Configuration of one batch run.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// The microarchitectural constraints (`Nin`, `Nout`).
    pub constraints: Constraints,
    /// The §5.3 pruning techniques to apply (all, for production runs).
    pub pruning: PruningConfig,
    /// Optional per-block search budget (`None` = unbounded); fanned-out blocks
    /// split it evenly across their tasks.
    pub budget: Option<usize>,
    /// Number of worker threads; clamped to at least 1. Feeds both scheduler levels
    /// and never changes any output count.
    pub threads: usize,
    /// When set, each block additionally runs the greedy ISE selection.
    pub select: Option<SelectionConfig>,
    /// When the engine de-duplicates candidates relative to validating them
    /// (`--dedup-mode`; [`DedupMode::ValidateFirst`] is the bounded-memory fallback).
    pub dedup_mode: DedupMode,
    /// Minimum block size (in vertices) for intra-block fan-out; `usize::MAX`
    /// disables fan-out entirely.
    pub par_threshold: usize,
}

impl BatchConfig {
    /// An unbounded single-threaded enumerate-only configuration with the default
    /// fan-out threshold.
    pub fn new(constraints: Constraints) -> Self {
        BatchConfig {
            constraints,
            pruning: PruningConfig::all(),
            budget: None,
            threads: 1,
            select: None,
            dedup_mode: DedupMode::default(),
            par_threshold: DEFAULT_PAR_THRESHOLD,
        }
    }
}

/// What one block produced: the enumeration (and optional selection) plus the block's
/// structural counts for reporting.
#[derive(Clone, Debug)]
pub struct BlockOutcome {
    /// Position of the block in the loaded corpus (outcomes are returned sorted by
    /// this, so results are deterministic for any thread count).
    pub index: usize,
    /// The block's corpus name.
    pub name: String,
    /// Vertex count of the block.
    pub nodes: usize,
    /// Edge count of the block.
    pub edges: usize,
    /// Forbidden-vertex count of the block (memory operations, calls, user marks).
    pub forbidden: usize,
    /// How many first-output tasks the block was split into (1 = ran whole).
    pub tasks: usize,
    /// The enumeration result (merged across tasks when the block fanned out).
    pub enumeration: Enumeration,
    /// The greedy selection, when [`BatchConfig::select`] was set.
    pub selection: Option<Selection>,
    /// Wall time from the block's first task starting to its merge completing
    /// (context build included).
    pub elapsed: Duration,
}

/// The per-block schedule: how many tasks, over which first-output ranges.
struct BlockPlan {
    tasks: usize,
    ranges: Vec<Range<usize>>,
    options: EngineOptions,
}

/// In-flight state of one block; the worker finishing the last task merges.
struct BlockSlot {
    ctx: OnceLock<EnumContext>,
    started: OnceLock<Instant>,
    pending: AtomicUsize,
    outputs: Vec<Mutex<Option<TaskOutput>>>,
    outcome: OnceLock<BlockOutcome>,
}

fn plan_block(dfg: &Dfg, config: &BatchConfig) -> BlockPlan {
    // The engine's own context-free counter, so the plan's task ranges can never
    // drift from the candidate list `run_root_task` slices.
    let candidates = EnumContext::candidate_output_count(dfg);
    let tasks = if dfg.len() >= config.par_threshold {
        candidates.clamp(1, MAX_TASKS_PER_BLOCK)
    } else {
        1
    };
    BlockPlan {
        tasks,
        ranges: task_ranges(candidates, tasks),
        options: EngineOptions {
            // The block budget is split evenly across tasks so a fanned-out sweep
            // costs what a whole-block sweep would; deterministic in the plan alone.
            max_search_nodes: config.budget.map(|b| b.div_ceil(tasks).max(1)),
            dedup_mode: config.dedup_mode,
            ..EngineOptions::default()
        },
    }
}

/// Runs the batch: every block of `blocks` through the engine, with large blocks
/// fanned out into first-output tasks, all `(block, task)` items pulled from one
/// atomic cursor by [`BatchConfig::threads`] workers.
///
/// Each worker owns its per-task search state — the engine's `Send` audit guarantees
/// nothing is shared mutably — and both the fan-out plan and the task merge are
/// deterministic, so the outcomes (sorted by block index) are identical for every
/// thread count; only the wall times differ.
pub fn run_batch(blocks: &[CorpusBlock], config: &BatchConfig) -> Vec<BlockOutcome> {
    let plans: Vec<BlockPlan> = blocks.iter().map(|b| plan_block(&b.dfg, config)).collect();
    let items: Vec<(usize, usize)> = plans
        .iter()
        .enumerate()
        .flat_map(|(block, plan)| (0..plan.tasks).map(move |task| (block, task)))
        .collect();
    let slots: Vec<BlockSlot> = plans
        .iter()
        .map(|plan| BlockSlot {
            ctx: OnceLock::new(),
            started: OnceLock::new(),
            pending: AtomicUsize::new(plan.tasks),
            outputs: (0..plan.tasks).map(|_| Mutex::new(None)).collect(),
            outcome: OnceLock::new(),
        })
        .collect();

    let cursor = AtomicUsize::new(0);
    let workers = config.threads.max(1).min(items.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let item = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&(block_idx, task_idx)) = items.get(item) else {
                    break;
                };
                run_item(
                    &blocks[block_idx],
                    block_idx,
                    task_idx,
                    &plans[block_idx],
                    &slots[block_idx],
                    config,
                );
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.outcome
                .into_inner()
                .expect("every scheduled block was finalized")
        })
        .collect()
}

/// Executes one `(block, task)` item; the worker completing a block's last task
/// merges and finalizes it.
fn run_item(
    block: &CorpusBlock,
    block_idx: usize,
    task_idx: usize,
    plan: &BlockPlan,
    slot: &BlockSlot,
    config: &BatchConfig,
) {
    let started = *slot.started.get_or_init(Instant::now);
    let ctx = slot.ctx.get_or_init(|| EnumContext::new(block.dfg.clone()));
    if plan.tasks == 1 {
        // Whole-block item: run the serial engine directly, no merge needed.
        let enumeration =
            incremental_cuts_opts(ctx, &config.constraints, &config.pruning, &plan.options);
        finalize(block, block_idx, plan, slot, config, enumeration, started);
    } else {
        let output = run_root_task(
            ctx,
            &config.constraints,
            &config.pruning,
            &plan.options,
            plan.ranges[task_idx].clone(),
        );
        *slot.outputs[task_idx]
            .lock()
            .expect("task output slot poisoned") = Some(output);
        // The last task to finish (the mutex stores above synchronize with this
        // acquire) merges in range order — deterministic whatever the schedule was.
        if slot.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let outputs: Vec<TaskOutput> = slot
                .outputs
                .iter()
                .map(|m| {
                    m.lock()
                        .expect("task output slot poisoned")
                        .take()
                        .expect("all tasks of the block completed")
                })
                .collect();
            let enumeration = merge_tasks(ctx, &plan.options, outputs);
            finalize(block, block_idx, plan, slot, config, enumeration, started);
        }
    }
}

fn finalize(
    block: &CorpusBlock,
    index: usize,
    plan: &BlockPlan,
    slot: &BlockSlot,
    config: &BatchConfig,
    enumeration: Enumeration,
    started: Instant,
) {
    let ctx = slot.ctx.get().expect("context built before finalize");
    let selection = config.select.as_ref().map(|sel| {
        select_ises(
            ctx,
            &enumeration.cuts,
            &LatencyModel::default(),
            sel.ports_in,
            sel.ports_out,
            sel.max_instructions,
        )
    });
    let outcome = BlockOutcome {
        index,
        name: block.dfg.name().to_string(),
        nodes: block.dfg.len(),
        edges: block.dfg.edge_count(),
        forbidden: block.dfg.forbidden().len(),
        tasks: plan.tasks,
        enumeration,
        selection,
        elapsed: started.elapsed(),
    };
    slot.outcome
        .set(outcome)
        .expect("each block is finalized exactly once");
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_enum::run_on_graph;
    use ise_workloads::random_dag::{random_dag, RandomDagConfig};

    fn small_corpus() -> Vec<CorpusBlock> {
        [(16usize, 0usize), (24, 10), (32, 20), (36, 15), (28, 5)]
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, mem_pct))| CorpusBlock {
                dfg: random_dag(
                    &RandomDagConfig::new(nodes).with_memory_ratio(mem_pct as f64 / 100.0),
                    90 + i as u64,
                ),
                meta: Vec::new(),
            })
            .collect()
    }

    fn config(threads: usize) -> BatchConfig {
        BatchConfig {
            threads,
            ..BatchConfig::new(Constraints::new(4, 2).unwrap())
        }
    }

    /// The batch driver must report exactly what a direct engine run reports,
    /// block for block (the ISSUE's CLI-vs-engine cross-check).
    #[test]
    fn batch_outcomes_match_direct_engine_runs() {
        let blocks = small_corpus();
        let cfg = config(2);
        let outcomes = run_batch(&blocks, &cfg);
        assert_eq!(outcomes.len(), blocks.len());
        for (outcome, block) in outcomes.iter().zip(&blocks) {
            let direct = run_on_graph(&block.dfg, &cfg.constraints, &cfg.pruning, None);
            assert_eq!(outcome.name, block.dfg.name());
            assert_eq!(
                outcome.enumeration.cuts.len(),
                direct.cuts.len(),
                "cut count differs on {}",
                outcome.name
            );
            assert_eq!(
                outcome.enumeration.stats.search_nodes, direct.stats.search_nodes,
                "search trace differs on {}",
                outcome.name
            );
        }
    }

    /// Fanned-out blocks (forced via a tiny threshold) must still report exactly the
    /// serial enumeration — statistics included — on unbudgeted runs.
    #[test]
    fn fanned_out_blocks_match_direct_engine_runs_exactly() {
        let blocks = small_corpus();
        let mut cfg = config(3);
        cfg.par_threshold = 1; // every block fans out
        let outcomes = run_batch(&blocks, &cfg);
        for (outcome, block) in outcomes.iter().zip(&blocks) {
            assert!(outcome.tasks > 1, "{} did not fan out", outcome.name);
            let direct = run_on_graph(&block.dfg, &cfg.constraints, &cfg.pruning, None);
            assert_eq!(
                outcome.enumeration.stats, direct.stats,
                "merged stats differ from serial on {}",
                outcome.name
            );
            let merged: Vec<_> = outcome.enumeration.cuts.iter().map(|c| c.key()).collect();
            let serial: Vec<_> = direct.cuts.iter().map(|c| c.key()).collect();
            assert_eq!(merged, serial, "cut order differs on {}", outcome.name);
        }
    }

    /// Thread count must not change results — only wall time (acceptance criterion:
    /// identical aggregate counts for N=1 and N=8) — including when blocks fan out.
    #[test]
    fn thread_count_does_not_change_results() {
        let blocks = small_corpus();
        for par_threshold in [DEFAULT_PAR_THRESHOLD, 1] {
            let make = |threads| {
                let mut cfg = config(threads);
                cfg.par_threshold = par_threshold;
                cfg
            };
            let one = run_batch(&blocks, &make(1));
            for threads in [2, 8] {
                let many = run_batch(&blocks, &make(threads));
                assert_eq!(one.len(), many.len());
                for (a, b) in one.iter().zip(&many) {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.tasks, b.tasks);
                    assert_eq!(a.enumeration.stats, b.enumeration.stats);
                    assert_eq!(a.enumeration.cuts.len(), b.enumeration.cuts.len());
                }
                let total =
                    |o: &[BlockOutcome]| o.iter().map(|b| b.enumeration.cuts.len()).sum::<usize>();
                assert_eq!(total(&one), total(&many), "{threads} threads");
            }
        }
    }

    /// The validate-first memory fallback must not change any reported cut.
    #[test]
    fn dedup_mode_does_not_change_cut_counts() {
        let blocks = small_corpus();
        let reference = run_batch(&blocks, &config(2));
        let mut cfg = config(2);
        cfg.dedup_mode = DedupMode::ValidateFirst;
        cfg.par_threshold = 1;
        let fallback = run_batch(&blocks, &cfg);
        for (a, b) in reference.iter().zip(&fallback) {
            assert_eq!(
                a.enumeration.cuts.len(),
                b.enumeration.cuts.len(),
                "{}",
                a.name
            );
            assert_eq!(
                a.enumeration.stats.valid_cuts,
                b.enumeration.stats.valid_cuts
            );
        }
    }

    #[test]
    fn selection_is_attached_when_requested() {
        let blocks = small_corpus();
        let mut cfg = config(2);
        cfg.select = Some(SelectionConfig {
            max_instructions: 3,
            ports_in: 4,
            ports_out: 2,
        });
        let outcomes = run_batch(&blocks, &cfg);
        assert!(outcomes.iter().all(|o| o.selection.is_some()));
        assert!(outcomes.iter().any(|o| !o
            .selection
            .as_ref()
            .expect("selection requested")
            .chosen
            .is_empty()));
        for outcome in &outcomes {
            let sel = outcome.selection.as_ref().expect("selection requested");
            assert!(sel.chosen.len() <= 3);
        }
    }

    #[test]
    fn budget_bounds_every_block() {
        let blocks = small_corpus();
        let mut cfg = config(3);
        cfg.budget = Some(10);
        for outcome in run_batch(&blocks, &cfg) {
            assert!(outcome.enumeration.stats.search_nodes <= 10);
        }
        // Fanned out, the block budget is split across tasks, so the block total
        // still cannot exceed the budget (plus per-task rounding).
        cfg.par_threshold = 1;
        cfg.budget = Some(32);
        for outcome in run_batch(&blocks, &cfg) {
            assert!(
                outcome.enumeration.stats.search_nodes <= 32 + outcome.tasks,
                "{}: {} nodes over budget",
                outcome.name,
                outcome.enumeration.stats.search_nodes
            );
        }
    }

    #[test]
    fn empty_corpus_yields_no_outcomes() {
        assert!(run_batch(&[], &config(4)).is_empty());
    }
}
