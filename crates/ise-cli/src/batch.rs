//! The sharded batch runner: a work-stealing scheduler over dynamically splittable
//! (block, task) items.
//!
//! PR 3's runner sharded whole *blocks* across workers, which left one adversarial
//! block serializing an entire corpus sweep. PR 4 flattened the work into
//! `(block, task)` items behind one atomic fetch-add cursor — but a cursor only
//! distributes the *static* fan-out, and recursive task splitting (this revision)
//! spawns child tasks while the sweep runs. The scheduler is now a
//! [`WorkStealPool`]: every worker owns a deque, freshly split children land on
//! their producer's deque (popped LIFO, warm in cache), and idle workers steal the
//! oldest — coarsest — item from a peer, so one skewed subtree that keeps splitting
//! is drained by whoever is free instead of serializing its worker's tail. The
//! worker retiring a block's last task merges its task outputs (sorted by
//! [`TaskId`], the deterministic serial order) and finalizes the block.
//!
//! **Determinism.** The fan-out plan ([`BatchConfig::par_threshold`],
//! [`MAX_TASKS_PER_BLOCK`]), the per-task budget split and the split threshold are
//! functions of the block and the configuration alone — never of the thread count —
//! suspension points are a pure function of each task's own search, and the sharded
//! task merge is deterministic, so every count in the output is byte-identical for
//! any `--threads` value (the PR 3 guarantee). Unbudgeted fanned-out blocks
//! reproduce the serial enumeration exactly, statistics included; budgeted ones
//! split the block budget evenly across the *static* tasks (each subtree truncated
//! independently, budget exhaustion suppressing any further splits), which is
//! deterministic but intentionally not identical to a serially budgeted run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use ise_corpus::CorpusBlock;
use ise_enum::par::{
    initial_tasks, merge_tasks_sharded_obs, run_task_obs, TaskId, TaskOutput, TaskSpec,
    WorkStealPool,
};
use ise_enum::{
    incremental_cuts_obs, select_ises, Constraints, DedupMode, EngineOptions, EnumContext,
    Enumeration, PruningConfig, Selection,
};
use ise_graph::{Dfg, LatencyModel};
use ise_obs::Recorder;

/// Blocks with at least this many vertices fan out into first-output tasks by
/// default (`--par-threshold` overrides).
pub const DEFAULT_PAR_THRESHOLD: usize = 64;

/// Upper bound on the number of *static* tasks one block fans out into. A constant
/// (not a function of the thread count!) so that budgeted runs are byte-identical
/// for any `--threads` value; 16 tasks keep every realistic worker count fed while
/// bounding the per-block merge state. Recursive splitting can grow the final task
/// count past this, but only as a function of the block and the flags.
pub const MAX_TASKS_PER_BLOCK: usize = 16;

/// Default node-count threshold past which a task re-splits at its next decision
/// level (`--split-threshold` overrides; `0` disables splitting). High enough that
/// default budgeted sweeps (whose per-task budgets are far smaller) never split, and
/// unbudgeted heavy blocks — the E7 pathology — do.
pub const DEFAULT_SPLIT_THRESHOLD: usize = 1_000_000;

/// Selection settings for `ise select` (enumeration settings live in [`BatchConfig`]).
#[derive(Clone, Debug)]
pub struct SelectionConfig {
    /// Maximum number of custom instructions chosen per block.
    pub max_instructions: usize,
    /// Register-file read ports available per cycle for operand transfer.
    pub ports_in: usize,
    /// Register-file write ports available per cycle for result transfer.
    pub ports_out: usize,
}

/// Configuration of one batch run.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// The microarchitectural constraints (`Nin`, `Nout`).
    pub constraints: Constraints,
    /// The §5.3 pruning techniques to apply (all, for production runs).
    pub pruning: PruningConfig,
    /// Optional per-block search budget (`None` = unbounded); fanned-out blocks
    /// split it evenly across their static tasks.
    pub budget: Option<usize>,
    /// Number of worker threads; clamped to at least 1. Feeds the scheduler and the
    /// sharded merges and never changes any output count.
    pub threads: usize,
    /// When set, each block additionally runs the greedy ISE selection.
    pub select: Option<SelectionConfig>,
    /// When the engine de-duplicates candidates relative to validating them
    /// (`--dedup-mode`; [`DedupMode::ValidateFirst`] is the bounded-memory fallback).
    pub dedup_mode: DedupMode,
    /// Minimum block size (in vertices) for intra-block fan-out; `usize::MAX`
    /// disables fan-out (and with it recursive splitting) entirely.
    pub par_threshold: usize,
    /// Recursive split threshold for fanned-out tasks (`None` disables). Applies
    /// only to blocks at or above [`BatchConfig::par_threshold`]. Changes the work
    /// decomposition, never the unbudgeted results.
    pub split_threshold: Option<usize>,
}

impl BatchConfig {
    /// An unbounded single-threaded enumerate-only configuration with the default
    /// fan-out and split thresholds.
    pub fn new(constraints: Constraints) -> Self {
        BatchConfig {
            constraints,
            pruning: PruningConfig::all(),
            budget: None,
            threads: 1,
            select: None,
            dedup_mode: DedupMode::default(),
            par_threshold: DEFAULT_PAR_THRESHOLD,
            split_threshold: Some(DEFAULT_SPLIT_THRESHOLD),
        }
    }
}

/// What one block produced: the enumeration (and optional selection) plus the block's
/// structural counts for reporting.
#[derive(Clone, Debug)]
pub struct BlockOutcome {
    /// Position of the block in the loaded corpus (outcomes are returned sorted by
    /// this, so results are deterministic for any thread count).
    pub index: usize,
    /// The block's corpus name.
    pub name: String,
    /// Vertex count of the block.
    pub nodes: usize,
    /// Edge count of the block.
    pub edges: usize,
    /// Forbidden-vertex count of the block (memory operations, calls, user marks).
    pub forbidden: usize,
    /// How many tasks the block's enumeration was merged from (1 = ran whole;
    /// recursive splitting can push this past the static fan-out — still a pure
    /// function of the block and the flags, never of the thread count).
    pub tasks: usize,
    /// The enumeration result (merged across tasks when the block fanned out).
    pub enumeration: Enumeration,
    /// The greedy selection, when [`BatchConfig::select`] was set.
    pub selection: Option<Selection>,
    /// Wall time from the block's first task starting to its merge completing
    /// (context build included).
    pub elapsed: Duration,
}

/// The per-block schedule. `specs` empty means the block runs whole on one worker
/// (small blocks below the fan-out threshold, and degenerate fan-outs with at most
/// one candidate and splitting off).
struct BlockPlan {
    specs: Vec<TaskSpec>,
    split_threshold: Option<usize>,
    options: EngineOptions,
}

/// In-flight state of one block; the worker retiring the last task merges.
struct BlockSlot {
    ctx: OnceLock<EnumContext>,
    started: OnceLock<Instant>,
    /// Tasks queued or running for this block — static tasks up front, plus every
    /// spawned child (registered before its parent retires).
    pending: AtomicUsize,
    outputs: Mutex<Vec<(TaskId, TaskOutput)>>,
    outcome: OnceLock<BlockOutcome>,
}

fn plan_block(dfg: &Dfg, config: &BatchConfig) -> BlockPlan {
    // The engine's own context-free counter, so the plan's task ranges can never
    // drift from the candidate list `run_task` slices.
    let candidates = EnumContext::candidate_output_count(dfg);
    let fan_out = dfg.len() >= config.par_threshold;
    let tasks = if fan_out {
        candidates.clamp(1, MAX_TASKS_PER_BLOCK)
    } else {
        1
    };
    let split_threshold = if fan_out {
        config.split_threshold
    } else {
        None
    };
    let mut specs = if fan_out {
        initial_tasks(candidates, tasks)
    } else {
        Vec::new()
    };
    if specs.len() == 1 && split_threshold.is_none() {
        // A single static task that can never split is exactly the serial run; skip
        // the task/merge machinery (this also covers candidate-starved blocks, whose
        // degenerate extra ranges `initial_tasks` already drops).
        specs.clear();
    }
    BlockPlan {
        specs,
        split_threshold,
        options: EngineOptions {
            // The block budget is split evenly across the static tasks so a
            // fanned-out sweep costs what a whole-block sweep would; deterministic in
            // the plan alone. Budget exhaustion suppresses recursive splits.
            max_search_nodes: config.budget.map(|b| b.div_ceil(tasks).max(1)),
            dedup_mode: config.dedup_mode,
            ..EngineOptions::default()
        },
    }
}

/// One schedulable unit: a block index plus either a task of its fan-out or `None`
/// for a whole-block (serial) run.
type WorkItem = (usize, Option<TaskSpec>);

/// Runs the batch: every block of `blocks` through the engine, with large blocks
/// fanned out into first-output tasks (recursively re-split past the split
/// threshold), all items scheduled by a [`WorkStealPool`] over
/// [`BatchConfig::threads`] workers.
///
/// Each worker owns its per-task search state — the engine's `Send` audit guarantees
/// nothing is shared mutably — and the fan-out plan, the split points and the task
/// merge are all deterministic, so the outcomes (sorted by block index) are
/// identical for every thread count; only the wall times differ.
pub fn run_batch(blocks: &[CorpusBlock], config: &BatchConfig) -> Vec<BlockOutcome> {
    run_batch_obs(blocks, config, None)
}

/// [`run_batch`] with an optional [`Recorder`] observing the run: per-block and
/// per-task spans, pool counters and phase timings land in the recorder, worker
/// threads are named `worker-N` for trace grouping. Recording never changes any
/// outcome — the plan, the split points and the merge are untouched — so
/// `run_batch(b, c)` and `run_batch_obs(b, c, Some(rec))` report identical counts.
pub fn run_batch_obs(
    blocks: &[CorpusBlock],
    config: &BatchConfig,
    rec: Option<&dyn Recorder>,
) -> Vec<BlockOutcome> {
    let plans: Vec<BlockPlan> = blocks.iter().map(|b| plan_block(&b.dfg, config)).collect();
    let slots: Vec<BlockSlot> = plans
        .iter()
        .map(|plan| BlockSlot {
            ctx: OnceLock::new(),
            started: OnceLock::new(),
            pending: AtomicUsize::new(plan.specs.len().max(1)),
            outputs: Mutex::new(Vec::new()),
            outcome: OnceLock::new(),
        })
        .collect();
    let items: Vec<WorkItem> = plans
        .iter()
        .enumerate()
        .flat_map(|(block, plan)| -> Vec<WorkItem> {
            if plan.specs.is_empty() {
                vec![(block, None)]
            } else {
                plan.specs
                    .iter()
                    .map(|spec| (block, Some(spec.clone())))
                    .collect()
            }
        })
        .collect();

    let workers = config.threads.max(1).min(items.len().max(1));
    let mut pool = WorkStealPool::new(workers);
    if let Some(rec) = rec {
        pool.set_recorder(rec);
    }
    let pool = pool;
    pool.seed(items);
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let pool = &pool;
            let plans = &plans;
            let slots = &slots;
            scope.spawn(move || {
                if let Some(rec) = rec {
                    rec.set_thread_name(&format!("worker-{worker}"));
                }
                while let Some((block_idx, spec)) = pool.pop(worker) {
                    run_item(
                        &blocks[block_idx],
                        block_idx,
                        spec,
                        &plans[block_idx],
                        &slots[block_idx],
                        config,
                        pool,
                        worker,
                        rec,
                    );
                    pool.done();
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.outcome
                .into_inner()
                .expect("every scheduled block was finalized")
        })
        .collect()
}

/// Executes one work item; the worker retiring a block's last task merges and
/// finalizes it.
#[allow(clippy::too_many_arguments)]
fn run_item(
    block: &CorpusBlock,
    block_idx: usize,
    spec: Option<TaskSpec>,
    plan: &BlockPlan,
    slot: &BlockSlot,
    config: &BatchConfig,
    pool: &WorkStealPool<WorkItem>,
    worker: usize,
    rec: Option<&dyn Recorder>,
) {
    let started = *slot.started.get_or_init(Instant::now);
    let ctx = slot.ctx.get_or_init(|| EnumContext::new(block.dfg.clone()));
    let Some(spec) = spec else {
        // Whole-block item: run the serial engine directly, no merge needed.
        let enumeration = incremental_cuts_obs(
            ctx,
            &config.constraints,
            &config.pruning,
            &plan.options,
            rec,
        );
        finalize(block, block_idx, 1, slot, config, enumeration, started, rec);
        return;
    };
    let (output, children) = run_task_obs(
        ctx,
        &config.constraints,
        &config.pruning,
        &plan.options,
        plan.split_threshold,
        &spec,
        rec,
    );
    if !children.is_empty() {
        // Register the children before retiring this task, so the block can never
        // look complete while split-off work is still queued.
        slot.pending.fetch_add(children.len(), Ordering::AcqRel);
        for child in children {
            pool.push(worker, (block_idx, Some(child)));
        }
    }
    slot.outputs
        .lock()
        .expect("task output list poisoned")
        .push((spec.id().clone(), output));
    // The last task to retire (the mutex pushes above synchronize with this acquire)
    // merges in TaskId order — the serial order, whatever the schedule was.
    if slot.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
        let mut outputs =
            std::mem::take(&mut *slot.outputs.lock().expect("task output list poisoned"));
        outputs.sort_by(|a, b| a.0.cmp(&b.0));
        let tasks = outputs.len();
        let outputs: Vec<TaskOutput> = outputs.into_iter().map(|(_, out)| out).collect();
        let enumeration = merge_tasks_sharded_obs(ctx, &plan.options, outputs, config.threads, rec);
        finalize(
            block,
            block_idx,
            tasks,
            slot,
            config,
            enumeration,
            started,
            rec,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn finalize(
    block: &CorpusBlock,
    index: usize,
    tasks: usize,
    slot: &BlockSlot,
    config: &BatchConfig,
    enumeration: Enumeration,
    started: Instant,
    rec: Option<&dyn Recorder>,
) {
    let ctx = slot.ctx.get().expect("context built before finalize");
    let selection = config.select.as_ref().map(|sel| {
        select_ises(
            ctx,
            &enumeration.cuts,
            &LatencyModel::default(),
            sel.ports_in,
            sel.ports_out,
            sel.max_instructions,
        )
    });
    let outcome = BlockOutcome {
        index,
        name: block.dfg.name().to_string(),
        nodes: block.dfg.len(),
        edges: block.dfg.edge_count(),
        forbidden: block.dfg.forbidden().len(),
        tasks,
        enumeration,
        selection,
        elapsed: started.elapsed(),
    };
    slot.outcome
        .set(outcome)
        .expect("each block is finalized exactly once");
    if let Some(rec) = rec {
        rec.add("ise_batch_blocks_total", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_enum::run_on_graph;
    use ise_workloads::random_dag::{random_dag, RandomDagConfig};

    fn small_corpus() -> Vec<CorpusBlock> {
        [(16usize, 0usize), (24, 10), (32, 20), (36, 15), (28, 5)]
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, mem_pct))| CorpusBlock {
                dfg: random_dag(
                    &RandomDagConfig::new(nodes).with_memory_ratio(mem_pct as f64 / 100.0),
                    90 + i as u64,
                ),
                meta: Vec::new(),
            })
            .collect()
    }

    fn config(threads: usize) -> BatchConfig {
        BatchConfig {
            threads,
            ..BatchConfig::new(Constraints::new(4, 2).unwrap())
        }
    }

    /// The batch driver must report exactly what a direct engine run reports,
    /// block for block (the ISSUE's CLI-vs-engine cross-check).
    #[test]
    fn batch_outcomes_match_direct_engine_runs() {
        let blocks = small_corpus();
        let cfg = config(2);
        let outcomes = run_batch(&blocks, &cfg);
        assert_eq!(outcomes.len(), blocks.len());
        for (outcome, block) in outcomes.iter().zip(&blocks) {
            let direct = run_on_graph(&block.dfg, &cfg.constraints, &cfg.pruning, None);
            assert_eq!(outcome.name, block.dfg.name());
            assert_eq!(
                outcome.enumeration.cuts.len(),
                direct.cuts.len(),
                "cut count differs on {}",
                outcome.name
            );
            assert_eq!(
                outcome.enumeration.stats.search_nodes, direct.stats.search_nodes,
                "search trace differs on {}",
                outcome.name
            );
        }
    }

    /// Fanned-out blocks (forced via a tiny threshold) must still report exactly the
    /// serial enumeration — statistics included — on unbudgeted runs.
    #[test]
    fn fanned_out_blocks_match_direct_engine_runs_exactly() {
        let blocks = small_corpus();
        let mut cfg = config(3);
        cfg.par_threshold = 1; // every block fans out
        let outcomes = run_batch(&blocks, &cfg);
        for (outcome, block) in outcomes.iter().zip(&blocks) {
            assert!(outcome.tasks > 1, "{} did not fan out", outcome.name);
            let direct = run_on_graph(&block.dfg, &cfg.constraints, &cfg.pruning, None);
            assert_eq!(
                outcome.enumeration.stats, direct.stats,
                "merged stats differ from serial on {}",
                outcome.name
            );
            let merged: Vec<_> = outcome.enumeration.cuts.iter().map(|c| c.key()).collect();
            let serial: Vec<_> = direct.cuts.iter().map(|c| c.key()).collect();
            assert_eq!(merged, serial, "cut order differs on {}", outcome.name);
        }
    }

    /// Forced recursive splitting (tiny split threshold) must also reproduce the
    /// serial enumeration exactly, while actually growing the task count past the
    /// static fan-out.
    #[test]
    fn recursively_split_blocks_match_direct_engine_runs_exactly() {
        let blocks = small_corpus();
        let mut cfg = config(3);
        cfg.par_threshold = 1;
        cfg.split_threshold = Some(50);
        let outcomes = run_batch(&blocks, &cfg);
        assert!(
            outcomes.iter().any(|o| o.tasks > MAX_TASKS_PER_BLOCK),
            "a 50-node threshold must split some block past the static fan-out"
        );
        for (outcome, block) in outcomes.iter().zip(&blocks) {
            let direct = run_on_graph(&block.dfg, &cfg.constraints, &cfg.pruning, None);
            assert_eq!(
                outcome.enumeration.stats, direct.stats,
                "merged stats differ from serial on {}",
                outcome.name
            );
            let merged: Vec<_> = outcome.enumeration.cuts.iter().map(|c| c.key()).collect();
            let serial: Vec<_> = direct.cuts.iter().map(|c| c.key()).collect();
            assert_eq!(merged, serial, "cut order differs on {}", outcome.name);
        }
    }

    /// Thread count must not change results — only wall time (acceptance criterion:
    /// identical aggregate counts for N=1 and N=8) — including when blocks fan out
    /// and recursively split.
    #[test]
    fn thread_count_does_not_change_results() {
        let blocks = small_corpus();
        for (par_threshold, split_threshold) in [
            (DEFAULT_PAR_THRESHOLD, Some(DEFAULT_SPLIT_THRESHOLD)),
            (1, Some(DEFAULT_SPLIT_THRESHOLD)),
            (1, Some(25)),
            (1, None),
        ] {
            let make = |threads| {
                let mut cfg = config(threads);
                cfg.par_threshold = par_threshold;
                cfg.split_threshold = split_threshold;
                cfg
            };
            let one = run_batch(&blocks, &make(1));
            for threads in [2, 8] {
                let many = run_batch(&blocks, &make(threads));
                assert_eq!(one.len(), many.len());
                for (a, b) in one.iter().zip(&many) {
                    assert_eq!(a.index, b.index);
                    assert_eq!(a.name, b.name);
                    assert_eq!(a.tasks, b.tasks, "{}: task plan drifted", a.name);
                    assert_eq!(a.enumeration.stats, b.enumeration.stats);
                    assert_eq!(a.enumeration.cuts.len(), b.enumeration.cuts.len());
                }
                let total =
                    |o: &[BlockOutcome]| o.iter().map(|b| b.enumeration.cuts.len()).sum::<usize>();
                assert_eq!(total(&one), total(&many), "{threads} threads");
            }
        }
    }

    /// The validate-first memory fallback must not change any reported cut.
    #[test]
    fn dedup_mode_does_not_change_cut_counts() {
        let blocks = small_corpus();
        let reference = run_batch(&blocks, &config(2));
        let mut cfg = config(2);
        cfg.dedup_mode = DedupMode::ValidateFirst;
        cfg.par_threshold = 1;
        let fallback = run_batch(&blocks, &cfg);
        for (a, b) in reference.iter().zip(&fallback) {
            assert_eq!(
                a.enumeration.cuts.len(),
                b.enumeration.cuts.len(),
                "{}",
                a.name
            );
            assert_eq!(
                a.enumeration.stats.valid_cuts,
                b.enumeration.stats.valid_cuts
            );
        }
    }

    #[test]
    fn selection_is_attached_when_requested() {
        let blocks = small_corpus();
        let mut cfg = config(2);
        cfg.select = Some(SelectionConfig {
            max_instructions: 3,
            ports_in: 4,
            ports_out: 2,
        });
        let outcomes = run_batch(&blocks, &cfg);
        assert!(outcomes.iter().all(|o| o.selection.is_some()));
        assert!(outcomes.iter().any(|o| !o
            .selection
            .as_ref()
            .expect("selection requested")
            .chosen
            .is_empty()));
        for outcome in &outcomes {
            let sel = outcome.selection.as_ref().expect("selection requested");
            assert!(sel.chosen.len() <= 3);
        }
    }

    #[test]
    fn budget_bounds_every_block() {
        let blocks = small_corpus();
        let mut cfg = config(3);
        cfg.budget = Some(10);
        for outcome in run_batch(&blocks, &cfg) {
            assert!(outcome.enumeration.stats.search_nodes <= 10);
        }
        // Fanned out, the block budget is split across the static tasks, so the
        // block total still cannot exceed the budget (plus per-task rounding) —
        // per-task budgets are far below the split threshold, so no task splits.
        cfg.par_threshold = 1;
        cfg.budget = Some(32);
        for outcome in run_batch(&blocks, &cfg) {
            assert!(
                outcome.enumeration.stats.search_nodes <= 32 + outcome.tasks,
                "{}: {} nodes over budget",
                outcome.name,
                outcome.enumeration.stats.search_nodes
            );
        }
    }

    #[test]
    fn empty_corpus_yields_no_outcomes() {
        assert!(run_batch(&[], &config(4)).is_empty());
    }
}
