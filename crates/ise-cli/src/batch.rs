//! The sharded batch runner: blocks × worker threads over a shared work queue.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ise_corpus::CorpusBlock;
use ise_enum::{
    incremental_cuts_bounded, select_ises, Constraints, EnumContext, Enumeration, PruningConfig,
    Selection,
};
use ise_graph::LatencyModel;

/// Selection settings for `ise select` (enumeration settings live in [`BatchConfig`]).
#[derive(Clone, Debug)]
pub struct SelectionConfig {
    /// Maximum number of custom instructions chosen per block.
    pub max_instructions: usize,
    /// Register-file read ports available per cycle for operand transfer.
    pub ports_in: usize,
    /// Register-file write ports available per cycle for result transfer.
    pub ports_out: usize,
}

/// Configuration of one batch run.
#[derive(Clone, Debug)]
pub struct BatchConfig {
    /// The microarchitectural constraints (`Nin`, `Nout`).
    pub constraints: Constraints,
    /// The §5.3 pruning techniques to apply (all, for production runs).
    pub pruning: PruningConfig,
    /// Optional per-block search budget (`None` = unbounded).
    pub budget: Option<usize>,
    /// Number of worker threads; clamped to at least 1.
    pub threads: usize,
    /// When set, each block additionally runs the greedy ISE selection.
    pub select: Option<SelectionConfig>,
}

impl BatchConfig {
    /// An unbounded single-threaded enumerate-only configuration.
    pub fn new(constraints: Constraints) -> Self {
        BatchConfig {
            constraints,
            pruning: PruningConfig::all(),
            budget: None,
            threads: 1,
            select: None,
        }
    }
}

/// What one block produced: the enumeration (and optional selection) plus the block's
/// structural counts for reporting.
#[derive(Clone, Debug)]
pub struct BlockOutcome {
    /// Position of the block in the loaded corpus (outcomes are returned sorted by
    /// this, so results are deterministic for any thread count).
    pub index: usize,
    /// The block's corpus name.
    pub name: String,
    /// Vertex count of the block.
    pub nodes: usize,
    /// Edge count of the block.
    pub edges: usize,
    /// Forbidden-vertex count of the block (memory operations, calls, user marks).
    pub forbidden: usize,
    /// The enumeration result.
    pub enumeration: Enumeration,
    /// The greedy selection, when [`BatchConfig::select`] was set.
    pub selection: Option<Selection>,
    /// Wall time this block took on its worker (context build included).
    pub elapsed: Duration,
}

/// Runs the batch: every block of `blocks` through the engine, sharded across
/// [`BatchConfig::threads`] workers that pull indices from a shared queue (so a few
/// large blocks do not serialize behind a static partition).
///
/// Each worker owns its per-block [`EnumContext`] and search state — the engine's
/// `Send` audit guarantees nothing is shared mutably — and enumeration is
/// deterministic per block, so the outcome (sorted by block index) is identical for
/// every thread count; only the wall times differ.
pub fn run_batch(blocks: &[CorpusBlock], config: &BatchConfig) -> Vec<BlockOutcome> {
    let queue: Mutex<VecDeque<usize>> = Mutex::new((0..blocks.len()).collect());
    let results: Mutex<Vec<BlockOutcome>> = Mutex::new(Vec::with_capacity(blocks.len()));
    let workers = config.threads.max(1).min(blocks.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().expect("work queue poisoned").pop_front();
                let Some(index) = next else { break };
                let outcome = process_block(&blocks[index], index, config);
                results.lock().expect("result sink poisoned").push(outcome);
            });
        }
    });
    let mut outcomes = results.into_inner().expect("result sink poisoned");
    outcomes.sort_by_key(|outcome| outcome.index);
    outcomes
}

fn process_block(block: &CorpusBlock, index: usize, config: &BatchConfig) -> BlockOutcome {
    let start = Instant::now();
    let ctx = EnumContext::new(block.dfg.clone());
    let enumeration =
        incremental_cuts_bounded(&ctx, &config.constraints, &config.pruning, config.budget);
    let selection = config.select.as_ref().map(|sel| {
        select_ises(
            &ctx,
            &enumeration.cuts,
            &LatencyModel::default(),
            sel.ports_in,
            sel.ports_out,
            sel.max_instructions,
        )
    });
    BlockOutcome {
        index,
        name: block.dfg.name().to_string(),
        nodes: block.dfg.len(),
        edges: block.dfg.edge_count(),
        forbidden: block.dfg.forbidden().len(),
        enumeration,
        selection,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_enum::run_on_graph;
    use ise_workloads::random_dag::{random_dag, RandomDagConfig};

    fn small_corpus() -> Vec<CorpusBlock> {
        [(16usize, 0usize), (24, 10), (32, 20), (36, 15), (28, 5)]
            .into_iter()
            .enumerate()
            .map(|(i, (nodes, mem_pct))| CorpusBlock {
                dfg: random_dag(
                    &RandomDagConfig::new(nodes).with_memory_ratio(mem_pct as f64 / 100.0),
                    90 + i as u64,
                ),
                meta: Vec::new(),
            })
            .collect()
    }

    fn config(threads: usize) -> BatchConfig {
        BatchConfig {
            threads,
            ..BatchConfig::new(Constraints::new(4, 2).unwrap())
        }
    }

    /// The batch driver must report exactly what a direct engine run reports,
    /// block for block (the ISSUE's CLI-vs-engine cross-check).
    #[test]
    fn batch_outcomes_match_direct_engine_runs() {
        let blocks = small_corpus();
        let cfg = config(2);
        let outcomes = run_batch(&blocks, &cfg);
        assert_eq!(outcomes.len(), blocks.len());
        for (outcome, block) in outcomes.iter().zip(&blocks) {
            let direct = run_on_graph(&block.dfg, &cfg.constraints, &cfg.pruning, None);
            assert_eq!(outcome.name, block.dfg.name());
            assert_eq!(
                outcome.enumeration.cuts.len(),
                direct.cuts.len(),
                "cut count differs on {}",
                outcome.name
            );
            assert_eq!(
                outcome.enumeration.stats.search_nodes, direct.stats.search_nodes,
                "search trace differs on {}",
                outcome.name
            );
        }
    }

    /// Thread count must not change results — only wall time (acceptance criterion:
    /// identical aggregate counts for N=1 and N=8).
    #[test]
    fn thread_count_does_not_change_results() {
        let blocks = small_corpus();
        let one = run_batch(&blocks, &config(1));
        for threads in [2, 8] {
            let many = run_batch(&blocks, &config(threads));
            assert_eq!(one.len(), many.len());
            for (a, b) in one.iter().zip(&many) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.name, b.name);
                assert_eq!(a.enumeration.cuts.len(), b.enumeration.cuts.len());
                assert_eq!(
                    a.enumeration.stats.candidates_checked,
                    b.enumeration.stats.candidates_checked
                );
            }
            let total =
                |o: &[BlockOutcome]| o.iter().map(|b| b.enumeration.cuts.len()).sum::<usize>();
            assert_eq!(total(&one), total(&many), "{threads} threads");
        }
    }

    #[test]
    fn selection_is_attached_when_requested() {
        let blocks = small_corpus();
        let mut cfg = config(2);
        cfg.select = Some(SelectionConfig {
            max_instructions: 3,
            ports_in: 4,
            ports_out: 2,
        });
        let outcomes = run_batch(&blocks, &cfg);
        assert!(outcomes.iter().all(|o| o.selection.is_some()));
        assert!(outcomes.iter().any(|o| !o
            .selection
            .as_ref()
            .expect("selection requested")
            .chosen
            .is_empty()));
        for outcome in &outcomes {
            let sel = outcome.selection.as_ref().expect("selection requested");
            assert!(sel.chosen.len() <= 3);
        }
    }

    #[test]
    fn budget_bounds_every_block() {
        let blocks = small_corpus();
        let mut cfg = config(3);
        cfg.budget = Some(10);
        for outcome in run_batch(&blocks, &cfg) {
            assert!(outcome.enumeration.stats.search_nodes <= 10);
        }
    }

    #[test]
    fn empty_corpus_yields_no_outcomes() {
        assert!(run_batch(&[], &config(4)).is_empty());
    }
}
