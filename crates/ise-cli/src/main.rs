//! The `ise` binary: thin dispatch over [`ise_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match ise_cli::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("ise: {error}");
            ExitCode::FAILURE
        }
    }
}
