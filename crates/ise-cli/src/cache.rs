//! Content-addressed result caching for the `ise serve` daemon.
//!
//! Four pieces, all dependency-free (DESIGN.md §7):
//!
//! * [`content_hash`] — a stable 128-bit hex digest over a list of byte strings,
//!   computed with two independent FNV-1a accumulators. Stability matters more than
//!   cryptographic strength here: the same inputs must produce the same key across
//!   processes and restarts (so an on-disk cache written yesterday still hits
//!   today), which rules out `std`'s randomly seeded hashers.
//! * [`LruCache`] — a bounded, least-recently-used map from hex keys to values,
//!   with hit/miss/eviction counters. The bound is a hard invariant: the cache
//!   never holds more than `cap` entries (property-tested in `tests/serve.rs`).
//! * [`ResponseCache`] — an [`LruCache`] over rendered response payloads, backed by
//!   an optional on-disk directory (`--cache-dir`) so a restarted daemon answers
//!   warm. Disk I/O is strictly best-effort: a read or write failure degrades to a
//!   miss, never to a request error.
//! * [`SingleFlight`] — request coalescing for the concurrent daemon: N threads
//!   missing the cache on the *same* key elect exactly one leader to compute while
//!   the rest block on the leader's published outcome, so a thundering herd of
//!   identical cold requests triggers exactly one `run_batch` (DESIGN.md §7.4).
//!
//! Cache *keys* are derived from semantic request content only — canonical `.dfg`
//! bytes ([`ise_corpus::CorpusBlock::canonical_bytes`]) plus the flag tokens of
//! `ise_enum` ([`ise_enum::Constraints::cache_token`] and friends) — never from
//! wall-clock time, thread counts or file paths. Cache *values* are fully rendered
//! deterministic payloads, so a hit is a string lookup and the cold and warm bytes
//! are identical by construction — which is also what makes coalescing sound: a
//! follower returning the leader's bytes is indistinguishable from recomputing.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Stable 128-bit content hash of `parts`, as 32 lowercase hex characters.
///
/// Each part is length-prefixed before hashing, so `["ab", "c"]` and `["a", "bc"]`
/// digest differently. Two FNV-1a 64-bit accumulators with different offset bases
/// (the standard basis and its xor with a fixed constant) run over the same stream;
/// their concatenation is the key. Deterministic across processes, platforms and
/// releases — the contract an on-disk cache needs.
///
/// # Example
///
/// ```
/// use ise_cli::cache::content_hash;
///
/// let key = content_hash(&["dfg a\nend\n", "nin=4;nout=2"]);
/// assert_eq!(key.len(), 32);
/// assert_eq!(key, content_hash(&["dfg a\nend\n", "nin=4;nout=2"]));
/// assert_ne!(key, content_hash(&["dfg a\nend\n", "nin=4;nout=3"]));
/// assert_ne!(content_hash(&["ab", "c"]), content_hash(&["a", "bc"]));
/// ```
pub fn content_hash(parts: &[&str]) -> String {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const TWIST: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut lo = OFFSET;
    let mut hi = OFFSET ^ TWIST;
    let mut eat = |byte: u8| {
        lo = (lo ^ u64::from(byte)).wrapping_mul(PRIME);
        hi = (hi ^ u64::from(byte)).wrapping_mul(PRIME);
        hi = hi.rotate_left(1);
    };
    for part in parts {
        for byte in (part.len() as u64).to_le_bytes() {
            eat(byte);
        }
        for &byte in part.as_bytes() {
            eat(byte);
        }
    }
    format!("{lo:016x}{hi:016x}")
}

/// Hit/miss accounting of one cache, reported by the daemon's `stats` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups answered by neither memory nor disk.
    pub misses: u64,
    /// Lookups missed in memory but recovered from the disk directory.
    pub disk_hits: u64,
    /// Entries inserted.
    pub puts: u64,
    /// Entries dropped to keep the cache within its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Publishes this snapshot into a metrics registry as gauges named
    /// `ise_cache_<field>{cache="<cache>"}` (e.g.
    /// `ise_cache_hits{cache="responses"}`) — the daemon routes each of its
    /// caches' counters through the shared registry this way before rendering
    /// `GET /v1/metrics`.
    pub fn publish(&self, rec: &dyn ise_obs::Recorder, cache: &str) {
        let gauge = |field: &str, value: u64| {
            rec.set_gauge(&format!("ise_cache_{field}{{cache=\"{cache}\"}}"), value);
        };
        gauge("hits", self.hits);
        gauge("misses", self.misses);
        gauge("disk_hits", self.disk_hits);
        gauge("puts", self.puts);
        gauge("evictions", self.evictions);
    }
}

/// A bounded least-recently-used map from string keys to values.
///
/// `get` and `put` both refresh recency; inserting beyond the capacity evicts the
/// least recently used entry first. With capacity 0 the cache stores nothing and
/// every lookup misses — the `--cache-cap 0` off switch.
///
/// The recency list is a plain `Vec` scanned linearly: capacities here are request
/// caches (tens to a few thousand entries), where the scan is noise next to
/// rendering a single response.
#[derive(Clone, Debug)]
pub struct LruCache<V> {
    map: HashMap<String, V>,
    recency: Vec<String>,
    cap: usize,
    stats: CacheStats,
}

impl<V> LruCache<V> {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            recency: Vec::new(),
            cap,
            stats: CacheStats::default(),
        }
    }

    /// The capacity this cache was created with.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of entries currently held (`<= cap()` always).
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, marking it most recently used on a hit.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        if self.map.contains_key(key) {
            self.stats.hits += 1;
            self.touch(key);
            self.map.get(key)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Inserts `key -> value` (refreshing recency on overwrite), evicting the least
    /// recently used entries while the cache exceeds its capacity.
    pub fn put(&mut self, key: &str, value: V) {
        self.stats.puts += 1;
        if self.cap == 0 {
            return;
        }
        if self.map.insert(key.to_string(), value).is_none() {
            self.recency.push(key.to_string());
        } else {
            self.touch(key);
        }
        while self.map.len() > self.cap {
            let victim = self.recency.remove(0);
            self.map.remove(&victim);
            self.stats.evictions += 1;
        }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            let k = self.recency.remove(pos);
            self.recency.push(k);
        }
    }
}

/// The daemon's response cache: a bounded in-memory [`LruCache`] over rendered
/// payload strings, optionally backed by a directory of `<key>.json` files.
///
/// Disk reads re-populate memory (and count as [`CacheStats::disk_hits`]); disk
/// writes happen on every insert. All disk I/O is best-effort — an unreadable or
/// unwritable cache directory silently degrades the daemon to memory-only caching,
/// because caching must never turn a computable request into an error.
#[derive(Debug)]
pub struct ResponseCache {
    memory: LruCache<String>,
    dir: Option<PathBuf>,
}

impl ResponseCache {
    /// A cache holding at most `cap` payloads in memory, mirrored to `dir` when
    /// given (the directory is created eagerly, best-effort).
    pub fn new(cap: usize, dir: Option<PathBuf>) -> Self {
        if let Some(dir) = &dir {
            let _ = std::fs::create_dir_all(dir);
        }
        ResponseCache {
            memory: LruCache::new(cap),
            dir,
        }
    }

    /// The accounting so far (disk hits included).
    pub fn stats(&self) -> CacheStats {
        self.memory.stats()
    }

    /// The in-memory capacity this cache was created with.
    pub fn cap(&self) -> usize {
        self.memory.cap()
    }

    /// Number of payloads currently in memory.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// Whether the in-memory cache holds no payloads.
    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }

    /// Looks up `key` in memory without touching the hit/miss counters or the
    /// recency order. The single-flight re-check hook: a flight leader probes
    /// once more before computing (a racing leader may have filled the cache as
    /// its flight retired), and that probe must not distort the accounting the
    /// per-request `get` already did.
    pub fn peek(&self, key: &str) -> Option<String> {
        self.memory.map.get(key).cloned()
    }

    /// Looks up `key` in memory, then on disk. A disk hit is promoted into memory.
    pub fn get(&mut self, key: &str) -> Option<String> {
        if let Some(hit) = self.memory.get(key) {
            return Some(hit.clone());
        }
        let path = self.dir.as_ref()?.join(format!("{key}.json"));
        let payload = std::fs::read_to_string(path).ok()?;
        self.memory.stats.disk_hits += 1;
        self.memory.put(key, payload.clone());
        Some(payload)
    }

    /// Stores `key -> payload` in memory and, when configured, on disk.
    pub fn put(&mut self, key: &str, payload: &str) {
        self.memory.put(key, payload.to_string());
        if let Some(dir) = &self.dir {
            let _ = std::fs::write(dir.join(format!("{key}.json")), payload);
        }
    }
}

/// Counters of one [`SingleFlight`], reported by the daemon's `stats` op.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FlightStats {
    /// Times a caller became the leader of a new flight (one per distinct
    /// in-flight key — the number of computations that actually ran).
    pub leaders: u64,
    /// Times a caller joined an existing flight and waited for its leader's
    /// outcome instead of computing — the work the coalescing saved.
    pub coalesced: u64,
}

impl FlightStats {
    /// Publishes this snapshot into a metrics registry as gauges
    /// (`ise_flight_leaders`, `ise_flight_coalesced`).
    pub fn publish(&self, rec: &dyn ise_obs::Recorder) {
        rec.set_gauge("ise_flight_leaders", self.leaders);
        rec.set_gauge("ise_flight_coalesced", self.coalesced);
    }
}

/// One in-flight computation: the slot followers block on until the leader
/// publishes. `outcome` is `None` while the computation runs.
#[derive(Debug, Default)]
struct FlightSlot {
    outcome: Mutex<Option<Result<String, String>>>,
    ready: Condvar,
}

/// The caller's role in a flight, returned by [`SingleFlight::join`].
pub enum Flight<'a> {
    /// This caller must compute and then [`FlightGuard::publish`] the outcome.
    Leader(FlightGuard<'a>),
    /// Another caller was already computing this key; this is its published
    /// outcome (`Ok(payload)` or `Err(error message)`).
    Coalesced(Result<String, String>),
}

/// The leader's obligation token: publishes the outcome to every waiting
/// follower and retires the flight. Dropping the guard without publishing
/// (a panic on the compute path) publishes an error so followers never hang.
pub struct FlightGuard<'a> {
    flights: &'a SingleFlight,
    key: String,
    slot: Arc<FlightSlot>,
    published: bool,
}

impl FlightGuard<'_> {
    /// Publishes the computation's outcome, waking every coalesced follower, and
    /// removes the flight so later requests for the key start fresh (they will
    /// hit the response cache the leader filled before publishing).
    pub fn publish(mut self, outcome: Result<String, String>) {
        self.resolve(outcome);
    }

    fn resolve(&mut self, outcome: Result<String, String>) {
        if self.published {
            return;
        }
        self.published = true;
        // Retire the flight *before* waking followers: a new request arriving now
        // starts its own flight (or hits the cache) instead of reading a slot that
        // is about to be dropped by the last follower.
        self.flights
            .flights
            .lock()
            .expect("flight map lock")
            .remove(&self.key);
        let mut published = self.slot.outcome.lock().expect("flight slot lock");
        *published = Some(outcome);
        self.slot.ready.notify_all();
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.resolve(Err("the computation leading this flight failed".to_string()));
    }
}

/// Coalesces concurrent computations of the same cache key: the first caller to
/// [`SingleFlight::join`] a key becomes the **leader** (and must compute, fill the
/// cache, and [`FlightGuard::publish`]), every concurrent caller for the same key
/// becomes a **follower** and blocks until the leader publishes. Keys are
/// content hashes, so two requests share a flight exactly when their stripped
/// responses would be byte-identical anyway — coalescing is observably pure.
///
/// # Example
///
/// ```
/// use ise_cli::cache::{Flight, SingleFlight};
///
/// let flights = SingleFlight::default();
/// let Flight::Leader(guard) = flights.join("key") else {
///     panic!("first join leads");
/// };
/// guard.publish(Ok("payload".to_string()));
/// assert_eq!(flights.stats().leaders, 1);
/// ```
#[derive(Debug, Default)]
pub struct SingleFlight {
    flights: Mutex<HashMap<String, Arc<FlightSlot>>>,
    leaders: AtomicU64,
    coalesced: AtomicU64,
}

impl SingleFlight {
    /// Joins the flight for `key`: the first concurrent caller leads (and must
    /// publish through the returned guard), the rest block here until the leader
    /// publishes and receive its outcome.
    pub fn join(&self, key: &str) -> Flight<'_> {
        let slot = {
            let mut flights = self.flights.lock().expect("flight map lock");
            match flights.get(key) {
                Some(slot) => Arc::clone(slot),
                None => {
                    let slot = Arc::new(FlightSlot::default());
                    flights.insert(key.to_string(), Arc::clone(&slot));
                    self.leaders.fetch_add(1, Ordering::Relaxed);
                    return Flight::Leader(FlightGuard {
                        flights: self,
                        key: key.to_string(),
                        slot,
                        published: false,
                    });
                }
            }
        };
        self.coalesced.fetch_add(1, Ordering::Relaxed);
        let mut outcome = slot.outcome.lock().expect("flight slot lock");
        while outcome.is_none() {
            outcome = slot
                .ready
                .wait(outcome)
                .expect("flight leader never poisons the slot");
        }
        Flight::Coalesced(outcome.clone().expect("loop exits only once published"))
    }

    /// The accounting so far.
    pub fn stats(&self) -> FlightStats {
        FlightStats {
            leaders: self.leaders.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_sensitive() {
        // Pinned value: the key doubles as an on-disk filename, so it must never
        // drift between releases.
        assert_eq!(content_hash(&[]), "cbf29ce48422232555c5e55dfb685f30");
        assert_eq!(content_hash(&["a"]), content_hash(&["a"]));
        assert_ne!(content_hash(&["a"]), content_hash(&["b"]));
        assert_ne!(content_hash(&["a", "b"]), content_hash(&["ab"]));
        assert_ne!(content_hash(&["", "a"]), content_hash(&["a", ""]));
        assert!(content_hash(&["x"]).chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn lru_tracks_recency_and_evicts_oldest() {
        let mut cache = LruCache::new(2);
        cache.put("a", 1);
        cache.put("b", 2);
        assert_eq!(cache.get("a"), Some(&1), "refreshes a");
        cache.put("c", 3);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("b"), None, "b was least recently used");
        assert_eq!(cache.get("a"), Some(&1));
        assert_eq!(cache.get("c"), Some(&3));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.puts, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn lru_overwrite_refreshes_without_growing() {
        let mut cache = LruCache::new(2);
        cache.put("a", 1);
        cache.put("b", 2);
        cache.put("a", 10);
        assert_eq!(cache.len(), 2);
        cache.put("c", 3);
        assert_eq!(cache.get("b"), None, "overwriting a refreshed it past b");
        assert_eq!(cache.get("a"), Some(&10));
    }

    #[test]
    fn zero_capacity_disables_storage() {
        let mut cache = LruCache::new(0);
        cache.put("a", 1);
        assert!(cache.is_empty());
        assert_eq!(cache.get("a"), None);
        assert_eq!(
            cache.stats().evictions,
            0,
            "nothing stored, nothing evicted"
        );
    }

    #[test]
    fn response_cache_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ise-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut cache = ResponseCache::new(4, Some(dir.clone()));
            cache.put("k1", "{\"x\":1}");
            assert_eq!(cache.get("k1").as_deref(), Some("{\"x\":1}"));
        }
        // A fresh (restarted) cache recovers the payload from disk.
        let mut cache = ResponseCache::new(4, Some(dir.clone()));
        assert!(cache.is_empty());
        assert_eq!(cache.get("k1").as_deref(), Some("{\"x\":1}"));
        assert_eq!(cache.stats().disk_hits, 1);
        assert_eq!(cache.len(), 1, "disk hit promoted into memory");
        assert_eq!(cache.get("absent"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn response_cache_without_dir_is_memory_only() {
        let mut cache = ResponseCache::new(1, None);
        cache.put("a", "1");
        cache.put("b", "2");
        assert_eq!(cache.get("a"), None, "evicted, and no disk to recover from");
        assert_eq!(cache.get("b").as_deref(), Some("2"));
    }

    #[test]
    fn single_flight_coalesces_concurrent_joins() {
        let flights = Arc::new(SingleFlight::default());
        let Flight::Leader(guard) = flights.join("k") else {
            panic!("first join must lead");
        };
        let followers: Vec<_> = (0..4)
            .map(|_| {
                let flights = Arc::clone(&flights);
                std::thread::spawn(move || match flights.join("k") {
                    Flight::Coalesced(outcome) => outcome,
                    Flight::Leader(_) => panic!("joined while a leader was in flight"),
                })
            })
            .collect();
        // Wait until every follower is registered on the flight before publishing.
        while flights.stats().coalesced < 4 {
            std::thread::yield_now();
        }
        guard.publish(Ok("payload".to_string()));
        for follower in followers {
            assert_eq!(follower.join().unwrap(), Ok("payload".to_string()));
        }
        let stats = flights.stats();
        assert_eq!(stats.leaders, 1, "one computation for five joins");
        assert_eq!(stats.coalesced, 4);
        // The flight retired: the next join leads a fresh computation.
        assert!(matches!(flights.join("k"), Flight::Leader(_)));
        assert_eq!(flights.stats().leaders, 2);
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let flights = SingleFlight::default();
        let Flight::Leader(a) = flights.join("a") else {
            panic!("a leads");
        };
        let Flight::Leader(b) = flights.join("b") else {
            panic!("b leads too — different key, different flight");
        };
        a.publish(Ok("ra".to_string()));
        b.publish(Err("eb".to_string()));
        assert_eq!(
            flights.stats(),
            FlightStats {
                leaders: 2,
                coalesced: 0
            }
        );
    }

    #[test]
    fn dropped_leader_publishes_an_error_instead_of_hanging_followers() {
        let flights = Arc::new(SingleFlight::default());
        let guard = match flights.join("k") {
            Flight::Leader(guard) => guard,
            Flight::Coalesced(_) => panic!("first join must lead"),
        };
        let follower = {
            let flights = Arc::clone(&flights);
            std::thread::spawn(move || match flights.join("k") {
                Flight::Coalesced(outcome) => outcome,
                Flight::Leader(_) => panic!("joined while a leader was in flight"),
            })
        };
        while flights.stats().coalesced < 1 {
            std::thread::yield_now();
        }
        drop(guard); // the leader's computation panicked / bailed without publishing
        let outcome = follower.join().unwrap();
        assert!(outcome.is_err(), "followers must see an error, not hang");
    }
}
