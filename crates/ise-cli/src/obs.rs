//! CLI-side observability plumbing: the shared metrics registry behind
//! `--trace-out` / `--progress`, the Chrome-trace file writer, and the stderr
//! heartbeat thread.
//!
//! The registry is created only when a flag asks for it; otherwise every layer
//! sees `None` and pays a single branch per hook. Nothing recorded here ever
//! reaches `--out` payloads — the trace goes to its own file and the heartbeat
//! to stderr, so stripped-JSON byte-identity holds with recording on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use ise_obs::MetricsRegistry;

use crate::CliError;

/// Builds the run's registry when `--trace-out` or `--progress` asked for one.
pub fn registry_for(trace_out: Option<&str>, progress: bool) -> Option<Arc<MetricsRegistry>> {
    (trace_out.is_some() || progress).then(|| Arc::new(MetricsRegistry::new()))
}

/// Writes the registry's buffered spans as Chrome trace-event JSON to `path`
/// (or stdout for `-`), reporting failures as [`CliError::Io`].
pub fn write_trace(path: &str, registry: &MetricsRegistry) -> Result<(), CliError> {
    let trace = registry.render_chrome_trace() + "\n";
    if path == "-" {
        print!("{trace}");
        return Ok(());
    }
    std::fs::write(path, trace).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })
}

/// A background thread printing `--progress` heartbeat lines on stderr every
/// ~500ms while a batch runs. [`Heartbeat::stop`] (or drop) joins it; a final
/// line is printed on stop so short runs still report once.
pub struct Heartbeat {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the heartbeat over `registry` when `progress` is set.
    pub fn start(registry: Option<Arc<MetricsRegistry>>, progress: bool) -> Option<Self> {
        let registry = registry.filter(|_| progress)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(500));
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                eprintln!("{}", heartbeat_line(&registry));
            }
            eprintln!("{}", heartbeat_line(&registry));
        });
        Some(Heartbeat {
            stop,
            handle: Some(handle),
        })
    }

    /// Stops the heartbeat thread and waits for its final line.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        self.finish();
    }
}

fn heartbeat_line(registry: &MetricsRegistry) -> String {
    format!(
        "ise: progress blocks={} runs={} nodes={} cuts={} tasks={} steals={}",
        registry.counter_value("ise_batch_blocks_total"),
        registry.counter_value("ise_engine_runs_total"),
        registry.counter_value("ise_engine_search_nodes_total"),
        registry.counter_value("ise_engine_valid_cuts_total"),
        registry.counter_value("ise_pool_tasks_total"),
        registry.counter_value("ise_pool_steals_total"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_created_only_on_demand() {
        assert!(registry_for(None, false).is_none());
        assert!(registry_for(Some("t.json"), false).is_some());
        assert!(registry_for(None, true).is_some());
    }

    #[test]
    fn heartbeat_requires_progress_and_stops_cleanly() {
        assert!(Heartbeat::start(None, true).is_none());
        let registry = Arc::new(MetricsRegistry::new());
        assert!(Heartbeat::start(Some(Arc::clone(&registry)), false).is_none());
        let hb = Heartbeat::start(Some(registry), true).expect("progress heartbeat");
        hb.stop();
    }

    #[test]
    fn write_trace_produces_a_loadable_file() {
        use ise_obs::Recorder;
        let registry = MetricsRegistry::new();
        let token = registry.span_begin("test", "span");
        registry.span_end(token);
        let path = std::env::temp_dir().join(format!("ise-obs-trace-{}.json", std::process::id()));
        write_trace(path.to_str().unwrap(), &registry).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"traceEvents\":["));
        let parsed = ise_bench::json::Json::parse(text.trim()).unwrap();
        assert!(parsed.get("traceEvents").is_some());
        std::fs::remove_file(&path).unwrap();
    }
}
