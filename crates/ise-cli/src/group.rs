//! Corpus-wide grouping and global selection: the `ise group` subcommand and the
//! `ise select --global` mode.
//!
//! Both start from the batch enumeration ([`crate::batch::run_batch`]): every
//! block's cut list is canonicalized ([`ise_canon::canonicalize_cuts`]) — in
//! parallel across blocks, since coding is pure per-block work — and merged into a
//! [`PatternIndex`] strictly in corpus order. The index is therefore a
//! deterministic function of the corpus and the enumeration flags: `--threads`
//! never changes a byte of the JSON output (the CI grouping smoke diffs stripped
//! runs at different thread counts).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::batch::BlockOutcome;
use crate::report::{batch_json_with, RunMeta};
use ise_bench::json::Json;
use ise_canon::{
    canonicalize_cuts, canonicalize_cuts_memo, select_ises_global, CanonMemo, CodedCut,
    GlobalSelection, GroupConfig, MemoStats, PatternIndex,
};
use ise_corpus::CorpusBlock;
use ise_enum::{Cut, EnumContext};

/// Builds the pattern index over the batch outcomes.
///
/// Canonicalization runs on up to `threads` workers (one block per task; the
/// per-block context is rebuilt for merit estimation); the merge into the index is
/// sequential in block order, so the result is identical for every thread count.
/// Block profile weights come from the `weight` meta key
/// ([`CorpusBlock::weight`]).
///
/// With `memo` given, the workers share it through
/// [`ise_canon::canonicalize_cuts_memo`]: the canonical labeler runs once per
/// distinct raw interface graph corpus-wide instead of once per cut. The memo is
/// observably pure — the returned index (and any JSON rendered from it) is
/// byte-identical with and without one, at any thread count (pinned by
/// `tests/grouping_pipeline.rs` and the CI grouping smoke).
pub fn group_outcomes(
    blocks: &[CorpusBlock],
    outcomes: &[BlockOutcome],
    config: &GroupConfig,
    threads: usize,
    memo: Option<&CanonMemo>,
) -> PatternIndex {
    let coded: Vec<OnceLock<Vec<CodedCut>>> =
        (0..outcomes.len()).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    let workers = threads.max(1).min(outcomes.len().max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(outcome) = outcomes.get(i) else {
                    break;
                };
                let ctx = EnumContext::new(blocks[outcome.index].dfg.clone());
                let cuts = &outcome.enumeration.cuts;
                let block_coded = match memo {
                    Some(memo) => canonicalize_cuts_memo(&ctx, cuts, config, memo),
                    None => canonicalize_cuts(&ctx, cuts, config),
                };
                coded[i]
                    .set(block_coded)
                    .expect("each block is coded exactly once");
            });
        }
    });
    let mut index = PatternIndex::new(config.clone());
    for (outcome, cell) in outcomes.iter().zip(coded) {
        let block_coded = cell.into_inner().expect("every block was coded");
        index.add_coded_block(block_coded, blocks[outcome.index].weight());
    }
    index
}

/// Renders the machine-readable result of `ise group`
/// (schema `ise-cli/group/v1`): run metadata, one light row per block, and the
/// pattern table ranked by profile-weighted potential saving (first-seen order on
/// ties). Patterns with fewer than `min_count` occurrences are omitted from the
/// table but still counted in the aggregate.
///
/// `memo_stats` (from [`CanonMemo::stats`], requested with `--memo-stats`) adds a
/// `memo` object to the run metadata. It is opt-in because the counters are *not*
/// deterministic across thread counts (racing workers may both label the same new
/// graph), unlike every other byte of the document.
pub fn group_json(
    index: &PatternIndex,
    outcomes: &[BlockOutcome],
    meta: &RunMeta,
    min_count: usize,
    memo_stats: Option<&MemoStats>,
) -> Json {
    let blocks: Vec<Json> = outcomes
        .iter()
        .map(|o| {
            Json::object([
                ("name", Json::str(o.name.clone())),
                ("nodes", Json::uint(o.nodes)),
                ("cuts", Json::uint(o.enumeration.cuts.len())),
                ("elapsed_seconds", Json::num(o.elapsed.as_secs_f64())),
            ])
        })
        .collect();
    let shown: Vec<usize> = index
        .ranked()
        .into_iter()
        .filter(|&e| index.entries()[e].static_count() >= min_count)
        .collect();
    let patterns: Vec<Json> = shown
        .iter()
        .map(|&e| {
            let entry = &index.entries()[e];
            Json::object([
                ("hash", Json::str(entry.code.hex())),
                ("size", Json::uint(entry.size)),
                ("inputs", Json::uint(entry.inputs)),
                ("outputs", Json::uint(entry.outputs)),
                ("ops", Json::str(entry.ops.clone())),
                ("count", Json::uint(entry.static_count())),
                ("weighted_count", Json::num(entry.weighted_count)),
                ("blocks", Json::uint(entry.distinct_blocks())),
                (
                    "example_block",
                    Json::str(outcomes[entry.example().block].name.clone()),
                ),
                ("saved_cycles", Json::uint(entry.saved_cycles as usize)),
                (
                    "potential_saved_cycles",
                    Json::UInt(entry.potential_saved_cycles()),
                ),
            ])
        })
        .collect();

    let recurring = index
        .entries()
        .iter()
        .filter(|e| e.static_count() >= 2)
        .count();
    let cross_block = index
        .entries()
        .iter()
        .filter(|e| e.distinct_blocks() >= 2)
        .count();
    let potential: u64 = index
        .entries()
        .iter()
        .map(ise_canon::PatternEntry::potential_saved_cycles)
        .sum();
    let mut fields = vec![
        ("schema", Json::str("ise-cli/group/v1")),
        ("corpus", Json::str(meta.corpus.clone())),
        ("nin", Json::uint(meta.nin)),
        ("nout", Json::uint(meta.nout)),
        ("threads", Json::uint(meta.threads)),
        ("budget", meta.budget.map_or(Json::Null, Json::uint)),
        ("min_count", Json::uint(min_count)),
    ];
    if let Some(stats) = memo_stats {
        fields.push(("memo", memo_stats_json(stats)));
    }
    fields.extend([
        ("blocks", Json::Array(blocks)),
        ("patterns", Json::Array(patterns)),
        (
            "aggregate",
            Json::object([
                ("blocks", Json::uint(outcomes.len())),
                ("total_cuts", Json::uint(index.total_cuts())),
                ("patterns", Json::uint(index.len())),
                ("recurring_patterns", Json::uint(recurring)),
                ("cross_block_patterns", Json::uint(cross_block)),
                ("shown_patterns", Json::uint(shown.len())),
                ("potential_saved_cycles", Json::UInt(potential)),
                ("elapsed_seconds", Json::num(meta.elapsed.as_secs_f64())),
            ]),
        ),
    ]);
    Json::object(fields)
}

/// The `memo` object shared by `--memo-stats` output and the daemon's `stats` op:
/// the four [`MemoStats`] counters, verbatim.
pub fn memo_stats_json(stats: &MemoStats) -> Json {
    Json::object([
        ("raw_hits", Json::UInt(stats.raw_hits)),
        ("fingerprint_hits", Json::UInt(stats.fingerprint_hits)),
        ("labeler_runs", Json::UInt(stats.labeler_runs)),
        ("entries", Json::UInt(stats.entries)),
    ])
}

/// Renders the human-readable markdown companion of [`group_json`], showing at most
/// `top` patterns. `memo_stats` adds one summary line under the heading.
pub fn group_markdown(
    index: &PatternIndex,
    outcomes: &[BlockOutcome],
    meta: &RunMeta,
    min_count: usize,
    top: usize,
    memo_stats: Option<&MemoStats>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "# ISE pattern grouping report\n").expect("writing to a String cannot fail");
    let recurring = index
        .entries()
        .iter()
        .filter(|e| e.static_count() >= 2)
        .count();
    writeln!(
        out,
        "Corpus `{}` — {} blocks, {} cuts, **{} distinct patterns** \
         ({} recurring), Nin={}, Nout={}.\n",
        meta.corpus,
        outcomes.len(),
        index.total_cuts(),
        index.len(),
        recurring,
        meta.nin,
        meta.nout,
    )
    .expect("writing to a String cannot fail");
    if let Some(stats) = memo_stats {
        writeln!(
            out,
            "Canonicalization memo: {} raw hits, {} fingerprint hits, \
             {} labeler runs, {} entries.\n",
            stats.raw_hits, stats.fingerprint_hits, stats.labeler_runs, stats.entries,
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str(
        "| pattern | size | in | out | ops | count | blocks | example | saved/occ | est. saving |\n\
         |---|---:|---:|---:|---|---:|---:|---|---:|---:|\n",
    );
    for &e in index
        .ranked()
        .iter()
        .filter(|&&e| index.entries()[e].static_count() >= min_count)
        .take(top)
    {
        let entry = &index.entries()[e];
        writeln!(
            out,
            "| `{}` | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            entry.code.hex(),
            entry.size,
            entry.inputs,
            entry.outputs,
            entry.ops,
            entry.static_count(),
            entry.distinct_blocks(),
            outcomes[entry.example().block].name,
            entry.saved_cycles,
            entry.potential_saved_cycles(),
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Runs grouping plus corpus-level selection over the batch outcomes and renders
/// the `ise select --global` report (schema `ise-cli/select/v1`, `"mode":"global"`).
///
/// Returns the JSON document, the markdown companion, and the selection itself (for
/// tests and callers that keep processing).
pub fn global_select_report(
    blocks: &[CorpusBlock],
    outcomes: &[BlockOutcome],
    meta: &RunMeta,
    config: &GroupConfig,
    max_patterns: usize,
    memo: Option<&CanonMemo>,
) -> (Json, String, GlobalSelection) {
    let index = group_outcomes(blocks, outcomes, config, meta.threads, memo);
    global_select_report_with_index(&index, blocks, outcomes, meta, config, max_patterns)
}

/// Like [`global_select_report`], but over a caller-provided [`PatternIndex`] —
/// the entry point for callers that already hold (or incrementally maintain) the
/// index, such as the `ise serve` daemon's coding cache, which must not re-code
/// every block on every request. `index` must have been built over exactly
/// `outcomes`' cut lists in corpus order.
pub fn global_select_report_with_index(
    index: &PatternIndex,
    blocks: &[CorpusBlock],
    outcomes: &[BlockOutcome],
    meta: &RunMeta,
    config: &GroupConfig,
    max_patterns: usize,
) -> (Json, String, GlobalSelection) {
    let views: Vec<&[Cut]> = outcomes
        .iter()
        .map(|o| o.enumeration.cuts.as_slice())
        .collect();
    let selection = select_ises_global(index, &views, max_patterns);

    let model = &config.model;
    let software: Vec<u64> = blocks
        .iter()
        .map(|b| {
            b.dfg
                .node_ids()
                .map(|v| u64::from(model.software_cycles(b.dfg.op(v))))
                .sum()
        })
        .collect();

    let patterns: Vec<Json> = selection
        .chosen
        .iter()
        .map(|choice| {
            let entry = &index.entries()[choice.entry];
            Json::object([
                ("hash", Json::str(entry.code.hex())),
                ("size", Json::uint(entry.size)),
                ("ops", Json::str(entry.ops.clone())),
                ("occurrences", Json::uint(entry.static_count())),
                ("placed", Json::uint(choice.placed.len())),
                (
                    "saved_per_occurrence",
                    Json::uint(entry.saved_cycles as usize),
                ),
                ("saved_cycles", Json::UInt(choice.saved_cycles)),
            ])
        })
        .collect();
    let per_block: Vec<Json> = outcomes
        .iter()
        .enumerate()
        .map(|(b, o)| {
            let saved = selection.per_block_saved_cycles[b];
            Json::object([
                ("name", Json::str(o.name.clone())),
                ("saved_cycles", Json::UInt(saved)),
                ("software_cycles", Json::UInt(software[b])),
                ("speedup", Json::num(block_speedup(software[b], saved))),
            ])
        })
        .collect();
    let json = batch_json_with(
        meta,
        outcomes,
        vec![
            ("mode", Json::str("global")),
            ("max_patterns", Json::uint(max_patterns)),
            ("patterns", Json::Array(patterns)),
            ("per_block", Json::Array(per_block)),
        ],
        vec![
            ("total_selected", Json::uint(selection.chosen.len())),
            (
                "total_saved_cycles",
                Json::UInt(selection.total_saved_cycles),
            ),
            (
                "weighted_saved_cycles",
                Json::num(selection.weighted_saved_cycles),
            ),
        ],
    );

    let markdown = global_select_markdown(index, outcomes, meta, &selection, &software);
    (json, markdown, selection)
}

fn global_select_markdown(
    index: &PatternIndex,
    outcomes: &[BlockOutcome],
    meta: &RunMeta,
    selection: &GlobalSelection,
    software: &[u64],
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    writeln!(out, "# ISE global selection report\n").expect("writing to a String cannot fail");
    writeln!(
        out,
        "Corpus `{}` — {} blocks, {} distinct patterns; {} custom instruction{} \
         selected corpus-wide, {} cycles saved per full-corpus execution.\n",
        meta.corpus,
        outcomes.len(),
        index.len(),
        selection.chosen.len(),
        if selection.chosen.len() == 1 { "" } else { "s" },
        selection.total_saved_cycles,
    )
    .expect("writing to a String cannot fail");
    out.push_str(
        "| pattern | ops | occurrences | placed | saved/occ | saved cycles |\n\
         |---|---|---:|---:|---:|---:|\n",
    );
    for choice in &selection.chosen {
        let entry = &index.entries()[choice.entry];
        writeln!(
            out,
            "| `{}` | {} | {} | {} | {} | {} |",
            entry.code.hex(),
            entry.ops,
            entry.static_count(),
            choice.placed.len(),
            entry.saved_cycles,
            choice.saved_cycles,
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("\n| block | software cycles | saved | speedup |\n|---|---:|---:|---:|\n");
    for (b, o) in outcomes.iter().enumerate() {
        let saved = selection.per_block_saved_cycles[b];
        writeln!(
            out,
            "| {} | {} | {} | {:.2}x |",
            o.name,
            software[b],
            saved,
            block_speedup(software[b], saved)
        )
        .expect("writing to a String cannot fail");
    }
    out
}

/// Estimated block speedup: software cycles over the cycles remaining after the
/// saving (mirroring `ise_enum::Selection::block_speedup`, including its saturated
/// everything-saved case).
fn block_speedup(software_cycles: u64, saved_cycles: u64) -> f64 {
    if software_cycles > saved_cycles {
        software_cycles as f64 / (software_cycles - saved_cycles) as f64
    } else {
        software_cycles.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::{run_batch, BatchConfig};
    use ise_corpus::parse_corpus;
    use ise_enum::Constraints;
    use std::time::Duration;

    fn demo_blocks() -> Vec<CorpusBlock> {
        parse_corpus(
            "dfg alpha\nmeta weight 2\nnode 0 in @a\nnode 1 in @x\nnode 2 in @acc\n\
             node 3 mul\nnode 4 add\nedge 0 3\nedge 1 3\nedge 3 4\nedge 2 4\noutput 4\nend\n\
             dfg beta\nnode 0 in @p\nnode 1 in @q\nnode 2 in @r\n\
             node 3 mul\nnode 4 add\nedge 0 3\nedge 1 3\nedge 3 4\nedge 2 4\noutput 4\nend\n",
        )
        .expect("demo corpus parses")
    }

    fn meta(threads: usize) -> RunMeta {
        RunMeta {
            corpus: "demo".into(),
            nin: 3,
            nout: 1,
            threads,
            budget: None,
            par_threshold: crate::batch::DEFAULT_PAR_THRESHOLD,
            split_threshold: Some(crate::batch::DEFAULT_SPLIT_THRESHOLD),
            dedup_mode: ise_enum::DedupMode::DedupFirst,
            select: true,
            elapsed: Duration::from_millis(2),
        }
    }

    fn outcomes(blocks: &[CorpusBlock], threads: usize) -> Vec<BlockOutcome> {
        let mut cfg = BatchConfig::new(Constraints::new(3, 1).unwrap());
        cfg.threads = threads;
        run_batch(blocks, &cfg)
    }

    #[test]
    fn grouping_recognizes_the_recurring_mac_and_weights_it() {
        let blocks = demo_blocks();
        let outcomes = outcomes(&blocks, 2);
        let config = GroupConfig::new(3, 1);
        let index = group_outcomes(&blocks, &outcomes, &config, 2, None);
        let mac = index
            .entries()
            .iter()
            .find(|e| e.ops == "add+mul")
            .expect("MAC pattern recurs");
        assert_eq!(mac.static_count(), 2);
        assert_eq!(mac.distinct_blocks(), 2);
        assert!(
            (mac.weighted_count - 3.0).abs() < 1e-9,
            "weight 2 + weight 1"
        );
    }

    #[test]
    fn grouping_is_thread_count_invariant() {
        let blocks = demo_blocks();
        let config = GroupConfig::new(3, 1);
        let base = group_outcomes(&blocks, &outcomes(&blocks, 1), &config, 1, None);
        for threads in [2, 4] {
            let memo = CanonMemo::new();
            let other = group_outcomes(
                &blocks,
                &outcomes(&blocks, threads),
                &config,
                threads,
                Some(&memo),
            );
            let render = |index: &PatternIndex, t: usize| {
                group_json(index, &outcomes(&blocks, t), &meta(t), 1, None).render()
            };
            // Strip wall times; everything else must match byte for byte.
            let strip = |s: String| {
                s.split(',')
                    .filter(|f| !f.contains("_seconds"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            assert_eq!(strip(render(&base, 1)), strip(render(&other, 1)));
        }
    }

    #[test]
    fn group_json_and_markdown_report_patterns() {
        let blocks = demo_blocks();
        let outcomes = outcomes(&blocks, 1);
        let config = GroupConfig::new(3, 1);
        let index = group_outcomes(&blocks, &outcomes, &config, 1, None);
        let json = group_json(&index, &outcomes, &meta(1), 1, None).render();
        assert!(json.contains(r#""schema":"ise-cli/group/v1""#), "{json}");
        assert!(json.contains(r#""cross_block_patterns":"#), "{json}");
        assert!(json.contains(r#""example_block":"alpha""#), "{json}");
        assert!(!json.contains(r#""memo""#), "memo object is opt-in");
        let md = group_markdown(&index, &outcomes, &meta(1), 1, 10, None);
        assert!(md.starts_with("# ISE pattern grouping report"));
        assert!(md.contains("| pattern | size |"));
        assert!(md.contains("add+mul"));
        assert!(!md.contains("Canonicalization memo"));
        // min_count filters the table (every pattern of the twin-block demo corpus
        // occurs exactly twice, so a threshold of 3 empties it).
        let filtered = group_json(&index, &outcomes, &meta(1), 3, None).render();
        assert!(filtered.contains(r#""min_count":3"#));
        assert!(filtered.contains(r#""shown_patterns":0"#), "{filtered}");
        assert!(filtered.len() < json.len());
    }

    #[test]
    fn memoized_grouping_renders_identical_json_and_reports_stats() {
        let blocks = demo_blocks();
        let outcomes = outcomes(&blocks, 1);
        let config = GroupConfig::new(3, 1);
        let plain = group_outcomes(&blocks, &outcomes, &config, 1, None);
        let memo = CanonMemo::new();
        let memoized = group_outcomes(&blocks, &outcomes, &config, 1, Some(&memo));
        assert_eq!(
            group_json(&plain, &outcomes, &meta(1), 1, None).render(),
            group_json(&memoized, &outcomes, &meta(1), 1, None).render(),
            "memoization must be observably pure"
        );
        let stats = memo.stats();
        assert!(stats.raw_hits > 0, "the MAC recurs across the two blocks");
        assert!(stats.labeler_runs < plain.total_cuts() as u64);
        let with_stats = group_json(&memoized, &outcomes, &meta(1), 1, Some(&stats)).render();
        assert!(
            with_stats.contains(r#""memo":{"raw_hits":"#),
            "{with_stats}"
        );
        assert!(with_stats.contains(r#""labeler_runs":"#), "{with_stats}");
        let md = group_markdown(&memoized, &outcomes, &meta(1), 1, 10, Some(&stats));
        assert!(md.contains("Canonicalization memo:"), "{md}");
    }

    #[test]
    fn global_selection_credits_recurrence_end_to_end() {
        let blocks = demo_blocks();
        let outcomes = outcomes(&blocks, 1);
        let config = GroupConfig::new(3, 1);
        let (json, md, selection) = global_select_report(
            &blocks,
            &outcomes,
            &meta(1),
            &config,
            0,
            Some(&CanonMemo::new()),
        );
        assert!(!selection.chosen.is_empty());
        let text = json.render();
        assert!(text.contains(r#""schema":"ise-cli/select/v1""#), "{text}");
        assert!(text.contains(r#""mode":"global""#), "{text}");
        assert!(text.contains(r#""total_selected":"#), "{text}");
        assert!(text.contains(r#""per_block":"#), "{text}");
        assert!(md.starts_with("# ISE global selection report"));
        assert!(md.contains("speedup"));
        assert_eq!(
            selection.per_block_saved_cycles.iter().sum::<u64>(),
            selection.total_saved_cycles
        );
    }
}
