//! Process-level harness for the concurrent `ise serve` daemon: the built `ise`
//! binary is spawned with `--listen 127.0.0.1:0` and exercised the way real
//! clients do — concurrent TCP connections replaying a mixed workload against a
//! serial ground truth, the HTTP/1.1 shim, SIGTERM under load, and the
//! connection-error accounting for clients that vanish mid-line. The in-process
//! concurrency tests (same invariants, no sockets) live in
//! `tests/serve_concurrent.rs` at the workspace root.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

use ise_bench::json::Json;

/// A tiny multiply-accumulate block; `{n}` is replaced to mint distinct blocks.
const TINY: &str = "dfg tiny{n}\nnode 0 in @a\nnode 1 in @x\nnode 2 in @acc\n\
                    node 3 mul\nnode 4 add\nedge 0 3\nedge 1 3\nedge 3 4\nedge 2 4\n\
                    output 4\nend\n";

fn tiny_block(n: usize) -> String {
    TINY.replace("{n}", &n.to_string())
}

fn corpus_file(name: &str) -> String {
    format!("{}/../../corpus/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// One spawned `ise serve --listen 127.0.0.1:0` daemon.
struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    fn spawn(extra_args: &[&str]) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_ise"))
            .arg("serve")
            .arg("--listen")
            .arg("127.0.0.1:0")
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn ise serve");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read the listening banner");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {line}"))
            .to_string();
        Daemon { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set read timeout");
        stream.set_nodelay(true).expect("set nodelay");
        stream
    }

    /// Sends one JSON-protocol request over a fresh connection.
    fn roundtrip(&self, line: &str) -> String {
        let mut stream = self.connect();
        writeln!(stream, "{line}").expect("send request");
        let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        response.trim_end().to_string()
    }

    /// Requests shutdown and asserts the daemon exits with status 0, returning
    /// everything it wrote to stderr.
    fn shutdown(mut self) -> String {
        let bye = self.roundtrip("{\"op\":\"shutdown\"}");
        assert!(bye.contains("\"ok\":true"), "{bye}");
        let status = wait_with_timeout(&mut self.child, Duration::from_secs(30));
        assert!(status.success(), "daemon must exit 0, got {status:?}");
        let mut stderr = String::new();
        if let Some(mut pipe) = self.child.stderr.take() {
            let _ = pipe.read_to_string(&mut stderr);
        }
        stderr
    }
}

fn wait_with_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("poll daemon") {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit within {timeout:?}");
        }
        thread::sleep(Duration::from_millis(20));
    }
}

/// Builds one request line with an inline block.
fn request(op: &str, block: &str, flags: &str) -> String {
    format!(
        "{{\"op\":\"{op}\",\"block\":{},\"flags\":{{{flags}}}}}",
        Json::str(block).render()
    )
}

/// The deterministic part of a response (the Rust-side `ci/strip-volatile.sh`):
/// content key + payload for successes, the whole line for errors.
fn stripped(response: &str) -> String {
    let doc = Json::parse(response).expect("response is JSON");
    if doc.get("ok").and_then(Json::as_bool) != Some(true) {
        return response.to_string();
    }
    format!(
        "{}:{}",
        doc.get("key").and_then(Json::as_str).expect("key"),
        doc.get("result").expect("result").render()
    )
}

fn server_counter(stats_response: &str, field: &str) -> u64 {
    Json::parse(stats_response)
        .expect("stats is JSON")
        .get("result")
        .and_then(|r| r.get("server"))
        .and_then(|s| s.get(field))
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("server counter {field} in {stats_response}"))
}

/// The mixed workload replayed by every client: inline cold/warm keys, a
/// corpus-file block, an op mix, and malformed lines.
fn workload() -> Vec<String> {
    let mut lines = Vec::new();
    for n in 0..3 {
        lines.push(request("enumerate", &tiny_block(n), "\"budget\":5000"));
    }
    lines.push(format!(
        "{{\"op\":\"enumerate\",\"block\":{},\"flags\":{{\"budget\":20000}}}}",
        Json::str(corpus_file("mibench-like-12-42.dfg")).render()
    ));
    lines.push(request("group", &tiny_block(0), "\"budget\":5000"));
    lines.push(request(
        "select",
        &tiny_block(1),
        "\"budget\":5000,\"max-instr\":2",
    ));
    // Duplicates (warm for whoever comes second).
    for n in 0..3 {
        lines.push(request("enumerate", &tiny_block(n), "\"budget\":5000"));
    }
    lines.push("definitely not json".to_string());
    lines.push("{\"op\":\"frobnicate\"}".to_string());
    lines
}

/// Deterministic Fisher-Yates driven by an LCG, seeded per client.
fn shuffled(lines: &[String], seed: u64) -> Vec<String> {
    let mut order: Vec<String> = lines.to_vec();
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    for i in (1..order.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

/// 8 concurrent TCP clients, each on its own connection with its own shuffled
/// order, must produce stripped responses byte-identical to a single-client
/// serial replay on a fresh daemon — and the final server counters must balance.
#[test]
fn concurrent_tcp_clients_match_serial_replay() {
    let lines = workload();

    // Serial ground truth: a fresh daemon, one connection, in order.
    let serial = Daemon::spawn(&[]);
    let mut expected: Vec<(String, String)> = Vec::new();
    {
        let mut stream = serial.connect();
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for line in &lines {
            writeln!(stream, "{line}").expect("send");
            let mut response = String::new();
            reader.read_line(&mut response).expect("recv");
            expected.push((line.clone(), stripped(response.trim_end())));
        }
    }
    serial.shutdown();
    let truth: std::collections::HashMap<&str, &str> = expected
        .iter()
        .map(|(line, strip)| (line.as_str(), strip.as_str()))
        .collect();

    const CLIENTS: usize = 8;
    let daemon = Daemon::spawn(&[]);
    let mut handles = Vec::new();
    for client in 0..CLIENTS {
        let addr = daemon.addr.clone();
        let lines = shuffled(&lines, client as u64 + 1);
        handles.push(thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            lines
                .into_iter()
                .map(|line| {
                    writeln!(stream, "{line}").expect("send");
                    let mut response = String::new();
                    reader.read_line(&mut response).expect("recv");
                    (line, stripped(response.trim_end()))
                })
                .collect::<Vec<(String, String)>>()
        }));
    }
    let mut answered = 0u64;
    for handle in handles {
        for (line, strip) in handle.join().expect("client thread") {
            answered += 1;
            assert_eq!(
                truth[line.as_str()],
                strip,
                "concurrent response diverged from serial replay for {line}"
            );
        }
    }
    assert_eq!(answered, (CLIENTS * lines.len()) as u64);

    let stats = daemon.roundtrip("{\"op\":\"stats\"}");
    let counter = |field: &str| server_counter(&stats, field);
    assert_eq!(counter("requests"), answered, "{stats}");
    assert_eq!(
        counter("hits") + counter("misses") + counter("errors"),
        counter("requests"),
        "{stats}"
    );
    assert_eq!(counter("errors"), (CLIENTS * 2) as u64, "{stats}");
    // 6 distinct evaluated keys (3 inline enumerates, 1 corpus-file enumerate,
    // 1 group, 1 select), nothing evicts: 6 computations total.
    assert_eq!(counter("misses"), 6, "{stats}");
    assert_eq!(counter("connection_errors"), 0, "{stats}");
    daemon.shutdown();
}

/// The HTTP/1.1 shim answers the identical envelope as the JSON protocol over
/// the same listener, shares the same cache, and keeps the connection alive
/// across requests.
#[test]
fn http_round_trip_matches_json_protocol() {
    let daemon = Daemon::spawn(&[]);

    // Warm the cache over the JSON protocol first.
    let line = request("enumerate", &tiny_block(7), "\"budget\":5000");
    let via_json = daemon.roundtrip(&line);
    assert!(via_json.contains("\"cached\":false"), "{via_json}");

    // Two POSTs and a GET on ONE keep-alive HTTP connection.
    let mut stream = daemon.connect();
    let body = format!(
        "{{\"block\":{},\"flags\":{{\"budget\":5000}}}}",
        Json::str(tiny_block(7)).render()
    );
    let mut http_responses = Vec::new();
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for (method, path, body) in [
        ("POST", "/v1/enumerate", body.as_str()),
        ("GET", "/v1/stats", ""),
        ("POST", "/v1/frobnicate", "{}"),
    ] {
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send HTTP request");
        stream.flush().expect("flush");

        let mut status = String::new();
        reader.read_line(&mut status).expect("status line");
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            reader.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        http_responses.push((
            status.trim_end().to_string(),
            String::from_utf8(body).expect("utf8 body"),
        ));
    }

    let (status, body) = &http_responses[0];
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"cached\":true"), "shared cache: {body}");
    assert_eq!(
        stripped(body),
        stripped(&via_json),
        "HTTP and JSON transports must answer byte-identical envelopes"
    );
    let (status, body) = &http_responses[1];
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"op\":\"stats\""), "{body}");
    let (status, body) = &http_responses[2];
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    assert!(body.contains("\"ok\":false"), "{body}");

    daemon.shutdown();
}

/// SIGTERM while a slow request is in flight: the response still arrives
/// complete, and the daemon exits 0 on its own.
#[test]
fn sigterm_under_load_completes_inflight_and_exits_zero() {
    let mut daemon = Daemon::spawn(&["--compute-delay-ms", "700"]);

    let addr = daemon.addr.clone();
    let line = request("enumerate", &tiny_block(3), "\"budget\":5000");
    let client = thread::spawn(move || {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        writeln!(stream, "{line}").expect("send");
        let mut reader = BufReader::new(stream);
        let mut response = String::new();
        reader.read_line(&mut response).expect("recv");
        response.trim_end().to_string()
    });

    // Let the request get into its (artificially slow) computation, then TERM.
    thread::sleep(Duration::from_millis(250));
    let term = Command::new("kill")
        .arg("-TERM")
        .arg(daemon.child.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    let response = client.join().expect("client thread");
    assert!(
        response.starts_with("{\"ok\":true"),
        "the in-flight response must complete despite SIGTERM: {response}"
    );
    assert!(response.contains("\"cached\":false"), "{response}");
    let status = wait_with_timeout(&mut daemon.child, Duration::from_secs(30));
    assert!(
        status.success(),
        "graceful drain must exit 0, got {status:?}"
    );
}

/// Regression for the swallowed-connection-error bug: a client that disconnects
/// mid-line is logged to stderr and counted by the `connection_errors` stat —
/// and the daemon keeps serving.
#[test]
fn mid_line_disconnect_is_counted_and_logged() {
    let daemon = Daemon::spawn(&[]);

    {
        let mut stream = daemon.connect();
        // A partial request with no newline, then a hard disconnect.
        stream
            .write_all(b"{\"op\":\"stats\"")
            .expect("send partial line");
        stream.flush().expect("flush");
        thread::sleep(Duration::from_millis(150));
    } // drop closes the socket mid-line

    // The worker notices the mid-line EOF at its next read; poll until counted.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = daemon.roundtrip("{\"op\":\"stats\"}");
        if server_counter(&stats, "connection_errors") == 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connection error never counted: {stats}"
        );
        thread::sleep(Duration::from_millis(50));
    }

    // Still serving normally afterwards.
    let ok = daemon.roundtrip(&request("enumerate", &tiny_block(5), "\"budget\":5000"));
    assert!(ok.starts_with("{\"ok\":true"), "{ok}");

    let stderr = daemon.shutdown();
    assert!(
        stderr.contains("connection") && stderr.contains("mid-line"),
        "the dropped connection must be logged to stderr, got: {stderr:?}"
    );
}
