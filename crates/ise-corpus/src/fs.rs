//! Filesystem loading and validation of corpora.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::parse::{parse_corpus, ParseError};
use crate::CorpusBlock;

/// Error loading a corpus from disk: an I/O failure or a parse failure, each tagged
/// with the offending path.
#[derive(Debug)]
#[non_exhaustive]
pub enum CorpusError {
    /// Reading the file or directory failed.
    Io {
        /// The path that could not be read.
        path: PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A `.dfg` file did not parse.
    Parse {
        /// The file that was rejected.
        path: PathBuf,
        /// The underlying parse error (with its line number).
        source: ParseError,
    },
    /// The path exists but contains no `.dfg` blocks.
    Empty {
        /// The offending corpus path.
        path: PathBuf,
    },
    /// Two blocks in the corpus share a name (the parser rejects this within one
    /// file; this variant covers clashes *across* files of a directory). Without
    /// this check the last definition would silently win and corpus statistics
    /// would key two different graphs under one name.
    DuplicateBlock {
        /// The file containing the second occurrence.
        path: PathBuf,
        /// 1-based line of the duplicate `dfg <name>` header in `path`.
        line: usize,
        /// The clashing block name.
        name: String,
        /// The file that defined the name first.
        first_path: PathBuf,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CorpusError::Parse { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            CorpusError::Empty { path } => {
                write!(f, "{}: no .dfg blocks found", path.display())
            }
            CorpusError::DuplicateBlock {
                path,
                line,
                name,
                first_path,
            } => {
                write!(
                    f,
                    "{}: line {line}: duplicate block name `{name}` (first defined in {})",
                    path.display(),
                    first_path.display()
                )
            }
        }
    }
}

impl Error for CorpusError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CorpusError::Io { source, .. } => Some(source),
            CorpusError::Parse { source, .. } => Some(source),
            CorpusError::Empty { .. } | CorpusError::DuplicateBlock { .. } => None,
        }
    }
}

/// Loads and validates a corpus from `path`.
///
/// `path` may be a single `.dfg` file (any extension is accepted for explicit file
/// paths) or a directory, in which case every `*.dfg` file directly inside it is
/// loaded in file-name order — so corpora enumerate deterministically on every
/// platform. Parsing doubles as validation: every block comes back as a fully checked
/// [`ise_graph::Dfg`].
///
/// # Errors
///
/// Returns [`CorpusError`] if `path` cannot be read, any file fails to parse, or no
/// block is found at all.
pub fn load_corpus_path(path: impl AsRef<Path>) -> Result<Vec<CorpusBlock>, CorpusError> {
    let path = path.as_ref();
    let io = |source| CorpusError::Io {
        path: path.to_path_buf(),
        source,
    };
    let mut files = Vec::new();
    if path.is_dir() {
        for entry in path.read_dir().map_err(io)? {
            let file = entry.map_err(io)?.path();
            if file.extension().is_some_and(|ext| ext == "dfg") {
                files.push(file);
            }
        }
        files.sort();
    } else {
        files.push(path.to_path_buf());
    }

    let mut blocks: Vec<CorpusBlock> = Vec::new();
    let mut origins: Vec<PathBuf> = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(&file).map_err(|source| CorpusError::Io {
            path: file.clone(),
            source,
        })?;
        let parsed = parse_corpus(&text).map_err(|source| CorpusError::Parse {
            path: file.clone(),
            source,
        })?;
        // The parser rejects duplicate names within one file; enforce the same
        // invariant across the files of a directory, so block names key the corpus.
        for block in parsed {
            if let Some(at) = blocks.iter().position(|b| b.dfg.name() == block.dfg.name()) {
                return Err(CorpusError::DuplicateBlock {
                    line: header_line(&text, block.dfg.name()),
                    path: file,
                    name: block.dfg.name().to_string(),
                    first_path: origins[at].clone(),
                });
            }
            blocks.push(block);
            origins.push(file.clone());
        }
    }
    if blocks.is_empty() {
        return Err(CorpusError::Empty {
            path: path.to_path_buf(),
        });
    }
    Ok(blocks)
}

/// The 1-based line of the `dfg <name>` header in `text`. `text` has already
/// parsed successfully, so the header exists and — names being unique within one
/// file — is unique: only `dfg` directives open blocks, and comments, `meta` values
/// and `@` node names all live on lines starting with other directives.
fn header_line(text: &str, name: &str) -> usize {
    for (index, raw) in text.lines().enumerate() {
        let trimmed = raw.trim();
        if let Some(rest) = trimmed.strip_prefix("dfg") {
            if rest.trim() == name {
                return index + 1;
            }
        }
    }
    unreachable!("a parsed block always has a `dfg {name}` header line")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unique_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ise-corpus-fs-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_directories_in_name_order_and_single_files() {
        let dir = unique_dir("order");
        std::fs::write(dir.join("b.dfg"), "dfg bee\nnode 0 in\nend\n").unwrap();
        std::fs::write(dir.join("a.dfg"), "dfg ay\nnode 0 in\nend\n").unwrap();
        std::fs::write(dir.join("ignored.txt"), "not a corpus").unwrap();
        let blocks = load_corpus_path(&dir).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].dfg.name(), "ay");
        assert_eq!(blocks[1].dfg.name(), "bee");

        let single = load_corpus_path(dir.join("b.dfg")).unwrap();
        assert_eq!(single.len(), 1);
        assert_eq!(single[0].dfg.name(), "bee");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reports_parse_errors_with_the_file_path() {
        let dir = unique_dir("err");
        std::fs::write(dir.join("bad.dfg"), "dfg x\nnode 0 frob\nend\n").unwrap();
        let err = load_corpus_path(&dir).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("bad.dfg"), "{text}");
        assert!(text.contains("line 2"), "{text}");
        assert!(matches!(err, CorpusError::Parse { .. }));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_block_names_across_files_are_rejected() {
        let dir = unique_dir("dup");
        std::fs::write(dir.join("a.dfg"), "dfg same\nnode 0 in\nend\n").unwrap();
        std::fs::write(dir.join("b.dfg"), "dfg same\nnode 0 in\nend\n").unwrap();
        let err = load_corpus_path(&dir).unwrap_err();
        assert!(
            matches!(&err, CorpusError::DuplicateBlock { name, line, .. }
                if name == "same" && *line == 1),
            "{err}"
        );
        assert!(err.to_string().contains("b.dfg"), "{err}");
        assert!(err.to_string().contains("first defined in"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Regression (ISSUE 5 satellite): a duplicate buried mid-file must be reported
    /// with the exact line of its `dfg` header and the file of the first
    /// definition — never silently last-writer-wins.
    #[test]
    fn duplicate_errors_are_line_precise() {
        let dir = unique_dir("dup-line");
        std::fs::write(dir.join("a.dfg"), "dfg fst\nnode 0 in\nend\n").unwrap();
        std::fs::write(
            dir.join("b.dfg"),
            "# comment\ndfg other\nnode 0 in\nend\n\ndfg fst\nnode 0 in\nend\n",
        )
        .unwrap();
        let err = load_corpus_path(&dir).unwrap_err();
        match &err {
            CorpusError::DuplicateBlock {
                path,
                line,
                name,
                first_path,
            } => {
                assert!(path.ends_with("b.dfg"));
                assert_eq!(*line, 6, "line of the duplicate `dfg fst` header");
                assert_eq!(name, "fst");
                assert!(first_path.ends_with("a.dfg"));
            }
            other => panic!("expected DuplicateBlock, got {other}"),
        }
        assert!(err.to_string().contains("line 6"), "{err}");
        // No block of the clashing corpus leaks out: the load fails as a whole.
        assert!(err.source().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_paths_are_rejected() {
        let dir = unique_dir("empty");
        assert!(matches!(
            load_corpus_path(&dir),
            Err(CorpusError::Empty { .. })
        ));
        assert!(matches!(
            load_corpus_path(dir.join("nope.dfg")),
            Err(CorpusError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
