//! The `.dfg` writer.

use std::fmt::Write as _;

use crate::CorpusBlock;

/// The format-version header comment emitted at the top of every serialized corpus
/// file (one shared definition, so a version bump cannot drift between the corpus
/// generator and [`write_corpus`]).
pub const FORMAT_HEADER: &str = "# ise-dfg v1";

/// Serializes one block into the `.dfg` text format.
///
/// The output is canonical: nodes in id order, each node's incoming edges in operand
/// order (so that operand order survives a round trip), then outputs and explicit
/// `forbid` marks in ascending id order. Memory/call operations are forbidden by
/// definition and get no `forbid` line. [`crate::parse_corpus`] ∘ `write_block` is the
/// identity on the graph (see [`crate::dfg_eq`]), and re-serializing the parse result
/// reproduces the text byte for byte — which is how CI detects corpus drift.
///
/// # Panics
///
/// Panics if the block is not representable in the line-oriented format — the same
/// contract violation style as the graph builders: a block or meta-key name that is
/// empty or contains whitespace, or a meta value or `@` node name that spans lines or
/// carries leading/trailing whitespace (the parser trims lines, so such data could
/// not round-trip — or worse, an embedded newline would inject directives).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_corpus::{parse_corpus, write_block};
///
/// let text = "dfg t\nnode 0 in @a\nnode 1 not\nedge 0 1\noutput 1\nend\n";
/// let block = parse_corpus(text)?.remove(0);
/// assert_eq!(write_block(&block), text);
/// # Ok(())
/// # }
/// ```
pub fn write_block(block: &CorpusBlock) -> String {
    let dfg = &block.dfg;
    let mut out = String::new();
    check_token("block name", dfg.name());
    writeln!(out, "dfg {}", dfg.name()).expect("writing to a String cannot fail");
    for (key, value) in &block.meta {
        check_token("meta key", key);
        check_line("meta value", value);
        if value.is_empty() {
            writeln!(out, "meta {key}").expect("writing to a String cannot fail")
        } else {
            writeln!(out, "meta {key} {value}").expect("writing to a String cannot fail")
        }
    }
    for v in dfg.node_ids() {
        match dfg.node(v).name() {
            Some(name) => {
                check_line("node name", name);
                writeln!(out, "node {} {} @{name}", v.index(), dfg.op(v))
            }
            None => writeln!(out, "node {} {}", v.index(), dfg.op(v)),
        }
        .expect("writing to a String cannot fail");
    }
    for v in dfg.node_ids() {
        for &p in dfg.preds(v) {
            writeln!(out, "edge {} {}", p.index(), v.index())
                .expect("writing to a String cannot fail");
        }
    }
    for &o in dfg.external_outputs() {
        writeln!(out, "output {}", o.index()).expect("writing to a String cannot fail");
    }
    for f in dfg.forbidden().iter() {
        if !dfg.op(f).is_default_forbidden() {
            writeln!(out, "forbid {}", f.index()).expect("writing to a String cannot fail");
        }
    }
    out.push_str("end\n");
    out
}

/// A single whitespace-free word: block names and meta keys.
fn check_token(what: &str, value: &str) {
    assert!(
        !value.is_empty() && !value.contains(char::is_whitespace),
        "{what} {value:?} is not serializable: it must be a non-empty, \
         whitespace-free token"
    );
}

/// Free-form text that runs to the end of its line: meta values and `@` node names.
/// The parser trims every line, so leading/trailing whitespace could not round-trip,
/// and an embedded line break would inject directives into the output.
fn check_line(what: &str, value: &str) {
    assert!(
        !value.contains(['\n', '\r']) && value.trim() == value,
        "{what} {value:?} is not serializable: it must be a single line without \
         leading or trailing whitespace"
    );
}

/// Serializes a whole corpus: [`write_block`] per block, separated by blank lines,
/// under a format-version header comment.
pub fn write_corpus(blocks: &[CorpusBlock]) -> String {
    let mut out = format!("{FORMAT_HEADER}\n");
    for block in blocks {
        out.push('\n');
        out.push_str(&write_block(block));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_corpus;
    use ise_graph::{DfgBuilder, Operation};

    #[test]
    fn writer_output_is_canonical_and_reparses() {
        let mut b = DfgBuilder::new("w");
        let a = b.input("a");
        let c = b.constant("4");
        let s = b.named_node(Operation::Shl, &[a, c], Some("a<<4"));
        let l = b.node(Operation::Load, &[s]);
        let r = b.node(Operation::Add, &[l, a]);
        b.mark_output(s);
        b.mark_forbidden(r);
        let block = CorpusBlock {
            dfg: b.build().unwrap(),
            meta: vec![("family".into(), "test".into()), ("note".into(), "".into())],
        };
        let text = write_block(&block);
        // The load is default-forbidden: no forbid line for it, one for the add.
        assert!(text.contains("node 3 load"));
        assert!(!text.contains("forbid 3"));
        assert!(text.contains("forbid 4"));
        assert!(text.contains("meta note\n"), "empty meta value");
        let reparsed = parse_corpus(&text).unwrap();
        assert_eq!(reparsed.len(), 1);
        assert!(crate::dfg_eq(&block.dfg, &reparsed[0].dfg));
        assert_eq!(block.meta, reparsed[0].meta);
        // Canonical: serializing the parse result is byte-identical.
        assert_eq!(write_block(&reparsed[0]), text);
    }

    #[test]
    #[should_panic(expected = "block name")]
    fn block_names_with_whitespace_are_rejected() {
        let mut b = DfgBuilder::new("two words");
        let _ = b.input("a");
        let block = CorpusBlock {
            dfg: b.build().unwrap(),
            meta: Vec::new(),
        };
        let _ = write_block(&block);
    }

    #[test]
    #[should_panic(expected = "node name")]
    fn node_names_spanning_lines_are_rejected() {
        let mut b = DfgBuilder::new("x");
        let _ = b.input("evil\nforbid 0");
        let block = CorpusBlock {
            dfg: b.build().unwrap(),
            meta: Vec::new(),
        };
        let _ = write_block(&block);
    }

    #[test]
    #[should_panic(expected = "meta value")]
    fn meta_values_with_trailing_whitespace_are_rejected() {
        let mut b = DfgBuilder::new("x");
        let _ = b.input("a");
        let block = CorpusBlock {
            dfg: b.build().unwrap(),
            meta: vec![("k".into(), "padded ".into())],
        };
        let _ = write_block(&block);
    }

    #[test]
    fn parsed_names_are_always_rewritable() {
        // The parser trims `@` names, so whatever it accepts serializes again.
        let text = "dfg t\nnode 0 in @  spaced name  \nend\n";
        let block = parse_corpus(text).unwrap().remove(0);
        assert_eq!(
            block.dfg.node(ise_graph::NodeId::new(0)).name(),
            Some("spaced name")
        );
        let rewritten = write_block(&block);
        assert!(rewritten.contains("node 0 in @spaced name\n"));
        assert!(crate::dfg_eq(
            &block.dfg,
            &parse_corpus(&rewritten).unwrap()[0].dfg
        ));
    }

    #[test]
    fn corpus_writer_separates_blocks() {
        let block = |name: &str| {
            let mut b = DfgBuilder::new(name);
            let a = b.input("a");
            let _ = b.node(Operation::Not, &[a]);
            CorpusBlock {
                dfg: b.build().unwrap(),
                meta: Vec::new(),
            }
        };
        let text = write_corpus(&[block("one"), block("two")]);
        assert!(text.starts_with("# ise-dfg v1\n\ndfg one\n"));
        let blocks = parse_corpus(&text).unwrap();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[1].dfg.name(), "two");
    }
}
