//! A line-oriented textual interchange format for data-flow-graph corpora.
//!
//! The enumeration engine of `ise-enum` consumes [`ise_graph::Dfg`]s; batch tools
//! (the `ise` CLI, importers from real compilers, regression suites) need those graphs
//! *serialized*. This crate defines the `.dfg` format — a deliberately simple,
//! diff-friendly, line-oriented text format — together with its [`parse_corpus`]
//! parser, [`write_corpus`] writer, filesystem [`load_corpus_path`] loader/validator,
//! and the [`standard_corpus`] generator that exports the `ise-workloads` families
//! into the committed `corpus/` directory.
//!
//! # Format
//!
//! A file holds one or more blocks. Blank lines are skipped and lines whose first
//! non-blank character is `#` are comments. Each block is:
//!
//! ```text
//! dfg <name>                # opens a block; <name> is a whitespace-free token
//! meta <key> <value...>     # optional per-block metadata (value runs to end of line)
//! node <id> <opcode> [@<name...>]   # ids must be dense and declared in order 0,1,2,...
//! edge <from> <to>          # data-flow direction (producer -> consumer)
//! output <id>               # marks <id> externally visible (member of Oext)
//! forbid <id>               # marks <id> forbidden inside cuts (member of F)
//! end                       # closes the block
//! ```
//!
//! Opcodes are the [`ise_graph::Operation`] mnemonics (`in`, `const`, `add`, `mul`,
//! `load`, ...). Memory and call operations are forbidden by definition and need no
//! `forbid` line; `forbid` exists for user-imposed restrictions. Every directive that
//! references a node id must appear after that node's `node` line, so errors carry
//! exact line numbers. See `docs/GUIDE.md` for the full grammar and a worked example.
//!
//! # Example
//!
//! Round-trip a hand-written block:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ise_corpus::{parse_corpus, write_corpus};
//!
//! let text = "\
//! dfg mac
//! meta source doctest
//! node 0 in @a
//! node 1 in @x
//! node 2 in @acc
//! node 3 mul
//! node 4 add
//! edge 0 3
//! edge 1 3
//! edge 3 4
//! edge 2 4
//! output 4
//! end
//! ";
//! let blocks = parse_corpus(text)?;
//! assert_eq!(blocks.len(), 1);
//! assert_eq!(blocks[0].dfg.name(), "mac");
//! assert_eq!(blocks[0].dfg.len(), 5);
//!
//! // Writing and re-parsing yields the same graph.
//! let again = parse_corpus(&write_corpus(&blocks))?;
//! assert!(ise_corpus::dfg_eq(&blocks[0].dfg, &again[0].dfg));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fs;
mod gen;
mod parse;
mod write;

pub use fs::{load_corpus_path, CorpusError};
pub use gen::standard_corpus;
pub use parse::{parse_corpus, ParseError, ParseErrorKind};
pub use write::{write_block, write_corpus, FORMAT_HEADER};

use ise_graph::Dfg;

/// One serialized basic block: the graph plus the `meta` lines of its `.dfg` source.
#[derive(Clone, Debug)]
pub struct CorpusBlock {
    /// The data-flow graph ([`Dfg::name`] doubles as the block's corpus name).
    pub dfg: Dfg,
    /// The `meta` key/value pairs, in file order (keys may repeat).
    pub meta: Vec<(String, String)>,
}

impl CorpusBlock {
    /// The block's profile weight: the value of the `weight` meta key (relative
    /// execution frequency from a profile), or `1.0` when absent or unparsable.
    /// Non-finite and non-positive values are treated as absent — a corrupt profile
    /// must not zero out or invert a block's contribution to grouping statistics.
    ///
    /// # Example
    ///
    /// ```
    /// let blocks = ise_corpus::parse_corpus(
    ///     "dfg hot\nmeta weight 12.5\nnode 0 in\nend\ndfg cold\nnode 0 in\nend\n",
    /// )
    /// .unwrap();
    /// assert_eq!(blocks[0].weight(), 12.5);
    /// assert_eq!(blocks[1].weight(), 1.0);
    /// ```
    pub fn weight(&self) -> f64 {
        self.meta
            .iter()
            .find(|(k, _)| k == "weight")
            .and_then(|(_, v)| v.trim().parse::<f64>().ok())
            .filter(|w| w.is_finite() && *w > 0.0)
            .unwrap_or(1.0)
    }

    /// The block's canonical serialization — the content-hash hook for result caches.
    ///
    /// Exactly [`write_block`] of this block: nodes in id order, operand-order edges,
    /// sorted outputs and explicit forbids. Because the writer is canonical
    /// (`write ∘ parse ∘ write = write`), two `.dfg` sources that differ only in
    /// comments, blank lines, directive spacing or trailing whitespace produce **the
    /// same bytes** — so a cache keyed on them (the `ise serve` daemon, DESIGN.md §7)
    /// hits across formatting-only variants, while any semantic change (an opcode, an
    /// edge, an output mark, a `meta` line) changes the bytes and misses.
    ///
    /// # Panics
    ///
    /// Panics when the block violates the serializability contract of
    /// [`write_block`] (names with embedded newlines etc.); blocks obtained from
    /// [`parse_corpus`] always serialize.
    ///
    /// # Example
    ///
    /// ```
    /// let noisy = "# a comment\ndfg t\n\nnode 0   in @a\nnode 1 not\nedge 0 1\nend\n";
    /// let clean = "dfg t\nnode 0 in @a\nnode 1 not\nedge 0 1\nend\n";
    /// let parse = |s| ise_corpus::parse_corpus(s).unwrap().remove(0);
    /// assert_eq!(parse(noisy).canonical_bytes(), parse(clean).canonical_bytes());
    /// ```
    pub fn canonical_bytes(&self) -> String {
        write_block(self)
    }
}

/// Structural equality of two graphs as the interchange format defines it: same name,
/// same operations and symbolic node names, same per-node operand producers (order
/// matters, it is the operand order), same external outputs and same forbidden set.
///
/// Derived data (successor order, topological order) is deliberately not compared:
/// it does not affect which cuts exist.
pub fn dfg_eq(a: &Dfg, b: &Dfg) -> bool {
    a.name() == b.name()
        && a.len() == b.len()
        && a.node_ids().all(|v| {
            a.op(v) == b.op(v) && a.node(v).name() == b.node(v).name() && a.preds(v) == b.preds(v)
        })
        && a.external_outputs() == b.external_outputs()
        && a.forbidden().words() == b.forbidden().words()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DfgBuilder, Operation};

    #[test]
    fn dfg_eq_detects_differences() {
        let build = |op| {
            let mut b = DfgBuilder::new("x");
            let a = b.input("a");
            let _n = b.node(op, &[a]);
            b.build().unwrap()
        };
        let not = build(Operation::Not);
        assert!(dfg_eq(&not, &build(Operation::Not)));
        assert!(!dfg_eq(&not, &build(Operation::Shl)), "ops differ");

        let mut b = DfgBuilder::new("x");
        let a = b.input("b");
        let _n = b.node(Operation::Not, &[a]);
        assert!(!dfg_eq(&not, &b.build().unwrap()), "node names differ");
    }

    #[test]
    fn dfg_eq_is_operand_order_sensitive() {
        let build = |swap: bool| {
            let mut b = DfgBuilder::new("x");
            let p = b.input("p");
            let q = b.input("q");
            let operands = if swap { [q, p] } else { [p, q] };
            let _n = b.node(Operation::Sub, &operands);
            b.build().unwrap()
        };
        assert!(!dfg_eq(&build(false), &build(true)));
    }
}
