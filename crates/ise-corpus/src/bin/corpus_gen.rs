//! Regenerates (or verifies) the committed `corpus/` directory from the standard
//! export.
//!
//! ```sh
//! cargo run -p ise-corpus --bin corpus-gen                  # rewrite corpus/
//! cargo run -p ise-corpus --bin corpus-gen -- --check       # verify, fail on drift
//! cargo run -p ise-corpus --bin corpus-gen -- --out DIR --seed N
//! ```
//!
//! One block per file, named `<block-name>.dfg`; file contents are canonical writer
//! output, so `--check` is a byte-for-byte comparison and any format or generator
//! drift fails CI loudly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ise_corpus::{standard_corpus, write_block, CorpusBlock, FORMAT_HEADER};

fn file_contents(block: &CorpusBlock) -> String {
    format!("{FORMAT_HEADER}\n{}", write_block(block))
}

fn expected_files(seed: u64) -> Vec<(String, String)> {
    standard_corpus(seed)
        .iter()
        .map(|block| (format!("{}.dfg", block.dfg.name()), file_contents(block)))
        .collect()
}

fn committed_dfg_files(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for entry in dir.read_dir()? {
        let path = entry?.path();
        if path.extension().is_some_and(|ext| ext == "dfg") {
            files.push(path);
        }
    }
    files.sort();
    Ok(files)
}

fn check(dir: &Path, seed: u64) -> Result<usize, String> {
    let expected = expected_files(seed);
    let mut drift = Vec::new();
    for (name, contents) in &expected {
        let path = dir.join(name);
        match std::fs::read_to_string(&path) {
            Ok(committed) if committed == *contents => {}
            Ok(_) => drift.push(format!("{}: contents differ", path.display())),
            Err(e) => drift.push(format!("{}: {e}", path.display())),
        }
    }
    let known: Vec<&String> = expected.iter().map(|(name, _)| name).collect();
    for path in committed_dfg_files(dir).map_err(|e| format!("{}: {e}", dir.display()))? {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !known.contains(&&name) {
            drift.push(format!(
                "{}: not part of the standard corpus",
                path.display()
            ));
        }
    }
    if drift.is_empty() {
        Ok(expected.len())
    } else {
        Err(drift.join("\n"))
    }
}

fn regenerate(dir: &Path, seed: u64) -> std::io::Result<usize> {
    std::fs::create_dir_all(dir)?;
    let expected = expected_files(seed);
    for (name, contents) in &expected {
        std::fs::write(dir.join(name), contents)?;
    }
    // Drop stale .dfg files so the directory stays canonical.
    let known: Vec<&String> = expected.iter().map(|(name, _)| name).collect();
    for path in committed_dfg_files(dir)? {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !known.contains(&&name) {
            eprintln!("removing stale {}", path.display());
            std::fs::remove_file(&path)?;
        }
    }
    Ok(expected.len())
}

fn main() -> ExitCode {
    let mut out = PathBuf::from("corpus");
    let mut seed = 42u64;
    let mut check_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check_only = true,
            "--out" => match args.next() {
                Some(dir) => out = PathBuf::from(dir),
                None => return usage("--out needs a directory"),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => seed = n,
                None => return usage("--seed needs an integer"),
            },
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    if check_only {
        match check(&out, seed) {
            Ok(count) => {
                println!(
                    "{}: {count} blocks match the standard corpus",
                    out.display()
                );
                ExitCode::SUCCESS
            }
            Err(drift) => {
                eprintln!("corpus drift detected:\n{drift}");
                eprintln!("regenerate with: cargo run -p ise-corpus --bin corpus-gen");
                ExitCode::FAILURE
            }
        }
    } else {
        match regenerate(&out, seed) {
            Ok(count) => {
                println!("wrote {count} blocks to {}", out.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("cannot write {}: {e}", out.display());
                ExitCode::FAILURE
            }
        }
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("corpus-gen: {problem}");
    eprintln!("usage: corpus-gen [--check] [--out DIR] [--seed N]");
    ExitCode::FAILURE
}
