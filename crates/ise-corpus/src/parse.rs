//! The `.dfg` parser.

use std::error::Error;
use std::fmt;

use ise_graph::{Dfg, GraphError, Node, NodeId, Operation};

use crate::CorpusBlock;

/// Error produced by [`parse_corpus`]: what went wrong and on which (1-based) line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line (for graph-level errors, the line of
    /// the block's `end`).
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The reason a `.dfg` input was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// A directive other than `dfg`/`meta`/`node`/`edge`/`output`/`forbid`/`end`.
    UnknownDirective(String),
    /// A block directive appeared before any `dfg` line opened a block.
    OutsideBlock(String),
    /// A `dfg` line appeared while a block was still open.
    NestedBlock,
    /// A directive is missing a required argument.
    MissingArgument(&'static str),
    /// A directive has more arguments than it takes.
    TrailingInput(String),
    /// An argument that must be a node id did not parse as one.
    BadInteger(String),
    /// The opcode of a `node` line is not a known [`Operation`] mnemonic.
    UnknownOpcode(String),
    /// Node ids must be declared densely in order `0, 1, 2, ...`.
    NonSequentialNode {
        /// The id the parser expected next.
        expected: usize,
        /// The id the line declared.
        found: usize,
    },
    /// A directive referenced a node id that has not been declared yet.
    UndeclaredNode(usize),
    /// The input ended while a block was still open.
    UnterminatedBlock(String),
    /// Two blocks in the same input share a name.
    DuplicateBlockName(String),
    /// The collected directives do not form a valid graph.
    Graph {
        /// The name of the offending block.
        block: String,
        /// The underlying graph-construction error.
        source: GraphError,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::UnknownDirective(d) => write!(f, "unknown directive `{d}`"),
            ParseErrorKind::OutsideBlock(d) => {
                write!(f, "`{d}` outside a block (expected `dfg <name>` first)")
            }
            ParseErrorKind::NestedBlock => {
                write!(f, "`dfg` inside a block (missing `end`?)")
            }
            ParseErrorKind::MissingArgument(what) => write!(f, "missing {what}"),
            ParseErrorKind::TrailingInput(rest) => write!(f, "unexpected trailing input `{rest}`"),
            ParseErrorKind::BadInteger(tok) => write!(f, "`{tok}` is not a node id"),
            ParseErrorKind::UnknownOpcode(op) => write!(f, "unknown opcode `{op}`"),
            ParseErrorKind::NonSequentialNode { expected, found } => {
                write!(
                    f,
                    "node ids must be dense and in order: expected {expected}, found {found}"
                )
            }
            ParseErrorKind::UndeclaredNode(id) => {
                write!(f, "node {id} is referenced before its `node` line")
            }
            ParseErrorKind::UnterminatedBlock(name) => {
                write!(f, "block `{name}` is not closed by `end`")
            }
            ParseErrorKind::DuplicateBlockName(name) => {
                write!(f, "duplicate block name `{name}`")
            }
            ParseErrorKind::Graph { block, source } => {
                write!(f, "block `{block}` is not a valid DFG: {source}")
            }
        }
    }
}

impl Error for ParseError {}

/// One block being accumulated while its lines stream in.
struct OpenBlock {
    name: String,
    opened_at: usize,
    meta: Vec<(String, String)>,
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId)>,
    outputs: Vec<NodeId>,
    forbidden: Vec<NodeId>,
}

/// Parses one or more `.dfg` blocks out of `text`.
///
/// # Errors
///
/// Returns the first [`ParseError`] encountered; parsing is strict (unknown
/// directives, loose arguments and forward references are all rejected) so that
/// corpus drift fails loudly rather than silently changing a graph.
///
/// # Example
///
/// ```
/// use ise_corpus::{parse_corpus, ParseErrorKind};
///
/// let err = parse_corpus("dfg x\nnode 0 frob\nend\n").unwrap_err();
/// assert_eq!(err.line, 2);
/// assert_eq!(err.kind, ParseErrorKind::UnknownOpcode("frob".into()));
/// ```
pub fn parse_corpus(text: &str) -> Result<Vec<CorpusBlock>, ParseError> {
    let mut blocks: Vec<CorpusBlock> = Vec::new();
    let mut open: Option<OpenBlock> = None;

    for (index, raw) in text.lines().enumerate() {
        let line = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let err = |kind| Err(ParseError { line, kind });
        let (directive, rest) = split_word(trimmed);

        if directive == "dfg" {
            if open.is_some() {
                return err(ParseErrorKind::NestedBlock);
            }
            let (name, rest) = split_word(rest);
            if name.is_empty() {
                return err(ParseErrorKind::MissingArgument("block name"));
            }
            if !rest.is_empty() {
                return err(ParseErrorKind::TrailingInput(rest.to_string()));
            }
            if blocks.iter().any(|b| b.dfg.name() == name) {
                return err(ParseErrorKind::DuplicateBlockName(name.to_string()));
            }
            open = Some(OpenBlock {
                name: name.to_string(),
                opened_at: line,
                meta: Vec::new(),
                nodes: Vec::new(),
                edges: Vec::new(),
                outputs: Vec::new(),
                forbidden: Vec::new(),
            });
            continue;
        }

        let Some(block) = open.as_mut() else {
            return match directive {
                "meta" | "node" | "edge" | "output" | "forbid" | "end" => {
                    err(ParseErrorKind::OutsideBlock(directive.to_string()))
                }
                other => err(ParseErrorKind::UnknownDirective(other.to_string())),
            };
        };

        match directive {
            "meta" => {
                let (key, value) = split_word(rest);
                if key.is_empty() {
                    return err(ParseErrorKind::MissingArgument("meta key"));
                }
                block.meta.push((key.to_string(), value.to_string()));
            }
            "node" => {
                let (id_tok, rest) = split_word(rest);
                let id = parse_id(id_tok, line)?;
                if id != block.nodes.len() {
                    return err(ParseErrorKind::NonSequentialNode {
                        expected: block.nodes.len(),
                        found: id,
                    });
                }
                let (op_tok, rest) = split_word(rest);
                if op_tok.is_empty() {
                    return err(ParseErrorKind::MissingArgument("opcode"));
                }
                let Some(op) = Operation::from_mnemonic(op_tok) else {
                    return err(ParseErrorKind::UnknownOpcode(op_tok.to_string()));
                };
                let node = match rest.strip_prefix('@') {
                    // Trimmed, so that everything the parser accepts is re-writable
                    // (the writer rejects names with surrounding whitespace).
                    Some(name) => Node::new(op).with_name(name.trim()),
                    None if rest.is_empty() => Node::new(op),
                    None => return err(ParseErrorKind::TrailingInput(rest.to_string())),
                };
                block.nodes.push(node);
            }
            "edge" => {
                let (from_tok, rest) = split_word(rest);
                let (to_tok, rest) = split_word(rest);
                if !rest.is_empty() {
                    return err(ParseErrorKind::TrailingInput(rest.to_string()));
                }
                let from = declared(block, from_tok, line)?;
                let to = declared(block, to_tok, line)?;
                block.edges.push((from, to));
            }
            "output" | "forbid" => {
                let (id_tok, rest) = split_word(rest);
                if !rest.is_empty() {
                    return err(ParseErrorKind::TrailingInput(rest.to_string()));
                }
                let id = declared(block, id_tok, line)?;
                if directive == "output" {
                    block.outputs.push(id);
                } else {
                    block.forbidden.push(id);
                }
            }
            "end" => {
                if !rest.is_empty() {
                    return err(ParseErrorKind::TrailingInput(rest.to_string()));
                }
                let done = open.take().expect("a block is open in this branch");
                let dfg = Dfg::from_nodes(
                    done.name.clone(),
                    done.nodes,
                    done.edges,
                    done.outputs,
                    done.forbidden,
                )
                .map_err(|source| ParseError {
                    line,
                    kind: ParseErrorKind::Graph {
                        block: done.name,
                        source,
                    },
                })?;
                blocks.push(CorpusBlock {
                    dfg,
                    meta: done.meta,
                });
            }
            other => return err(ParseErrorKind::UnknownDirective(other.to_string())),
        }
    }

    if let Some(block) = open {
        return Err(ParseError {
            line: block.opened_at,
            kind: ParseErrorKind::UnterminatedBlock(block.name),
        });
    }
    Ok(blocks)
}

/// Splits the first whitespace-delimited word off `s`, returning `(word, rest)` with
/// the rest trimmed on the left.
fn split_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(at) => (&s[..at], s[at..].trim_start()),
        None => (s, ""),
    }
}

fn parse_id(token: &str, line: usize) -> Result<usize, ParseError> {
    if token.is_empty() {
        return Err(ParseError {
            line,
            kind: ParseErrorKind::MissingArgument("node id"),
        });
    }
    token.parse().map_err(|_| ParseError {
        line,
        kind: ParseErrorKind::BadInteger(token.to_string()),
    })
}

fn declared(block: &OpenBlock, token: &str, line: usize) -> Result<NodeId, ParseError> {
    let id = parse_id(token, line)?;
    if id >= block.nodes.len() {
        return Err(ParseError {
            line,
            kind: ParseErrorKind::UndeclaredNode(id),
        });
    }
    Ok(NodeId::from_index(id))
}
