//! The standard corpus generator: `ise-workloads` families serialized as blocks.

use ise_workloads::export::standard_export;

use crate::CorpusBlock;

/// Generates the standard corpus — the committed `corpus/` directory — from the
/// [`ise_workloads::export::standard_export`] hook, deterministically in `seed`.
///
/// Each block carries `family` (and the generator's provenance entries) plus a `nodes`
/// count in its metadata, so corpus reports can be produced without touching the
/// graphs. The committed directory uses seed 42; the `corpus-gen` binary regenerates
/// it (`cargo run -p ise-corpus --bin corpus-gen`) and CI verifies the files are
/// byte-identical to what this function produces.
///
/// # Example
///
/// ```
/// let corpus = ise_corpus::standard_corpus(42);
/// assert!(corpus.len() >= 20);
/// assert!(corpus.iter().all(|b| b.meta.iter().any(|(k, _)| k == "family")));
/// ```
pub fn standard_corpus(seed: u64) -> Vec<CorpusBlock> {
    standard_export(seed)
        .into_iter()
        .map(|export| {
            let mut meta = vec![
                ("family".to_string(), export.family.to_string()),
                ("nodes".to_string(), export.dfg.len().to_string()),
            ];
            meta.extend(export.meta);
            CorpusBlock {
                dfg: export.dfg,
                meta,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dfg_eq, parse_corpus, write_block};

    #[test]
    fn standard_corpus_round_trips_through_the_format() {
        for block in standard_corpus(7) {
            let text = write_block(&block);
            let reparsed = parse_corpus(&text)
                .unwrap_or_else(|e| panic!("{} does not re-parse: {e}", block.dfg.name()));
            assert_eq!(reparsed.len(), 1);
            assert!(
                dfg_eq(&block.dfg, &reparsed[0].dfg),
                "{} does not round-trip",
                block.dfg.name()
            );
            assert_eq!(block.meta, reparsed[0].meta);
        }
    }

    #[test]
    fn standard_corpus_is_deterministic_text() {
        let a: Vec<String> = standard_corpus(42).iter().map(write_block).collect();
        let b: Vec<String> = standard_corpus(42).iter().map(write_block).collect();
        assert_eq!(a, b);
    }
}
