//! Format-level integration tests: the parse ∘ write = id property over generated
//! corpora, and the malformed-input rejection table.

use proptest::prelude::*;

use ise_corpus::{dfg_eq, parse_corpus, write_block, write_corpus, CorpusBlock, ParseErrorKind};
use ise_workloads::mibench_like::{generate_block, MiBenchLikeConfig};
use ise_workloads::random_dag::{random_dag, RandomDagConfig};
use ise_workloads::tree::{TreeDfgBuilder, TreeOrientation};

fn assert_round_trip(block: &CorpusBlock) -> Result<(), TestCaseError> {
    let text = write_block(block);
    let reparsed = match parse_corpus(&text) {
        Ok(blocks) => blocks,
        Err(e) => {
            return Err(TestCaseError::fail(format!(
                "{} does not re-parse: {e}\n{text}",
                block.dfg.name()
            )))
        }
    };
    prop_assert_eq!(reparsed.len(), 1);
    prop_assert!(
        dfg_eq(&block.dfg, &reparsed[0].dfg),
        "{} does not round-trip",
        block.dfg.name()
    );
    prop_assert_eq!(&block.meta, &reparsed[0].meta);
    // The writer is canonical: write ∘ parse ∘ write = write.
    prop_assert_eq!(write_block(&reparsed[0]), text);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// parse ∘ write is the identity on every workload family, across random sizes,
    /// seeds and memory densities.
    #[test]
    fn random_dags_round_trip(
        nodes in 1usize..120,
        seed in any::<u64>(),
        memory_pct in 0usize..50,
    ) {
        let cfg = RandomDagConfig::new(nodes).with_memory_ratio(memory_pct as f64 / 100.0);
        let block = CorpusBlock {
            dfg: random_dag(&cfg, seed),
            meta: vec![("family".into(), "random-dag".into()), ("seed".into(), seed.to_string())],
        };
        assert_round_trip(&block)?;
    }

    #[test]
    fn mibench_like_blocks_round_trip(size in 4usize..200, seed in any::<u64>()) {
        let block = CorpusBlock {
            dfg: generate_block(&MiBenchLikeConfig::new(size), seed)
                .expect("generator output is always valid"),
            meta: Vec::new(),
        };
        assert_round_trip(&block)?;
    }

    #[test]
    fn trees_round_trip(depth in 1u32..8, fan_in in any::<bool>()) {
        let orientation = if fan_in { TreeOrientation::FanIn } else { TreeOrientation::FanOut };
        let block = CorpusBlock {
            dfg: TreeDfgBuilder::new(depth).with_orientation(orientation).build(),
            meta: Vec::new(),
        };
        assert_round_trip(&block)?;
    }
}

#[test]
fn multi_block_corpora_round_trip() {
    let blocks: Vec<CorpusBlock> = (0..4)
        .map(|i| CorpusBlock {
            dfg: random_dag(&RandomDagConfig::new(10 + i), 1000 + i as u64),
            meta: vec![("index".into(), i.to_string())],
        })
        .collect();
    let text = write_corpus(&blocks);
    let reparsed = parse_corpus(&text).expect("corpus re-parses");
    assert_eq!(reparsed.len(), blocks.len());
    for (a, b) in blocks.iter().zip(&reparsed) {
        assert!(dfg_eq(&a.dfg, &b.dfg));
        assert_eq!(a.meta, b.meta);
    }
    assert_eq!(write_corpus(&reparsed), text, "writer is canonical");
}

/// The malformed-input rejection table: every class of bad input is rejected with the
/// right error kind on the right line.
#[test]
fn malformed_inputs_are_rejected_with_precise_errors() {
    use ParseErrorKind as K;
    let cases: &[(&str, &str, usize, K)] = &[
        (
            "directive outside a block",
            "node 0 add\n",
            1,
            K::OutsideBlock("node".into()),
        ),
        (
            "unknown directive outside a block",
            "vertex 0 add\n",
            1,
            K::UnknownDirective("vertex".into()),
        ),
        (
            "unknown directive inside a block",
            "dfg x\nvertex 0 add\nend\n",
            2,
            K::UnknownDirective("vertex".into()),
        ),
        ("nested block", "dfg x\ndfg y\n", 2, K::NestedBlock),
        (
            "missing block name",
            "dfg\n",
            1,
            K::MissingArgument("block name"),
        ),
        (
            "block name with trailing input",
            "dfg two words\n",
            1,
            K::TrailingInput("words".into()),
        ),
        (
            "missing opcode",
            "dfg x\nnode 0\nend\n",
            2,
            K::MissingArgument("opcode"),
        ),
        (
            "unknown opcode",
            "dfg x\nnode 0 frob\nend\n",
            2,
            K::UnknownOpcode("frob".into()),
        ),
        (
            "non-numeric node id",
            "dfg x\nnode zero add\nend\n",
            2,
            K::BadInteger("zero".into()),
        ),
        (
            "out-of-order node ids",
            "dfg x\nnode 1 add\nend\n",
            2,
            K::NonSequentialNode {
                expected: 0,
                found: 1,
            },
        ),
        (
            "duplicate node id",
            "dfg x\nnode 0 add\nnode 0 sub\nend\n",
            3,
            K::NonSequentialNode {
                expected: 1,
                found: 0,
            },
        ),
        (
            "node trailing garbage",
            "dfg x\nnode 0 add junk\nend\n",
            2,
            K::TrailingInput("junk".into()),
        ),
        (
            "edge to an undeclared node",
            "dfg x\nnode 0 in\nedge 0 7\nend\n",
            3,
            K::UndeclaredNode(7),
        ),
        (
            "edge with trailing garbage",
            "dfg x\nnode 0 in\nnode 1 not\nedge 0 1 2\nend\n",
            4,
            K::TrailingInput("2".into()),
        ),
        (
            "output referencing a forward node",
            "dfg x\noutput 0\nnode 0 in\nend\n",
            2,
            K::UndeclaredNode(0),
        ),
        (
            "forbid referencing an undeclared node",
            "dfg x\nnode 0 in\nforbid 3\nend\n",
            3,
            K::UndeclaredNode(3),
        ),
        (
            "missing meta key",
            "dfg x\nmeta\nend\n",
            2,
            K::MissingArgument("meta key"),
        ),
        (
            "unterminated block",
            "dfg x\nnode 0 in\n",
            1,
            K::UnterminatedBlock("x".into()),
        ),
        (
            "duplicate block names",
            "dfg x\nnode 0 in\nend\ndfg x\n",
            4,
            K::DuplicateBlockName("x".into()),
        ),
        (
            "end with trailing garbage",
            "dfg x\nnode 0 in\nend now\n",
            3,
            K::TrailingInput("now".into()),
        ),
    ];
    for (what, text, line, kind) in cases {
        let err = parse_corpus(text).expect_err(what);
        assert_eq!(err.line, *line, "{what}: wrong line ({err})");
        assert_eq!(&err.kind, kind, "{what}: wrong kind ({err})");
    }

    // Graph-level failures surface as `Graph` at the `end` line: a self loop and an
    // `in` node with a predecessor.
    let err = parse_corpus("dfg x\nnode 0 add\nedge 0 0\nend\n").expect_err("self loop");
    assert_eq!(err.line, 4);
    assert!(
        matches!(&err.kind, K::Graph { block, .. } if block == "x"),
        "{err}"
    );
    let err = parse_corpus("dfg x\nnode 0 add\nnode 1 in\nedge 0 1\nend\n").expect_err("fed input");
    assert_eq!(err.line, 5);
    assert!(matches!(&err.kind, K::Graph { .. }), "{err}");

    // An empty block is an empty graph.
    let err = parse_corpus("dfg x\nend\n").expect_err("empty block");
    assert!(matches!(&err.kind, K::Graph { .. }), "{err}");
}

/// Comments, blank lines and indentation are tolerated everywhere.
#[test]
fn comments_and_whitespace_are_ignored() {
    let text = "\
# header comment

dfg spaced
  # indented comment
  meta family test
  node 0 in @a
  node 1 not

  edge 0 1
end
";
    let blocks = parse_corpus(text).expect("parses");
    assert_eq!(blocks.len(), 1);
    assert_eq!(blocks[0].dfg.len(), 2);
    assert_eq!(blocks[0].meta, vec![("family".into(), "test".into())]);
}
