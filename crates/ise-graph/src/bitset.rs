//! A dense, fixed-capacity bit set over node indices.
//!
//! §5.4 of the paper stresses that careful, cache-friendly data structures are what make
//! the enumeration practical; all per-node set operations in this workspace (cut bodies,
//! input/output sets, reachability rows, dominator seed sets) use this representation.

use std::fmt;

use crate::node::NodeId;

const WORD_BITS: usize = 64;

/// A dense bit set of node indices with a fixed capacity.
///
/// The capacity is set at construction time to the number of vertices of the graph the
/// set refers to (possibly including the artificial source and sink). All operations
/// except iteration are `O(capacity / 64)` or `O(1)`.
///
/// # Example
///
/// ```
/// use ise_graph::{DenseNodeSet, NodeId};
///
/// let mut s = DenseNodeSet::new(10);
/// s.insert(NodeId::new(3));
/// s.insert(NodeId::new(7));
/// assert!(s.contains(NodeId::new(3)));
/// assert_eq!(s.len(), 2);
/// let ids: Vec<_> = s.iter().collect();
/// assert_eq!(ids, vec![NodeId::new(3), NodeId::new(7)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DenseNodeSet {
    words: Vec<u64>,
    capacity: usize,
}

impl DenseNodeSet {
    /// Creates an empty set able to hold node indices `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        DenseNodeSet {
            words: vec![0; capacity.div_ceil(WORD_BITS)],
            capacity,
        }
    }

    /// Creates a set containing every index in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for i in 0..capacity {
            s.insert(NodeId::from_index(i));
        }
        s
    }

    /// Creates a set with the given capacity containing the provided nodes.
    ///
    /// # Panics
    ///
    /// Panics if any node index is `>= capacity`.
    pub fn from_nodes(capacity: usize, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::new(capacity);
        for n in nodes {
            s.insert(n);
        }
        s
    }

    /// The capacity (exclusive upper bound on node indices) of this set.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the set contains no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `node` is a member of the set.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.capacity()`.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.capacity,
            "node {node} out of set capacity {}",
            self.capacity
        );
        self.words[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Inserts `node`; returns `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.capacity()`.
    #[inline]
    pub fn insert(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.capacity,
            "node {node} out of set capacity {}",
            self.capacity
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Removes `node`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `node.index() >= self.capacity()`.
    #[inline]
    pub fn remove(&mut self, node: NodeId) -> bool {
        let i = node.index();
        assert!(
            i < self.capacity,
            "node {node} out of set capacity {}",
            self.capacity
        );
        let word = &mut self.words[i / WORD_BITS];
        let mask = 1u64 << (i % WORD_BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn union_with(&mut self, other: &DenseNodeSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch in union");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersect_with(&mut self, other: &DenseNodeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in intersection"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference_with(&mut self, other: &DenseNodeSet) {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in difference"
        );
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// Removes every member of `other` from `self`, returning how many elements were
    /// actually removed. Word-level `self \ other`, the counting twin of
    /// [`DenseNodeSet::difference_with`].
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn remove_all(&mut self, other: &DenseNodeSet) -> usize {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in remove_all"
        );
        let mut removed = 0;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            removed += (*a & b).count_ones() as usize;
            *a &= !b;
        }
        removed
    }

    /// The raw 64-bit words backing the set, low indices first.
    ///
    /// Two sets of the same capacity are equal iff their words are equal, so the word
    /// slice doubles as a packed, allocation-free identity key (hashable one word at a
    /// time); the enumeration engine uses it to de-duplicate cut bodies.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Whether `self` and `other` share no element.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_disjoint(&self, other: &DenseNodeSet) -> bool {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in is_disjoint"
        );
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is also in `other`.
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn is_subset(&self, other: &DenseNodeSet) -> bool {
        assert_eq!(
            self.capacity, other.capacity,
            "capacity mismatch in is_subset"
        );
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_index: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Returns the members as a sorted vector, convenient for deterministic output.
    pub fn to_vec(&self) -> Vec<NodeId> {
        self.iter().collect()
    }
}

impl fmt::Debug for DenseNodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for DenseNodeSet {
    /// Builds a set whose capacity is one more than the largest inserted index.
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let nodes: Vec<NodeId> = iter.into_iter().collect();
        let capacity = nodes.iter().map(|n| n.index() + 1).max().unwrap_or(0);
        Self::from_nodes(capacity, nodes)
    }
}

impl Extend<NodeId> for DenseNodeSet {
    fn extend<T: IntoIterator<Item = NodeId>>(&mut self, iter: T) {
        for n in iter {
            self.insert(n);
        }
    }
}

impl<'a> IntoIterator for &'a DenseNodeSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Iterator over the members of a [`DenseNodeSet`], produced by [`DenseNodeSet::iter`].
pub struct Iter<'a> {
    set: &'a DenseNodeSet,
    word_index: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(NodeId::from_index(self.word_index * WORD_BITS + bit));
            }
            self.word_index += 1;
            if self.word_index >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_index];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn insert_contains_remove() {
        let mut s = DenseNodeSet::new(130);
        assert!(s.is_empty());
        assert!(s.insert(n(0)));
        assert!(s.insert(n(63)));
        assert!(s.insert(n(64)));
        assert!(s.insert(n(129)));
        assert!(!s.insert(n(129)));
        assert_eq!(s.len(), 4);
        assert!(s.contains(n(63)));
        assert!(!s.contains(n(62)));
        assert!(s.remove(n(63)));
        assert!(!s.remove(n(63)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn set_algebra() {
        let a = DenseNodeSet::from_nodes(100, [n(1), n(2), n(3), n(70)]);
        let b = DenseNodeSet::from_nodes(100, [n(2), n(70), n(99)]);

        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.to_vec(), vec![n(1), n(2), n(3), n(70), n(99)]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.to_vec(), vec![n(2), n(70)]);

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![n(1), n(3)]);

        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
        assert!(d.is_disjoint(&b));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn remove_all_counts_removed_members() {
        let mut a = DenseNodeSet::from_nodes(100, [n(1), n(2), n(3), n(70)]);
        let b = DenseNodeSet::from_nodes(100, [n(2), n(70), n(99)]);
        assert_eq!(a.remove_all(&b), 2);
        assert_eq!(a.to_vec(), vec![n(1), n(3)]);
        assert_eq!(a.remove_all(&b), 0);
    }

    #[test]
    fn words_expose_the_packed_representation() {
        let a = DenseNodeSet::from_nodes(130, [n(0), n(64), n(129)]);
        assert_eq!(a.words().len(), 3);
        assert_eq!(a.words()[0], 1);
        assert_eq!(a.words()[1], 1);
        assert_eq!(a.words()[2], 1 << 1);
        let b = DenseNodeSet::from_nodes(130, [n(0), n(64), n(129)]);
        assert_eq!(a.words(), b.words());
    }

    #[test]
    fn iteration_order_is_sorted() {
        let s = DenseNodeSet::from_nodes(200, [n(150), n(3), n(64), n(65)]);
        assert_eq!(s.to_vec(), vec![n(3), n(64), n(65), n(150)]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = DenseNodeSet::full(70);
        assert_eq!(s.len(), 70);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 70);
    }

    #[test]
    fn from_iterator_sizes_capacity() {
        let s: DenseNodeSet = [n(5), n(2)].into_iter().collect();
        assert_eq!(s.capacity(), 6);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn extend_adds_members() {
        let mut s = DenseNodeSet::new(10);
        s.extend([n(1), n(2)]);
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of set capacity")]
    fn out_of_capacity_panics() {
        let s = DenseNodeSet::new(4);
        let _ = s.contains(n(4));
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn capacity_mismatch_panics() {
        let mut a = DenseNodeSet::new(4);
        let b = DenseNodeSet::new(5);
        a.union_with(&b);
    }

    #[test]
    fn debug_lists_members() {
        let s = DenseNodeSet::from_nodes(8, [n(1), n(7)]);
        assert_eq!(format!("{s:?}"), "{n1, n7}");
    }
}
