//! The basic-block data-flow graph.

use crate::bitset::DenseNodeSet;
use crate::csr::CsrAdjacency;
use crate::error::GraphError;
use crate::node::{Node, NodeId};
use crate::op::Operation;
use crate::topo::topological_order;

/// The data-flow graph of a basic block (§3 of the paper).
///
/// Vertices are operations, edges follow data-flow direction (from producer to
/// consumer). The graph is a DAG. Three vertex subsets matter to ISE identification:
///
/// * **external inputs** `Iext`: root vertices whose value is produced outside the basic
///   block (they are implicitly forbidden inside a cut, but may be *inputs* of a cut);
/// * **external outputs** `Oext`: vertices whose value is observable outside the basic
///   block; this set is a superset of the vertices with no successors;
/// * **forbidden nodes** `F`: vertices that may never belong to a cut (memory accesses,
///   calls, plus anything the user marks explicitly).
///
/// Construct a `Dfg` with [`crate::DfgBuilder`] or [`Dfg::from_edges`].
#[derive(Clone, Debug)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    /// Predecessor rows in CSR form (operand order preserved per row); the
    /// [`Dfg::preds`] slice API is unchanged, only the storage is flat.
    preds: CsrAdjacency,
    /// Successor rows in CSR form (edge insertion order preserved per row).
    succs: CsrAdjacency,
    external_inputs: Vec<NodeId>,
    external_outputs: Vec<NodeId>,
    forbidden: DenseNodeSet,
    topo: Vec<NodeId>,
}

impl Dfg {
    /// Builds a graph from an explicit edge list.
    ///
    /// `ops[i]` is the operation of node `i`; `edges` are `(from, to)` pairs in
    /// data-flow direction. External inputs are derived from `Operation::Input` nodes,
    /// external outputs are the nodes listed in `outputs` plus every node without
    /// successors, and the forbidden set is `forbidden` plus every operation for which
    /// [`Operation::is_default_forbidden`] holds.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the graph is empty, an edge endpoint is out of range,
    /// an edge is a self loop, or the edges contain a cycle.
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use ise_graph::{Dfg, NodeId, Operation};
    ///
    /// let ops = vec![Operation::Input, Operation::Input, Operation::Add];
    /// let edges = vec![(NodeId::new(0), NodeId::new(2)), (NodeId::new(1), NodeId::new(2))];
    /// let dfg = Dfg::from_edges("sum", ops, edges, [], [])?;
    /// assert_eq!(dfg.len(), 3);
    /// assert_eq!(dfg.external_outputs(), &[NodeId::new(2)]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_edges(
        name: impl Into<String>,
        ops: Vec<Operation>,
        edges: Vec<(NodeId, NodeId)>,
        outputs: impl IntoIterator<Item = NodeId>,
        forbidden: impl IntoIterator<Item = NodeId>,
    ) -> Result<Self, GraphError> {
        let nodes: Vec<Node> = ops.into_iter().map(Node::new).collect();
        Self::from_parts(name.into(), nodes, edges, outputs, forbidden)
    }

    /// Builds a graph from full node payloads (operation plus optional symbolic name)
    /// instead of bare operations — the constructor used by deserializers such as the
    /// `ise-corpus` `.dfg` parser, which must preserve `@` names across a round trip.
    ///
    /// Validation is identical to [`Dfg::from_edges`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] under the same conditions as [`Dfg::from_edges`].
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use ise_graph::{Dfg, Node, NodeId, Operation};
    ///
    /// let nodes = vec![
    ///     Node::new(Operation::Input).with_name("a"),
    ///     Node::new(Operation::Not),
    /// ];
    /// let dfg = Dfg::from_nodes("neg", nodes, vec![(NodeId::new(0), NodeId::new(1))], [], [])?;
    /// assert_eq!(dfg.node(NodeId::new(0)).name(), Some("a"));
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_nodes(
        name: impl Into<String>,
        nodes: Vec<Node>,
        edges: Vec<(NodeId, NodeId)>,
        outputs: impl IntoIterator<Item = NodeId>,
        forbidden: impl IntoIterator<Item = NodeId>,
    ) -> Result<Self, GraphError> {
        Self::from_parts(name.into(), nodes, edges, outputs, forbidden)
    }

    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        edges: Vec<(NodeId, NodeId)>,
        outputs: impl IntoIterator<Item = NodeId>,
        forbidden: impl IntoIterator<Item = NodeId>,
    ) -> Result<Self, GraphError> {
        let n = nodes.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let check = |node: NodeId| -> Result<(), GraphError> {
            if node.index() >= n {
                Err(GraphError::UnknownNode { node, len: n })
            } else {
                Ok(())
            }
        };

        for &(from, to) in &edges {
            check(from)?;
            check(to)?;
            if from == to {
                return Err(GraphError::SelfLoop { node: from });
            }
        }
        // Flatten both directions into CSR arenas; the stable grouping keeps each
        // predecessor row in edge-list order, which is the operand order contract.
        let succs = CsrAdjacency::forward(n, &edges);
        let preds = CsrAdjacency::backward(n, &edges);

        let topo = topological_order(&succs, &preds).map_err(|node| GraphError::Cycle { node })?;

        for (i, node) in nodes.iter().enumerate() {
            if node.op() == Operation::Input && !preds.row(NodeId::from_index(i)).is_empty() {
                return Err(GraphError::InvalidMark {
                    node: NodeId::from_index(i),
                    reason: "external input has predecessors",
                });
            }
        }
        // Iext is, per §3 of the paper, the set of root vertices: every vertex without
        // predecessors (live-in values and constants alike) is produced outside the
        // computation of the block.
        let external_inputs: Vec<NodeId> = (0..n)
            .map(NodeId::from_index)
            .filter(|&id| preds.row(id).is_empty())
            .collect();

        let mut output_set = DenseNodeSet::new(n);
        for id in outputs {
            check(id)?;
            output_set.insert(id);
        }
        // Oext is a superset of the vertices without successors (§3).
        for (i, row) in succs.rows().enumerate() {
            if row.is_empty() {
                output_set.insert(NodeId::from_index(i));
            }
        }
        let external_outputs = output_set.to_vec();

        let mut forbidden_set = DenseNodeSet::new(n);
        for id in forbidden {
            check(id)?;
            forbidden_set.insert(id);
        }
        for (i, node) in nodes.iter().enumerate() {
            if node.op().is_default_forbidden() {
                forbidden_set.insert(NodeId::from_index(i));
            }
        }

        Ok(Dfg {
            name,
            nodes,
            preds,
            succs,
            external_inputs,
            external_outputs,
            forbidden: forbidden_set,
            topo,
        })
    }

    /// The symbolic name of the basic block this graph was built from.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no vertices. Note that [`Dfg::from_edges`] refuses to build
    /// empty graphs, so this is `false` for any successfully constructed graph.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over all node ids in increasing index order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// The payload of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn node(&self, node: NodeId) -> &Node {
        &self.nodes[node.index()]
    }

    /// The operation of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn op(&self, node: NodeId) -> Operation {
        self.nodes[node.index()].op()
    }

    /// Direct predecessors (operand producers) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn preds(&self, node: NodeId) -> &[NodeId] {
        self.preds.row(node)
    }

    /// Direct successors (consumers) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn succs(&self, node: NodeId) -> &[NodeId] {
        self.succs.row(node)
    }

    /// The external inputs `Iext`: every root vertex (no predecessors), i.e. live-in
    /// variables and constants, whose value is produced outside the block (§3).
    pub fn external_inputs(&self) -> &[NodeId] {
        &self.external_inputs
    }

    /// The external outputs `Oext` (vertices observable outside the block).
    pub fn external_outputs(&self) -> &[NodeId] {
        &self.external_outputs
    }

    /// The user- and operation-derived forbidden set `F` (excluding external inputs,
    /// which are implicitly forbidden and tracked separately).
    pub fn forbidden(&self) -> &DenseNodeSet {
        &self.forbidden
    }

    /// Whether `node` is forbidden (may not belong to any cut).
    ///
    /// External inputs (all root vertices, including constants) report `true` as well:
    /// their value is computed outside the basic block (§3), so they can only ever be
    /// inputs of a cut.
    pub fn is_forbidden(&self, node: NodeId) -> bool {
        self.forbidden.contains(node) || self.preds(node).is_empty()
    }

    /// A topological order of the vertices (producers before consumers).
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// The predecessor adjacency as its flat CSR representation (rows in operand
    /// order) — for algorithms that take a whole direction at once
    /// (e.g. [`crate::depths_from_roots`]) without copying rows out.
    pub fn preds_adjacency(&self) -> &CsrAdjacency {
        &self.preds
    }

    /// The successor adjacency as its flat CSR representation.
    pub fn succs_adjacency(&self) -> &CsrAdjacency {
        &self.succs
    }

    /// Total number of edges.
    pub fn edge_count(&self) -> usize {
        self.succs.num_edges()
    }

    /// Iterates over every edge as a `(from, to)` pair.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.succs
            .rows()
            .enumerate()
            .flat_map(|(i, outs)| outs.iter().map(move |&to| (NodeId::from_index(i), to)))
    }

    /// Creates an empty set sized for this graph's nodes.
    pub fn node_set(&self) -> DenseNodeSet {
        DenseNodeSet::new(self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    fn diamond() -> Dfg {
        // in0   in1
        //   \   /
        //    add(2)
        //   /    \
        // shl(3)  mul(4)
        //   \    /
        //    sub(5)
        Dfg::from_edges(
            "diamond",
            vec![
                Operation::Input,
                Operation::Input,
                Operation::Add,
                Operation::Shl,
                Operation::Mul,
                Operation::Sub,
            ],
            vec![
                (n(0), n(2)),
                (n(1), n(2)),
                (n(2), n(3)),
                (n(2), n(4)),
                (n(3), n(5)),
                (n(4), n(5)),
            ],
            [],
            [],
        )
        .expect("valid graph")
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.name(), "diamond");
        assert_eq!(g.len(), 6);
        assert!(!g.is_empty());
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.preds(n(2)), &[n(0), n(1)]);
        assert_eq!(g.succs(n(2)), &[n(3), n(4)]);
        assert_eq!(g.op(n(4)), Operation::Mul);
        assert_eq!(g.node(n(4)).op(), Operation::Mul);
        assert_eq!(g.node_ids().count(), 6);
        assert_eq!(g.edges().count(), 6);
        assert_eq!(g.node_set().capacity(), 6);
    }

    #[test]
    fn external_sets_are_derived() {
        let g = diamond();
        assert_eq!(g.external_inputs(), &[n(0), n(1)]);
        // n5 has no successors, so it is an external output even though not marked.
        assert_eq!(g.external_outputs(), &[n(5)]);
    }

    #[test]
    fn explicit_outputs_are_superset_of_sinks() {
        let g = Dfg::from_edges(
            "two-outs",
            vec![Operation::Input, Operation::Add, Operation::Mul],
            vec![(n(0), n(1)), (n(1), n(2))],
            [n(1)],
            [],
        )
        .unwrap();
        assert_eq!(g.external_outputs(), &[n(1), n(2)]);
    }

    #[test]
    fn forbidden_includes_memory_and_inputs() {
        let g = Dfg::from_edges(
            "mem",
            vec![Operation::Input, Operation::Load, Operation::Add],
            vec![(n(0), n(1)), (n(1), n(2))],
            [],
            [],
        )
        .unwrap();
        assert!(
            g.is_forbidden(n(0)),
            "external inputs are implicitly forbidden"
        );
        assert!(g.is_forbidden(n(1)), "loads are forbidden by default");
        assert!(!g.is_forbidden(n(2)));
        assert!(g.forbidden().contains(n(1)));
        assert!(
            !g.forbidden().contains(n(0)),
            "Iext tracked separately from F"
        );
    }

    #[test]
    fn user_forbidden_nodes_are_respected() {
        let g = Dfg::from_edges(
            "user-forbidden",
            vec![Operation::Input, Operation::Mul, Operation::Add],
            vec![(n(0), n(1)), (n(1), n(2))],
            [],
            [n(1)],
        )
        .unwrap();
        assert!(g.is_forbidden(n(1)));
    }

    #[test]
    fn topological_order_respects_edges() {
        let g = diamond();
        let order = g.topological_order();
        let pos: Vec<usize> = (0..g.len())
            .map(|i| order.iter().position(|&x| x == n(i)).unwrap())
            .collect();
        for (from, to) in g.edges() {
            assert!(pos[from.index()] < pos[to.index()]);
        }
    }

    #[test]
    fn empty_graph_is_rejected() {
        let err = Dfg::from_edges("empty", vec![], vec![], [], []).unwrap_err();
        assert_eq!(err, GraphError::Empty);
    }

    #[test]
    fn unknown_edge_endpoint_is_rejected() {
        let err =
            Dfg::from_edges("bad", vec![Operation::Add], vec![(n(0), n(3))], [], []).unwrap_err();
        assert_eq!(err, GraphError::UnknownNode { node: n(3), len: 1 });
    }

    #[test]
    fn self_loop_is_rejected() {
        let err =
            Dfg::from_edges("loop", vec![Operation::Add], vec![(n(0), n(0))], [], []).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: n(0) });
    }

    #[test]
    fn cycle_is_rejected() {
        let err = Dfg::from_edges(
            "cycle",
            vec![Operation::Add, Operation::Sub],
            vec![(n(0), n(1)), (n(1), n(0))],
            [],
            [],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::Cycle { .. }));
    }

    #[test]
    fn input_with_predecessor_is_rejected() {
        let err = Dfg::from_edges(
            "bad-input",
            vec![Operation::Add, Operation::Input],
            vec![(n(0), n(1))],
            [],
            [],
        )
        .unwrap_err();
        assert!(matches!(err, GraphError::InvalidMark { node, .. } if node == n(1)));
    }
}
