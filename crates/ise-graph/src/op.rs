//! Operations carried by data-flow-graph nodes and their latency model.
//!
//! The enumeration algorithm of the paper is agnostic of operation semantics: it only
//! needs to know which nodes are *forbidden* (not allowed inside a custom instruction,
//! typically memory accesses) and, for the downstream speedup model (§1/§7 of the
//! paper), how long each operation takes in software versus inside a custom functional
//! unit. This module provides a realistic embedded-RISC operation alphabet and a simple
//! latency model so that the workloads and the merit function operate on meaningful
//! numbers.

use std::fmt;

/// The operation computed by a DFG node.
///
/// The alphabet follows the mix found in embedded integer kernels (the MiBench suite the
/// paper evaluates on): ALU operations, shifts, multiplication/division, comparisons and
/// selects, memory accesses and the pseudo-operations used to model basic-block
/// boundaries (external inputs, constants).
///
/// # Example
///
/// ```
/// use ise_graph::{Operation, OperationClass};
///
/// assert_eq!(Operation::Load.class(), OperationClass::Memory);
/// assert!(Operation::Load.is_memory());
/// assert!(!Operation::Add.is_memory());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Operation {
    /// Value produced outside the basic block (register or immediate live-in).
    Input,
    /// Compile-time constant.
    Const,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Bitwise not / sign manipulation.
    Not,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Integer multiplication.
    Mul,
    /// Integer division.
    Div,
    /// Remainder.
    Rem,
    /// Integer comparison producing a flag/boolean.
    Cmp,
    /// Conditional select (`cond ? a : b`).
    Select,
    /// Zero/sign extension, truncation and similar width changes.
    Extend,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Function call or other opaque side-effecting operation.
    Call,
}

/// Coarse classification of [`Operation`]s, used by workload generators and the latency
/// model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum OperationClass {
    /// Pseudo-operations that carry values into the block (inputs, constants).
    Source,
    /// Single-cycle arithmetic and logic.
    Alu,
    /// Shifts.
    Shift,
    /// Multi-cycle arithmetic (multiply, divide).
    MulDiv,
    /// Comparisons and selects.
    Predicate,
    /// Memory accesses.
    Memory,
    /// Opaque side-effecting operations.
    Opaque,
}

impl Operation {
    /// Returns the coarse class of this operation.
    pub fn class(self) -> OperationClass {
        use Operation::*;
        match self {
            Input | Const => OperationClass::Source,
            Add | Sub | And | Or | Xor | Not | Extend => OperationClass::Alu,
            Shl | Shr | Sar => OperationClass::Shift,
            Mul | Div | Rem => OperationClass::MulDiv,
            Cmp | Select => OperationClass::Predicate,
            Load | Store => OperationClass::Memory,
            Call => OperationClass::Opaque,
        }
    }

    /// Whether this operation accesses memory. Memory operations are forbidden inside
    /// custom instructions when the custom functional unit has no memory port (§3).
    pub fn is_memory(self) -> bool {
        self.class() == OperationClass::Memory
    }

    /// Whether this operation is a pseudo-source (external input or constant).
    pub fn is_source(self) -> bool {
        self.class() == OperationClass::Source
    }

    /// Whether this operation is usually disallowed inside a custom functional unit:
    /// memory accesses and opaque calls.
    pub fn is_default_forbidden(self) -> bool {
        matches!(
            self.class(),
            OperationClass::Memory | OperationClass::Opaque
        )
    }

    /// A short lower-case mnemonic, used in DOT dumps and debugging output.
    pub fn mnemonic(self) -> &'static str {
        use Operation::*;
        match self {
            Input => "in",
            Const => "const",
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shl => "shl",
            Shr => "shr",
            Sar => "sar",
            Mul => "mul",
            Div => "div",
            Rem => "rem",
            Cmp => "cmp",
            Select => "select",
            Extend => "ext",
            Load => "load",
            Store => "store",
            Call => "call",
        }
    }

    /// Parses a mnemonic (as produced by [`Operation::mnemonic`]) back into the
    /// operation, the inverse used by the textual DFG interchange format of
    /// `ise-corpus`.
    ///
    /// # Example
    ///
    /// ```
    /// use ise_graph::Operation;
    ///
    /// assert_eq!(Operation::from_mnemonic("add"), Some(Operation::Add));
    /// assert_eq!(Operation::from_mnemonic("load"), Some(Operation::Load));
    /// assert_eq!(Operation::from_mnemonic("frobnicate"), None);
    /// ```
    pub fn from_mnemonic(mnemonic: &str) -> Option<Operation> {
        Operation::all()
            .iter()
            .copied()
            .find(|op| op.mnemonic() == mnemonic)
    }

    /// All concrete operations, useful for workload generators.
    pub fn all() -> &'static [Operation] {
        use Operation::*;
        &[
            Input, Const, Add, Sub, And, Or, Xor, Not, Shl, Shr, Sar, Mul, Div, Rem, Cmp, Select,
            Extend, Load, Store, Call,
        ]
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Latency model used by the speedup estimation of custom instructions.
///
/// `software_cycles` is the number of processor cycles the operation takes when executed
/// on the base pipeline; `hardware_delay` is its normalized propagation delay when
/// implemented inside a custom functional unit (in fractions of a processor cycle), so
/// that the critical path of a cut measured in `hardware_delay` units, rounded up,
/// approximates the latency in cycles of the resulting custom instruction. The default
/// numbers follow the commonly used models in the ISE literature (single-cycle ALU,
/// multi-cycle multiply/divide, memory excluded from the datapath).
///
/// # Example
///
/// ```
/// use ise_graph::{LatencyModel, Operation};
///
/// let model = LatencyModel::default();
/// assert!(model.software_cycles(Operation::Mul) > model.software_cycles(Operation::Add));
/// assert!(model.hardware_delay(Operation::Add) < 1.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyModel {
    alu_sw: u32,
    shift_sw: u32,
    muldiv_sw: u32,
    predicate_sw: u32,
    memory_sw: u32,
    opaque_sw: u32,
    alu_hw: f64,
    shift_hw: f64,
    muldiv_hw: f64,
    predicate_hw: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            alu_sw: 1,
            shift_sw: 1,
            muldiv_sw: 3,
            predicate_sw: 1,
            memory_sw: 2,
            opaque_sw: 4,
            alu_hw: 0.30,
            shift_hw: 0.20,
            muldiv_hw: 1.60,
            predicate_hw: 0.25,
        }
    }
}

impl LatencyModel {
    /// Creates the default latency model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Software latency of `op` in processor cycles on the base pipeline.
    pub fn software_cycles(&self, op: Operation) -> u32 {
        match op.class() {
            OperationClass::Source => 0,
            OperationClass::Alu => self.alu_sw,
            OperationClass::Shift => self.shift_sw,
            OperationClass::MulDiv => self.muldiv_sw,
            OperationClass::Predicate => self.predicate_sw,
            OperationClass::Memory => self.memory_sw,
            OperationClass::Opaque => self.opaque_sw,
        }
    }

    /// Normalized hardware propagation delay of `op` inside a custom functional unit,
    /// in fractions of a processor clock cycle.
    ///
    /// Memory and opaque operations cannot be implemented inside the functional unit;
    /// they are reported with an effectively infinite delay so that accidentally
    /// including them in a datapath estimate is visible.
    pub fn hardware_delay(&self, op: Operation) -> f64 {
        match op.class() {
            OperationClass::Source => 0.0,
            OperationClass::Alu => self.alu_hw,
            OperationClass::Shift => self.shift_hw,
            OperationClass::MulDiv => self.muldiv_hw,
            OperationClass::Predicate => self.predicate_hw,
            OperationClass::Memory | OperationClass::Opaque => f64::INFINITY,
        }
    }

    /// Overrides the software latency of multi-cycle arithmetic.
    #[must_use]
    pub fn with_muldiv_cycles(mut self, cycles: u32) -> Self {
        self.muldiv_sw = cycles;
        self
    }

    /// Overrides the software latency of memory operations.
    #[must_use]
    pub fn with_memory_cycles(mut self, cycles: u32) -> Self {
        self.memory_sw = cycles;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_consistent() {
        for &op in Operation::all() {
            match op {
                Operation::Load | Operation::Store => {
                    assert!(op.is_memory());
                    assert!(op.is_default_forbidden());
                }
                Operation::Call => {
                    assert!(!op.is_memory());
                    assert!(op.is_default_forbidden());
                }
                Operation::Input | Operation::Const => {
                    assert!(op.is_source());
                    assert!(!op.is_default_forbidden());
                }
                _ => {
                    assert!(!op.is_memory());
                    assert!(!op.is_default_forbidden());
                    assert!(!op.is_source());
                }
            }
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for &op in Operation::all() {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op);
        }
    }

    #[test]
    fn mnemonics_round_trip() {
        for &op in Operation::all() {
            assert_eq!(Operation::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Operation::from_mnemonic(""), None);
        assert_eq!(Operation::from_mnemonic("ADD"), None, "case sensitive");
    }

    #[test]
    fn display_matches_mnemonic() {
        assert_eq!(Operation::Select.to_string(), "select");
        assert_eq!(Operation::Sar.to_string(), "sar");
    }

    #[test]
    fn default_latency_model_is_sane() {
        let m = LatencyModel::default();
        for &op in Operation::all() {
            if op.is_source() {
                assert_eq!(m.software_cycles(op), 0);
            } else {
                assert!(m.software_cycles(op) >= 1);
            }
            if !op.is_default_forbidden() {
                assert!(m.hardware_delay(op).is_finite());
            }
        }
        assert!(m.hardware_delay(Operation::Load).is_infinite());
    }

    #[test]
    fn latency_model_overrides() {
        let m = LatencyModel::new()
            .with_muldiv_cycles(5)
            .with_memory_cycles(10);
        assert_eq!(m.software_cycles(Operation::Mul), 5);
        assert_eq!(m.software_cycles(Operation::Store), 10);
    }
}
