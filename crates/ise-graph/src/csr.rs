//! Compressed sparse row (CSR) adjacency storage.
//!
//! The enumeration hot paths — the engine's support-counter cascades, the backward
//! closure of `cone()`, reachability and dominator sweeps — read adjacency rows far
//! more often than anything else touches the graph. A `Vec<Vec<NodeId>>` adjacency
//! puts every row behind its own heap allocation, so walking a vertex's neighbours
//! costs one pointer chase per row and the rows of consecutive vertices land wherever
//! the allocator put them. [`CsrAdjacency`] flattens the whole direction into one edge
//! arena plus an offset table: `row(v)` is a bounds check and a slice, and rows of
//! nearby vertices share cache lines.
//!
//! Rows preserve *insertion order* of the underlying edge list, which is load-bearing:
//! `Dfg` defines operand order as edge order (non-commutative operations, the corpus
//! writer's canonical form), so the CSR build must be a stable grouping, not a sort.

use crate::node::NodeId;

/// One direction of a graph's adjacency (all successor rows or all predecessor rows),
/// stored as a flat edge arena plus a per-vertex offset table.
///
/// Build it with [`CsrAdjacency::forward`] (rows keyed by edge source) or
/// [`CsrAdjacency::backward`] (rows keyed by edge target); both preserve the order of
/// the given edge list within each row.
///
/// # Example
///
/// ```
/// use ise_graph::{CsrAdjacency, NodeId};
///
/// let n = |i| NodeId::new(i);
/// let edges = [(n(0), n(2)), (n(1), n(2)), (n(0), n(1))];
/// let succs = CsrAdjacency::forward(3, &edges);
/// assert_eq!(succs.row(n(0)), &[n(2), n(1)]); // insertion order, not sorted
/// let preds = CsrAdjacency::backward(3, &edges);
/// assert_eq!(preds.row(n(2)), &[n(0), n(1)]); // operand order preserved
/// assert_eq!(preds.row(n(0)), &[]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrAdjacency {
    /// `offsets[v]..offsets[v + 1]` indexes `row(v)` within `targets`.
    offsets: Vec<u32>,
    /// All rows back to back.
    targets: Vec<NodeId>,
}

impl CsrAdjacency {
    /// Builds the adjacency keyed by `key(edge)`, storing `value(edge)` in the rows,
    /// preserving edge-list order within each row.
    fn grouped<E: Copy>(
        num_nodes: usize,
        edges: &[E],
        key: impl Fn(E) -> NodeId,
        value: impl Fn(E) -> NodeId,
    ) -> Self {
        assert!(
            edges.len() <= u32::MAX as usize,
            "CSR offsets are 32-bit; {} edges exceed the format",
            edges.len()
        );
        let mut offsets = vec![0u32; num_nodes + 1];
        for &e in edges {
            offsets[key(e).index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        // Stable fill: a per-vertex cursor walks the edge list in order, so each row
        // keeps the edge-list order (operand order for predecessor rows).
        let mut cursor: Vec<u32> = offsets[..num_nodes].to_vec();
        let mut targets = vec![NodeId::from_index(0); edges.len()];
        for &e in edges {
            let k = key(e).index();
            targets[cursor[k] as usize] = value(e);
            cursor[k] += 1;
        }
        CsrAdjacency { offsets, targets }
    }

    /// Builds successor rows: `row(v)` lists the `to` of every edge `(v, to)`, in
    /// edge-list order.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range for `num_nodes`, or if the edge
    /// count exceeds `u32::MAX`.
    pub fn forward(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        Self::grouped(num_nodes, edges, |(from, _)| from, |(_, to)| to)
    }

    /// Builds predecessor rows: `row(v)` lists the `from` of every edge `(from, v)`,
    /// in edge-list order (i.e. operand order when the edge list is operand-ordered).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range for `num_nodes`, or if the edge
    /// count exceeds `u32::MAX`.
    pub fn backward(num_nodes: usize, edges: &[(NodeId, NodeId)]) -> Self {
        Self::grouped(num_nodes, edges, |(_, to)| to, |(from, _)| from)
    }

    /// The neighbour row of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[inline]
    pub fn row(&self, node: NodeId) -> &[NodeId] {
        let i = node.index();
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of vertices the adjacency was built for.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Iterates over the rows in vertex order.
    pub fn rows(&self) -> impl Iterator<Item = &[NodeId]> + '_ {
        (0..self.num_nodes()).map(move |i| self.row(NodeId::from_index(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn forward_and_backward_group_by_the_right_endpoint() {
        let edges = [(n(0), n(2)), (n(1), n(2)), (n(2), n(3)), (n(0), n(3))];
        let succs = CsrAdjacency::forward(4, &edges);
        assert_eq!(succs.row(n(0)), &[n(2), n(3)]);
        assert_eq!(succs.row(n(1)), &[n(2)]);
        assert_eq!(succs.row(n(2)), &[n(3)]);
        assert_eq!(succs.row(n(3)), &[]);
        let preds = CsrAdjacency::backward(4, &edges);
        assert_eq!(preds.row(n(0)), &[]);
        assert_eq!(preds.row(n(2)), &[n(0), n(1)]);
        assert_eq!(preds.row(n(3)), &[n(2), n(0)]);
        assert_eq!(succs.num_nodes(), 4);
        assert_eq!(succs.num_edges(), 4);
    }

    #[test]
    fn rows_preserve_edge_list_order_not_sorted_order() {
        // Operand order: node 3 consumes (2, 0, 1) in that order.
        let edges = [(n(2), n(3)), (n(0), n(3)), (n(1), n(3))];
        let preds = CsrAdjacency::backward(4, &edges);
        assert_eq!(preds.row(n(3)), &[n(2), n(0), n(1)]);
    }

    #[test]
    fn empty_and_isolated_rows_are_empty_slices() {
        let adj = CsrAdjacency::forward(3, &[]);
        assert_eq!(adj.num_edges(), 0);
        assert!(adj.rows().all(<[NodeId]>::is_empty));
    }

    #[test]
    fn rows_iterates_in_vertex_order() {
        let edges = [(n(1), n(0)), (n(2), n(0)), (n(2), n(1))];
        let succs = CsrAdjacency::forward(3, &edges);
        let rows: Vec<&[NodeId]> = succs.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1], &[n(0)]);
        assert_eq!(rows[2], &[n(0), n(1)]);
    }
}
