//! Augmentation of a [`Dfg`] with an artificial source and sink.

use crate::bitset::DenseNodeSet;
use crate::csr::CsrAdjacency;
use crate::graph::Dfg;
use crate::node::NodeId;
use crate::topo::topological_order;

/// A [`Dfg`] augmented with a single artificial *source* and *sink* vertex (§3).
///
/// The source is a predecessor of every vertex that has no predecessors (external
/// inputs, constants, and user-forbidden nodes without predecessors), which makes the
/// graph rooted; the sink is a successor of every external output, which makes the
/// *reverse* graph rooted as well. Dominators are computed from the source,
/// postdominators from the sink.
///
/// Node ids of the original graph are preserved; the source and sink occupy the two
/// indices immediately after the original nodes.
///
/// The *effective forbidden set* of the rooted graph contains the user/operation
/// forbidden set `F`, the external inputs `Iext` (their values are computed outside the
/// block) and the two artificial vertices (they do not map to any computation).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_graph::{DfgBuilder, Operation, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// b.mark_output(x);
/// let rooted = RootedDfg::new(b.build()?);
///
/// assert_eq!(rooted.num_nodes(), 4); // a, x, source, sink
/// assert_eq!(rooted.succs(rooted.source()), &[a]);
/// assert_eq!(rooted.succs(x), &[rooted.sink()]);
/// assert!(rooted.is_forbidden(a));
/// assert!(!rooted.is_forbidden(x));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RootedDfg {
    dfg: Dfg,
    source: NodeId,
    sink: NodeId,
    /// Augmented predecessor rows in CSR form — this is the adjacency the engine's
    /// support-counter cascades and `cone()` walks read, so it lives in one flat
    /// arena rather than per-row allocations.
    preds: CsrAdjacency,
    /// Augmented successor rows in CSR form.
    succs: CsrAdjacency,
    forbidden: DenseNodeSet,
    topo: Vec<NodeId>,
}

impl RootedDfg {
    /// Augments `dfg` with the artificial source and sink.
    pub fn new(dfg: Dfg) -> Self {
        let n = dfg.len();
        let source = NodeId::from_index(n);
        let sink = NodeId::from_index(n + 1);
        let total = n + 2;

        // The two directions need differently ordered edge lists, because the CSR
        // build groups stably by one endpoint: successor rows must keep the original
        // succ-row (from-major) order, predecessor rows must keep operand (to-major)
        // order. Augmentation edges are appended after the originals, so `source`
        // stays the sole predecessor of each root and `sink` stays last in each
        // output's successor row, matching the pre-CSR push order.
        let extra = dfg.external_inputs().len() + dfg.external_outputs().len();
        let mut forward_edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(dfg.edge_count() + extra);
        forward_edges.extend(dfg.edges());
        let mut backward_edges: Vec<(NodeId, NodeId)> =
            Vec::with_capacity(dfg.edge_count() + extra);
        for v in dfg.node_ids() {
            backward_edges.extend(dfg.preds(v).iter().map(|&p| (p, v)));
        }
        for id in dfg.node_ids() {
            if dfg.preds(id).is_empty() {
                forward_edges.push((source, id));
                backward_edges.push((source, id));
            }
        }
        for &out in dfg.external_outputs() {
            forward_edges.push((out, sink));
            backward_edges.push((out, sink));
        }
        let succs = CsrAdjacency::forward(total, &forward_edges);
        let preds = CsrAdjacency::backward(total, &backward_edges);

        let mut forbidden = DenseNodeSet::new(total);
        for id in dfg.forbidden().iter() {
            forbidden.insert(id);
        }
        for &id in dfg.external_inputs() {
            forbidden.insert(id);
        }
        forbidden.insert(source);
        forbidden.insert(sink);

        let topo = topological_order(&succs, &preds)
            .expect("augmenting an acyclic graph cannot create cycles");

        RootedDfg {
            dfg,
            source,
            sink,
            preds,
            succs,
            forbidden,
            topo,
        }
    }

    /// The underlying (non-augmented) data-flow graph.
    pub fn dfg(&self) -> &Dfg {
        &self.dfg
    }

    /// Total number of vertices, including source and sink.
    pub fn num_nodes(&self) -> usize {
        self.dfg.len() + 2
    }

    /// Number of vertices of the original graph (excluding source and sink).
    pub fn original_len(&self) -> usize {
        self.dfg.len()
    }

    /// The artificial source vertex (root of the graph).
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The artificial sink vertex (root of the reverse graph).
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// Whether `node` is the artificial source or sink.
    pub fn is_artificial(&self, node: NodeId) -> bool {
        node == self.source || node == self.sink
    }

    /// Predecessors of `node` in the augmented graph.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn preds(&self, node: NodeId) -> &[NodeId] {
        self.preds.row(node)
    }

    /// Successors of `node` in the augmented graph.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn succs(&self, node: NodeId) -> &[NodeId] {
        self.succs.row(node)
    }

    /// The effective forbidden set: `F` ∪ `Iext` ∪ {source, sink}.
    pub fn forbidden(&self) -> &DenseNodeSet {
        &self.forbidden
    }

    /// Whether `node` may never be part of a cut.
    pub fn is_forbidden(&self, node: NodeId) -> bool {
        self.forbidden.contains(node)
    }

    /// Iterates over all vertex ids of the augmented graph (original nodes first, then
    /// source and sink).
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.num_nodes()).map(NodeId::from_index)
    }

    /// Iterates over the vertex ids of the original graph only.
    pub fn original_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.original_len()).map(NodeId::from_index)
    }

    /// A topological order of the augmented graph (source first, sink last).
    pub fn topological_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Creates an empty node set sized for the augmented graph.
    pub fn node_set(&self) -> DenseNodeSet {
        DenseNodeSet::new(self.num_nodes())
    }
}

impl From<Dfg> for RootedDfg {
    fn from(dfg: Dfg) -> Self {
        RootedDfg::new(dfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::Operation;

    fn sample() -> RootedDfg {
        let mut b = DfgBuilder::new("sample");
        let a = b.input("a");
        let c = b.constant("1");
        let add = b.node(Operation::Add, &[a, c]);
        let ld = b.node(Operation::Load, &[add]);
        let out = b.node(Operation::Xor, &[ld, add]);
        b.mark_output(out);
        RootedDfg::new(b.build().unwrap())
    }

    #[test]
    fn source_feeds_all_roots() {
        let r = sample();
        let source_succs = r.succs(r.source());
        assert_eq!(source_succs.len(), 2, "input and constant are roots");
        assert!(r.preds(NodeId::new(0)).contains(&r.source()));
        assert!(r.preds(NodeId::new(1)).contains(&r.source()));
    }

    #[test]
    fn outputs_feed_sink() {
        let r = sample();
        assert_eq!(r.preds(r.sink()), &[NodeId::new(4)]);
        assert!(r.succs(NodeId::new(4)).contains(&r.sink()));
    }

    #[test]
    fn effective_forbidden_set() {
        let r = sample();
        assert!(r.is_forbidden(NodeId::new(0)), "Iext");
        assert!(
            r.is_forbidden(NodeId::new(1)),
            "constants are roots and therefore Iext"
        );
        assert!(!r.is_forbidden(NodeId::new(2)));
        assert!(r.is_forbidden(NodeId::new(3)), "load");
        assert!(r.is_forbidden(r.source()));
        assert!(r.is_forbidden(r.sink()));
    }

    #[test]
    fn counts_and_artificial_checks() {
        let r = sample();
        assert_eq!(r.num_nodes(), 7);
        assert_eq!(r.original_len(), 5);
        assert!(r.is_artificial(r.source()));
        assert!(r.is_artificial(r.sink()));
        assert!(!r.is_artificial(NodeId::new(0)));
        assert_eq!(r.node_ids().count(), 7);
        assert_eq!(r.original_node_ids().count(), 5);
        assert_eq!(r.node_set().capacity(), 7);
    }

    #[test]
    fn topological_order_has_source_first_and_sink_last() {
        let r = sample();
        let order = r.topological_order();
        assert_eq!(order.len(), 7);
        assert_eq!(order[0], r.source());
        assert_eq!(*order.last().unwrap(), r.sink());
    }

    #[test]
    fn forbidden_roots_are_reachable_from_source() {
        // A store with no predecessors must still hang off the source so that the graph
        // stays rooted (§3: forbidden nodes are connected to the artificial source).
        let g = Dfg::from_edges(
            "store-root",
            vec![Operation::Store, Operation::Input, Operation::Add],
            vec![(NodeId::new(1), NodeId::new(2))],
            [],
            [],
        )
        .unwrap();
        let r = RootedDfg::new(g);
        assert!(r.succs(r.source()).contains(&NodeId::new(0)));
    }

    #[test]
    fn from_impl_matches_new() {
        let mut b = DfgBuilder::new("conv");
        let a = b.input("a");
        let _ = b.node(Operation::Not, &[a]);
        let dfg = b.build().unwrap();
        let r: RootedDfg = dfg.clone().into();
        assert_eq!(r.num_nodes(), RootedDfg::new(dfg).num_nodes());
    }
}
