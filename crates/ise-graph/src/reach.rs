//! Precomputed reachability and forbidden-path information (§5.3, §5.4).

use crate::bitset::DenseNodeSet;
use crate::node::NodeId;
use crate::rooted::RootedDfg;

/// Precomputed path information over a [`RootedDfg`].
///
/// §5.4 of the paper lists, among the precomputed data structures, "the presence of
/// paths between two nodes, and whether any of these paths touches a forbidden node".
/// This type stores exactly that, as one descendant bit-row per vertex:
///
/// * [`Reachability::reaches`] — is there a (possibly empty) path `from → to`?
/// * [`Reachability::forbidden_between`] — is there a path `from → to` that contains a
///   forbidden vertex strictly between the two endpoints? Such a pair can never be an
///   (input, output) pair of a valid cut (output–input pruning, §5.3).
///
/// Construction costs `O(n · e / 64)` time and `O(n² / 8)` bytes, negligible for the
/// basic-block sizes of interest (≤ ~1200 nodes).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_graph::{DfgBuilder, Operation, Reachability, RootedDfg};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let ld = b.node(Operation::Load, &[a]);
/// let add = b.node(Operation::Add, &[ld, a]);
/// let rooted = RootedDfg::new(b.build()?);
/// let reach = Reachability::compute(&rooted);
///
/// assert!(reach.reaches(a, add));
/// assert!(reach.forbidden_between(a, add), "the only a→add path through ld is blocked");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct Reachability {
    /// `descendants[v]` contains every vertex reachable from `v` by a non-empty path.
    descendants: Vec<DenseNodeSet>,
    /// `ancestors[v]` contains every vertex that reaches `v` by a non-empty path.
    ancestors: Vec<DenseNodeSet>,
    /// `tainted[v]` contains every vertex `w` such that some path `v → w` passes
    /// through a forbidden vertex strictly between `v` and `w`.
    tainted: Vec<DenseNodeSet>,
    /// `clean[v]` contains every vertex `w` such that some path `v → w` passes through
    /// no forbidden vertex strictly between `v` and `w`.
    clean: Vec<DenseNodeSet>,
}

impl Reachability {
    /// Computes reachability over the augmented graph.
    pub fn compute(graph: &RootedDfg) -> Self {
        let n = graph.num_nodes();
        let mut descendants = vec![DenseNodeSet::new(n); n];
        let mut tainted = vec![DenseNodeSet::new(n); n];
        let mut clean = vec![DenseNodeSet::new(n); n];

        // Process vertices in reverse topological order so every successor row is final
        // before it is merged into its predecessors.
        for &v in graph.topological_order().iter().rev() {
            let mut desc = DenseNodeSet::new(n);
            let mut taint = DenseNodeSet::new(n);
            let mut untainted = DenseNodeSet::new(n);
            for &s in graph.succs(v) {
                desc.insert(s);
                desc.union_with(&descendants[s.index()]);
                untainted.insert(s);
                // Paths through a forbidden successor taint everything past it; paths
                // through a clean successor only propagate its own taint, and only a
                // non-forbidden successor extends forbidden-free paths.
                if graph.is_forbidden(s) {
                    taint.union_with(&descendants[s.index()]);
                } else {
                    taint.union_with(&tainted[s.index()]);
                    untainted.union_with(&clean[s.index()]);
                }
            }
            descendants[v.index()] = desc;
            tainted[v.index()] = taint;
            clean[v.index()] = untainted;
        }

        let mut ancestors = vec![DenseNodeSet::new(n); n];
        for v in graph.node_ids() {
            for w in descendants[v.index()].iter() {
                ancestors[w.index()].insert(v);
            }
        }

        Reachability {
            descendants,
            ancestors,
            tainted,
            clean,
        }
    }

    /// Whether there is a non-empty path from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the graph this was computed from.
    #[inline]
    pub fn reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.descendants[from.index()].contains(to)
    }

    /// Whether some path from `from` to `to` contains a forbidden vertex strictly
    /// between the endpoints. If `true`, `from` can never be an input of a cut that has
    /// `to` as an output (§5.3, output–input pruning).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the graph this was computed from.
    #[inline]
    pub fn forbidden_between(&self, from: NodeId, to: NodeId) -> bool {
        self.tainted[from.index()].contains(to)
    }

    /// Whether some path from `from` to `to` contains *no* forbidden vertex strictly
    /// between the endpoints. Every input of a valid cut has such a path to at least
    /// one of the cut's outputs, which is what the (lossless form of the) output–input
    /// pruning of §5.3 relies on.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range for the graph this was computed from.
    #[inline]
    pub fn clean_reaches(&self, from: NodeId, to: NodeId) -> bool {
        self.clean[from.index()].contains(to)
    }

    /// The set of vertices reachable from `node` (excluding `node` itself unless it lies
    /// on a cycle, which cannot happen in a DAG).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn descendants(&self, node: NodeId) -> &DenseNodeSet {
        &self.descendants[node.index()]
    }

    /// The set of vertices that reach `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn ancestors(&self, node: NodeId) -> &DenseNodeSet {
        &self.ancestors[node.index()]
    }

    /// Whether `a` and `b` are incomparable (neither reaches the other). Incomparable
    /// vertices can both be outputs of the same cut only if neither postdominates the
    /// other.
    pub fn incomparable(&self, a: NodeId, b: NodeId) -> bool {
        a != b && !self.reaches(a, b) && !self.reaches(b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::Operation;

    /// in0 in1
    ///  |    |
    ///  ld   add(3)--+
    ///  (2)  |       |
    ///   \   shl(4)  |
    ///    \  /       |
    ///     or(5)    sub(6)
    fn sample() -> (RootedDfg, Vec<NodeId>) {
        let mut b = DfgBuilder::new("bb");
        let i0 = b.input("i0");
        let i1 = b.input("i1");
        let ld = b.node(Operation::Load, &[i0]);
        let add = b.node(Operation::Add, &[i1]);
        let shl = b.node(Operation::Shl, &[add]);
        let or = b.node(Operation::Or, &[ld, shl]);
        let sub = b.node(Operation::Sub, &[add]);
        b.mark_output(or);
        b.mark_output(sub);
        let rooted = RootedDfg::new(b.build().unwrap());
        (rooted, vec![i0, i1, ld, add, shl, or, sub])
    }

    #[test]
    fn direct_and_transitive_reachability() {
        let (r, n) = sample();
        let reach = Reachability::compute(&r);
        assert!(reach.reaches(n[1], n[5]), "i1 -> add -> shl -> or");
        assert!(reach.reaches(n[3], n[6]));
        assert!(!reach.reaches(n[5], n[3]), "no backwards paths");
        assert!(!reach.reaches(n[0], n[6]));
        assert!(reach.reaches(r.source(), r.sink()));
    }

    #[test]
    fn no_node_reaches_itself_in_a_dag() {
        let (r, _) = sample();
        let reach = Reachability::compute(&r);
        for v in r.node_ids() {
            assert!(!reach.reaches(v, v));
        }
    }

    #[test]
    fn ancestors_mirror_descendants() {
        let (r, _) = sample();
        let reach = Reachability::compute(&r);
        for v in r.node_ids() {
            for w in r.node_ids() {
                assert_eq!(
                    reach.reaches(v, w),
                    reach.ancestors(w).contains(v),
                    "descendants/ancestors disagree for {v}->{w}"
                );
                assert_eq!(reach.reaches(v, w), reach.descendants(v).contains(w));
            }
        }
    }

    #[test]
    fn forbidden_between_detects_blocked_paths() {
        let (r, n) = sample();
        let reach = Reachability::compute(&r);
        // i0 -> ld -> or: the only path passes through the forbidden load.
        assert!(reach.forbidden_between(n[0], n[5]));
        // i1 -> add -> shl -> or: clean.
        assert!(!reach.forbidden_between(n[1], n[5]));
        // add -> sub: clean single edge.
        assert!(!reach.forbidden_between(n[3], n[6]));
        // i0 -> ld: the forbidden node is the endpoint, not strictly between.
        assert!(!reach.forbidden_between(n[0], n[2]));
    }

    #[test]
    fn clean_reaches_requires_a_forbidden_free_path() {
        let (r, n) = sample();
        let reach = Reachability::compute(&r);
        // i0 -> ld -> or: the only path is dirty.
        assert!(!reach.clean_reaches(n[0], n[5]));
        // i1 -> add -> shl -> or: clean.
        assert!(reach.clean_reaches(n[1], n[5]));
        // Direct edges are always clean, even onto or from forbidden vertices.
        assert!(reach.clean_reaches(n[0], n[2]));
        assert!(reach.clean_reaches(n[2], n[5]));
        // Unreachable pairs are never clean.
        assert!(!reach.clean_reaches(n[5], n[6]));
        // Every clean pair is also a reachable pair.
        for v in r.node_ids() {
            for w in r.node_ids() {
                if reach.clean_reaches(v, w) {
                    assert!(reach.reaches(v, w));
                }
                assert_eq!(
                    reach.reaches(v, w),
                    reach.clean_reaches(v, w) || reach.forbidden_between(v, w),
                    "every path is either clean or tainted for {v}->{w}"
                );
            }
        }
    }

    #[test]
    fn source_paths_are_tainted_by_forbidden_inputs() {
        let (r, n) = sample();
        let reach = Reachability::compute(&r);
        // source -> i1 (forbidden Iext) -> add: tainted.
        assert!(reach.forbidden_between(r.source(), n[3]));
    }

    #[test]
    fn incomparable_pairs() {
        let (r, n) = sample();
        let reach = Reachability::compute(&r);
        assert!(reach.incomparable(n[5], n[6]));
        assert!(!reach.incomparable(n[3], n[6]));
        assert!(!reach.incomparable(n[3], n[3]));
    }
}
