//! Interface-labeled subgraph extraction: the structural "pattern" view of a cut.
//!
//! A candidate custom instruction is a set of body vertices plus its *interface*: the
//! outside values it reads (inputs) and the values it exposes (outputs). Two cuts in
//! different basic blocks describe the same instruction exactly when their
//! interface-labeled subgraphs are isomorphic — same operations, same operand wiring
//! (order included), same input/output roles — regardless of the node ids the host
//! blocks happen to use. [`InterfaceGraph::extract`] materializes that view: a small
//! rooted DAG over local dense ids whose nodes carry an [`InterfaceLabel`] (the
//! operation for body members, a single anonymous label for inputs) and an is-output
//! flag, and whose edges preserve operand order. Canonical-form grouping (the
//! `ise-canon` crate) computes codes on this representation.

use crate::bitset::DenseNodeSet;
use crate::graph::Dfg;
use crate::node::NodeId;
use crate::op::Operation;

/// The label of an [`InterfaceGraph`] node.
///
/// Inputs deliberately forget the operation that produced them in the host block: a
/// value read over a register-file port is just a value, whoever computed it. Body
/// members keep their operation — that is the datapath being identified.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InterfaceLabel {
    /// A value produced outside the cut and read through an input port.
    Input,
    /// A body member computing `Operation`.
    Op(Operation),
}

impl InterfaceLabel {
    /// The stable small-integer key of this label combined with an output flag:
    /// inputs first, then body operations in the fixed [`Operation::all`] order,
    /// with the output flag as the low bit.
    ///
    /// This is both the initial coloring of the canonical-labeling refinement in
    /// `ise-canon` and the per-node word of the [raw encoding](InterfaceGraph::raw_encoding)
    /// — keeping the two in one place guarantees they can never disagree.
    pub fn stable_key(self, is_output: bool) -> u32 {
        let label_rank = match self {
            InterfaceLabel::Input => 0,
            InterfaceLabel::Op(op) => {
                1 + Operation::all()
                    .iter()
                    .position(|&o| o == op)
                    .expect("every operation is listed in Operation::all")
                    as u32
            }
        };
        label_rank * 2 + u32::from(is_output)
    }
}

/// The interface-labeled subgraph of a cut: inputs plus body members over local dense
/// ids, with operand order preserved.
///
/// Local ids are assigned input-nodes-first, each group in ascending original-id
/// order; this initial numbering is arbitrary (canonical codes are invariant under
/// it) but deterministic, which keeps extraction reproducible.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_graph::{DenseNodeSet, DfgBuilder, InterfaceGraph, InterfaceLabel, Operation};
///
/// let mut b = DfgBuilder::new("mac");
/// let a = b.input("a");
/// let x = b.input("x");
/// let acc = b.input("acc");
/// let mul = b.node(Operation::Mul, &[a, x]);
/// let sum = b.node(Operation::Add, &[mul, acc]);
/// b.mark_output(sum);
/// let dfg = b.build()?;
///
/// let body = DenseNodeSet::from_nodes(dfg.len(), [mul, sum]);
/// let g = InterfaceGraph::extract(&dfg, &body);
/// assert_eq!(g.len(), 5); // 3 inputs + 2 body members
/// assert_eq!(g.num_inputs(), 3);
/// assert_eq!(g.label(g.len() - 1), InterfaceLabel::Op(Operation::Add));
/// assert!(g.is_output(g.len() - 1));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InterfaceGraph {
    labels: Vec<InterfaceLabel>,
    is_output: Vec<bool>,
    /// Operand lists of each node over local ids, in operand order. Input nodes have
    /// no operands (their producers are outside the interface).
    operands: Vec<Vec<usize>>,
    /// Original node id of each local node, for mapping results back to the block.
    original: Vec<NodeId>,
    num_inputs: usize,
}

impl InterfaceGraph {
    /// Extracts the interface-labeled subgraph of the cut whose body is `body`.
    ///
    /// Inputs are the operand producers of body members that are not body members
    /// themselves; a body member is an output when some consumer lies outside the
    /// body or the member is an external output of the block. This matches the
    /// derivation of `ise-enum`'s `Cut::from_body` (whose sink edges encode external
    /// visibility).
    ///
    /// # Panics
    ///
    /// Panics if `body` has a smaller capacity than the graph (bodies sized for the
    /// augmented graph, two vertices larger, are accepted).
    pub fn extract(dfg: &Dfg, body: &DenseNodeSet) -> Self {
        assert!(
            body.capacity() >= dfg.len(),
            "body capacity {} below graph size {}",
            body.capacity(),
            dfg.len()
        );
        let members: Vec<NodeId> = dfg.node_ids().filter(|&v| body.contains(v)).collect();
        let mut input_set = dfg.node_set();
        for &v in &members {
            for &p in dfg.preds(v) {
                if !body.contains(p) {
                    input_set.insert(p);
                }
            }
        }
        let inputs = input_set.to_vec();
        let num_inputs = inputs.len();

        let mut local = vec![usize::MAX; dfg.len()];
        let original: Vec<NodeId> = inputs.into_iter().chain(members).collect();
        for (i, &v) in original.iter().enumerate() {
            local[v.index()] = i;
        }

        let externally_visible =
            DenseNodeSet::from_nodes(dfg.len(), dfg.external_outputs().iter().copied());
        let mut labels = Vec::with_capacity(original.len());
        let mut is_output = Vec::with_capacity(original.len());
        let mut operands = Vec::with_capacity(original.len());
        for (i, &v) in original.iter().enumerate() {
            if i < num_inputs {
                labels.push(InterfaceLabel::Input);
                is_output.push(false);
                operands.push(Vec::new());
            } else {
                labels.push(InterfaceLabel::Op(dfg.op(v)));
                is_output.push(
                    externally_visible.contains(v)
                        || dfg.succs(v).iter().any(|s| !body.contains(*s)),
                );
                operands.push(dfg.preds(v).iter().map(|p| local[p.index()]).collect());
            }
        }

        InterfaceGraph {
            labels,
            is_output,
            operands,
            original,
            num_inputs,
        }
    }

    /// Total number of nodes (inputs + body members).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the graph has no nodes (the body was empty and had no inputs).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of input nodes; they occupy local ids `0..num_inputs()`.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of body members.
    pub fn num_body(&self) -> usize {
        self.labels.len() - self.num_inputs
    }

    /// Number of output-flagged body members.
    pub fn num_outputs(&self) -> usize {
        self.is_output.iter().filter(|&&o| o).count()
    }

    /// The label of local node `v`.
    pub fn label(&self, v: usize) -> InterfaceLabel {
        self.labels[v]
    }

    /// Whether local node `v` is an output of the cut.
    pub fn is_output(&self, v: usize) -> bool {
        self.is_output[v]
    }

    /// The operands of local node `v` as local ids, in operand order.
    pub fn operands(&self, v: usize) -> &[usize] {
        &self.operands[v]
    }

    /// The original block node id of local node `v`.
    pub fn original(&self, v: usize) -> NodeId {
        self.original[v]
    }

    /// Appends the stable raw encoding of this graph to `out` (clearing it first).
    ///
    /// The encoding is a flat word stream over local ids:
    ///
    /// ```text
    /// [ n, num_inputs,
    ///   node 0: stable_key, arity, operand locals...,
    ///   node 1: ...,
    ///   ... ]
    /// ```
    ///
    /// where `stable_key` is [`InterfaceLabel::stable_key`] (label + output flag).
    /// Because local ids are themselves derived deterministically from the host
    /// block (inputs first, each group ascending by original id), two cuts with
    /// equal raw encodings have *identical* — not merely isomorphic — interface
    /// graphs. The converse does not hold: isomorphic graphs may encode
    /// differently, which is exactly the gap canonical codes close. The memo in
    /// `ise-canon` keys on this encoding so the expensive labeler runs once per
    /// distinct raw graph.
    ///
    /// Taking the buffer by `&mut` lets callers reuse one allocation across
    /// thousands of cuts.
    pub fn raw_encoding_into(&self, out: &mut Vec<u32>) {
        out.clear();
        out.push(self.len() as u32);
        out.push(self.num_inputs as u32);
        for v in 0..self.len() {
            out.push(self.labels[v].stable_key(self.is_output[v]));
            out.push(self.operands[v].len() as u32);
            for &o in &self.operands[v] {
                out.push(o as u32);
            }
        }
    }

    /// The [raw encoding](Self::raw_encoding_into) as a fresh vector.
    pub fn raw_encoding(&self) -> Vec<u32> {
        let mut out = Vec::new();
        self.raw_encoding_into(&mut out);
        out
    }

    /// The body operations as a sorted, counted summary string (for example
    /// `add+mul*2`) — a human-readable fingerprint for reports.
    pub fn ops_summary(&self) -> String {
        let mut mnemonics: Vec<&'static str> = self
            .labels
            .iter()
            .filter_map(|l| match l {
                InterfaceLabel::Input => None,
                InterfaceLabel::Op(op) => Some(op.mnemonic()),
            })
            .collect();
        mnemonics.sort_unstable();
        let mut parts: Vec<String> = Vec::new();
        let mut i = 0;
        while i < mnemonics.len() {
            let j = mnemonics[i..]
                .iter()
                .position(|m| *m != mnemonics[i])
                .map_or(mnemonics.len(), |k| i + k);
            if j - i == 1 {
                parts.push(mnemonics[i].to_string());
            } else {
                parts.push(format!("{}*{}", mnemonics[i], j - i));
            }
            i = j;
        }
        parts.join("+")
    }
}

/// Reusable scratch state that writes the [raw encoding](InterfaceGraph::raw_encoding_into)
/// of a cut straight from `(dfg, body)`, without materializing an [`InterfaceGraph`].
///
/// On the memo hit path the interface graph itself is never needed — only its raw
/// encoding, to look up the cached canonical code. Building the graph allocates four
/// vectors per cut; this encoder instead reuses one local-id table, one member list
/// and one input set across every cut of a block, and precomputes the block's
/// externally-visible set once. An encoder is bound to the `Dfg` it was created for.
///
/// The output is guaranteed byte-identical to
/// `InterfaceGraph::extract(dfg, body).raw_encoding()` — both walk members in
/// ascending id order, derive inputs as out-of-body operand producers, number
/// locals inputs-first, and flag outputs identically (asserted in tests).
#[derive(Debug)]
pub struct RawEncoder {
    /// Local id of each original node, valid only for ids written during the
    /// current `encode` call (every id read was just written: operands are either
    /// members or inputs of the same cut).
    local: Vec<u32>,
    members: Vec<NodeId>,
    input_set: DenseNodeSet,
    externally_visible: DenseNodeSet,
}

impl RawEncoder {
    /// An encoder for cuts of `dfg`.
    pub fn new(dfg: &Dfg) -> Self {
        RawEncoder {
            local: vec![0; dfg.len()],
            members: Vec::with_capacity(dfg.len()),
            input_set: dfg.node_set(),
            externally_visible: DenseNodeSet::from_nodes(
                dfg.len(),
                dfg.external_outputs().iter().copied(),
            ),
        }
    }

    /// Writes the raw encoding of the cut whose body is `body` into `out`
    /// (clearing it first). `dfg` must be the graph this encoder was created for.
    ///
    /// # Panics
    ///
    /// Panics if `body` has a smaller capacity than the graph (augmented bodies,
    /// two vertices larger, are accepted — same contract as
    /// [`InterfaceGraph::extract`]).
    pub fn encode(&mut self, dfg: &Dfg, body: &DenseNodeSet, out: &mut Vec<u32>) {
        assert!(
            body.capacity() >= dfg.len(),
            "body capacity {} below graph size {}",
            body.capacity(),
            dfg.len()
        );
        debug_assert_eq!(self.local.len(), dfg.len(), "encoder bound to another dfg");
        self.members.clear();
        self.members
            .extend(dfg.node_ids().filter(|&v| body.contains(v)));
        self.input_set.clear();
        for &v in &self.members {
            for &p in dfg.preds(v) {
                if !body.contains(p) {
                    self.input_set.insert(p);
                }
            }
        }
        let num_inputs = self.input_set.len();

        let mut next = 0u32;
        for v in self.input_set.iter() {
            self.local[v.index()] = next;
            next += 1;
        }
        for &v in &self.members {
            self.local[v.index()] = next;
            next += 1;
        }

        out.clear();
        out.push((num_inputs + self.members.len()) as u32);
        out.push(num_inputs as u32);
        let input_key = InterfaceLabel::Input.stable_key(false);
        for _ in 0..num_inputs {
            out.push(input_key);
            out.push(0);
        }
        for &v in &self.members {
            let is_output = self.externally_visible.contains(v)
                || dfg.succs(v).iter().any(|s| !body.contains(*s));
            out.push(InterfaceLabel::Op(dfg.op(v)).stable_key(is_output));
            let preds = dfg.preds(v);
            out.push(preds.len() as u32);
            for &p in preds {
                out.push(self.local[p.index()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;

    /// a, c inputs; n = a + c; x = n << 1; y = n - c; z = x ^ y
    fn sample() -> (Dfg, [NodeId; 6]) {
        let mut b = DfgBuilder::new("iface");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Shl, &[n]);
        let y = b.node(Operation::Sub, &[n, c]);
        let z = b.node(Operation::Xor, &[x, y]);
        (b.build().unwrap(), [a, c, n, x, y, z])
    }

    #[test]
    fn extraction_derives_interface_and_preserves_operand_order() {
        let (dfg, [a, c, n, x, y, z]) = sample();
        let body = DenseNodeSet::from_nodes(dfg.len(), [n, x, y, z]);
        let g = InterfaceGraph::extract(&dfg, &body);
        assert_eq!(g.len(), 6);
        assert_eq!(g.num_inputs(), 2);
        assert_eq!(g.num_body(), 4);
        assert_eq!(g.num_outputs(), 1);
        // Inputs first, ascending original id.
        assert_eq!(g.original(0), a);
        assert_eq!(g.original(1), c);
        assert_eq!(g.label(0), InterfaceLabel::Input);
        assert!(g.operands(0).is_empty());
        // Body members in ascending original id; operand order preserved.
        let local_n = 2;
        assert_eq!(g.original(local_n), n);
        assert_eq!(g.operands(local_n), &[0, 1], "n = add(a, c)");
        let local_y = 4;
        assert_eq!(g.original(local_y), y);
        assert_eq!(g.operands(local_y), &[local_n, 1], "y = sub(n, c)");
        // z is the only sink, so the only output.
        assert!(g.is_output(5));
        assert!(!g.is_output(local_n));
    }

    #[test]
    fn internal_fanout_and_external_visibility_flag_outputs() {
        let (dfg, [_, _, n, x, _, _]) = sample();
        let body = DenseNodeSet::from_nodes(dfg.len(), [n, x]);
        let g = InterfaceGraph::extract(&dfg, &body);
        // n feeds y outside the body, x feeds z outside: both are outputs.
        assert_eq!(g.num_outputs(), 2);

        // A marked external output with all consumers inside is still an output.
        let mut b = DfgBuilder::new("liveout");
        let a = b.input("a");
        let m = b.node(Operation::Not, &[a]);
        let w = b.node(Operation::Add, &[m, a]);
        b.mark_output(m);
        b.mark_output(w);
        let dfg = b.build().unwrap();
        let body = DenseNodeSet::from_nodes(dfg.len(), [m, w]);
        let g = InterfaceGraph::extract(&dfg, &body);
        assert_eq!(g.num_outputs(), 2, "live-out m needs a write port");
    }

    #[test]
    fn bodies_sized_for_the_augmented_graph_are_accepted() {
        let (dfg, [_, _, n, x, _, _]) = sample();
        let body = DenseNodeSet::from_nodes(dfg.len() + 2, [n, x]);
        let g = InterfaceGraph::extract(&dfg, &body);
        assert_eq!(g.num_body(), 2);
    }

    #[test]
    fn raw_encoding_reflects_labels_wiring_and_flags() {
        let (dfg, [_, _, n, x, y, z]) = sample();
        let body = DenseNodeSet::from_nodes(dfg.len(), [n, x, y, z]);
        let g = InterfaceGraph::extract(&dfg, &body);
        let raw = g.raw_encoding();
        assert_eq!(raw[0], 6, "six local nodes");
        assert_eq!(raw[1], 2, "two inputs");
        // Two inputs: key 0, arity 0 each.
        assert_eq!(&raw[2..6], &[0, 0, 0, 0]);
        // n = add(a, c): non-output op, operands [0, 1].
        assert_eq!(raw[6], InterfaceLabel::Op(Operation::Add).stable_key(false));
        assert_eq!(&raw[7..10], &[2, 0, 1]);
        // Flipping an output flag changes the encoding.
        let smaller = DenseNodeSet::from_nodes(dfg.len(), [n, x]);
        let g2 = InterfaceGraph::extract(&dfg, &smaller);
        assert_ne!(g.raw_encoding(), g2.raw_encoding());
        // The reusable buffer form agrees with the fresh-vector form.
        let mut buf = vec![99; 3];
        g.raw_encoding_into(&mut buf);
        assert_eq!(buf, raw);
    }

    #[test]
    fn raw_encoder_matches_extract_across_cuts() {
        let (dfg, [_, _, n, x, y, z]) = sample();
        let mut enc = RawEncoder::new(&dfg);
        let mut buf = Vec::new();
        for body in [
            DenseNodeSet::from_nodes(dfg.len(), [n, x, y, z]),
            DenseNodeSet::from_nodes(dfg.len(), [n, x]),
            DenseNodeSet::from_nodes(dfg.len(), [y]),
            DenseNodeSet::from_nodes(dfg.len() + 2, [x, z]), // augmented capacity
        ] {
            enc.encode(&dfg, &body, &mut buf);
            let via_graph = InterfaceGraph::extract(&dfg, &body).raw_encoding();
            assert_eq!(buf, via_graph, "encoder must mirror extract exactly");
        }
    }

    #[test]
    fn ops_summary_counts_mnemonics() {
        let mut b = DfgBuilder::new("sum");
        let a = b.input("a");
        let m1 = b.node(Operation::Mul, &[a, a]);
        let m2 = b.node(Operation::Mul, &[m1, a]);
        let s = b.node(Operation::Add, &[m1, m2]);
        let dfg = b.build().unwrap();
        let body = DenseNodeSet::from_nodes(dfg.len(), [m1, m2, s]);
        let g = InterfaceGraph::extract(&dfg, &body);
        assert_eq!(g.ops_summary(), "add+mul*2");
        assert!(!g.is_empty());
    }
}
