//! Node identifiers and node payloads.

use std::fmt;

use crate::op::Operation;

/// Identifier of a vertex inside a [`crate::Dfg`].
///
/// Node ids are dense indices assigned in insertion order by [`crate::DfgBuilder`]; they
/// double as indices into the per-node arrays kept by the graph, the reachability
/// matrices and the dominator engines, which is why the type is a thin `u32` newtype
/// rather than an opaque handle.
///
/// # Example
///
/// ```
/// use ise_graph::NodeId;
///
/// let id = NodeId::new(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "n3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// Creates a node id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index overflows u32"))
    }

    /// Returns the dense index of this node, usable to index per-node arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value of this node id.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// A vertex of the data-flow graph: an operation plus an optional symbolic name.
///
/// The name is purely informational (it shows up in DOT dumps and error messages); the
/// enumeration algorithms only look at the [`Operation`] and the graph topology.
///
/// # Example
///
/// ```
/// use ise_graph::{Node, Operation};
///
/// let n = Node::new(Operation::Add).with_name("sum");
/// assert_eq!(n.op(), Operation::Add);
/// assert_eq!(n.name(), Some("sum"));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Node {
    op: Operation,
    name: Option<String>,
}

impl Node {
    /// Creates a node carrying `op` and no name.
    pub fn new(op: Operation) -> Self {
        Node { op, name: None }
    }

    /// Returns the same node with a symbolic name attached.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The operation computed by this node.
    pub fn op(&self) -> Operation {
        self.op
    }

    /// The symbolic name of this node, if one was attached.
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

impl From<Operation> for Node {
    fn from(op: Operation) -> Self {
        Node::new(op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.raw(), 42);
        assert_eq!(usize::from(id), 42);
        assert_eq!(NodeId::new(42), id);
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn node_display_is_compact() {
        assert_eq!(format!("{}", NodeId::new(7)), "n7");
        assert_eq!(format!("{:?}", NodeId::new(7)), "n7");
    }

    #[test]
    fn node_carries_operation_and_name() {
        let n = Node::new(Operation::Xor);
        assert_eq!(n.op(), Operation::Xor);
        assert_eq!(n.name(), None);
        let n = n.with_name("t1");
        assert_eq!(n.name(), Some("t1"));
    }

    #[test]
    fn node_from_operation() {
        let n: Node = Operation::Load.into();
        assert_eq!(n.op(), Operation::Load);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn node_id_from_huge_index_panics() {
        let _ = NodeId::from_index(usize::MAX);
    }
}
