//! Topological ordering and depth computation over adjacency rows.

use crate::csr::CsrAdjacency;
use crate::node::NodeId;

/// Read access to per-vertex adjacency rows, implemented both by the flat
/// [`CsrAdjacency`] and by `Vec<Vec<NodeId>>`-style nested lists, so the ordering
/// algorithms below run on either representation (graph construction uses CSR, tests
/// and ad-hoc callers use nested lists).
pub trait AdjacencyView {
    /// Number of vertices.
    fn node_count(&self) -> usize;
    /// The neighbour row of `node`.
    fn row_of(&self, node: NodeId) -> &[NodeId];
}

impl AdjacencyView for [Vec<NodeId>] {
    fn node_count(&self) -> usize {
        self.len()
    }
    fn row_of(&self, node: NodeId) -> &[NodeId] {
        &self[node.index()]
    }
}

impl AdjacencyView for Vec<Vec<NodeId>> {
    fn node_count(&self) -> usize {
        self.len()
    }
    fn row_of(&self, node: NodeId) -> &[NodeId] {
        &self[node.index()]
    }
}

impl AdjacencyView for CsrAdjacency {
    fn node_count(&self) -> usize {
        self.num_nodes()
    }
    fn row_of(&self, node: NodeId) -> &[NodeId] {
        self.row(node)
    }
}

/// Computes a topological order (producers before consumers) of a DAG given as parallel
/// successor/predecessor adjacency views.
///
/// # Errors
///
/// Returns `Err(node)` with a node that is part of a cycle if the graph is not acyclic.
///
/// # Example
///
/// ```
/// use ise_graph::{topological_order, NodeId};
///
/// let succs = vec![vec![NodeId::new(1)], vec![NodeId::new(2)], vec![]];
/// let preds = vec![vec![], vec![NodeId::new(0)], vec![NodeId::new(1)]];
/// let order = topological_order(&succs, &preds).unwrap();
/// assert_eq!(order, vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
/// ```
pub fn topological_order<S, P>(succs: &S, preds: &P) -> Result<Vec<NodeId>, NodeId>
where
    S: AdjacencyView + ?Sized,
    P: AdjacencyView + ?Sized,
{
    let n = succs.node_count();
    debug_assert_eq!(n, preds.node_count());
    let mut in_degree: Vec<usize> = (0..n)
        .map(|i| preds.row_of(NodeId::from_index(i)).len())
        .collect();
    let mut ready: Vec<NodeId> = (0..n)
        .filter(|&i| in_degree[i] == 0)
        .map(NodeId::from_index)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(node) = ready.pop() {
        order.push(node);
        for &succ in succs.row_of(node) {
            in_degree[succ.index()] -= 1;
            if in_degree[succ.index()] == 0 {
                ready.push(succ);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        // Some node still has unresolved predecessors: it lies on a cycle.
        let culprit = (0..n)
            .find(|&i| in_degree[i] > 0)
            .map(NodeId::from_index)
            .expect("missing nodes imply a positive in-degree");
        Err(culprit)
    }
}

/// Computes, for every node, the length (in edges) of the longest path from any root
/// (node without predecessors) to that node. Roots have depth 0.
///
/// This is the "depth" limit used by accelerators such as Configurable Compute
/// Accelerators (§5.3, output–input pruning) and by the workload generators.
///
/// # Example
///
/// ```
/// use ise_graph::{depths_from_roots, NodeId};
///
/// let succs = vec![vec![NodeId::new(1)], vec![NodeId::new(2)], vec![]];
/// let preds = vec![vec![], vec![NodeId::new(0)], vec![NodeId::new(1)]];
/// assert_eq!(depths_from_roots(&succs, &preds), vec![0, 1, 2]);
/// ```
pub fn depths_from_roots<S, P>(succs: &S, preds: &P) -> Vec<u32>
where
    S: AdjacencyView + ?Sized,
    P: AdjacencyView + ?Sized,
{
    let order = topological_order(succs, preds).expect("depths require an acyclic graph");
    let mut depth = vec![0u32; succs.node_count()];
    for &node in &order {
        for &succ in succs.row_of(node) {
            depth[succ.index()] = depth[succ.index()].max(depth[node.index()] + 1);
        }
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn order_covers_all_nodes_once() {
        let succs = vec![vec![n(2)], vec![n(2)], vec![n(3), n(4)], vec![], vec![]];
        let preds = vec![vec![], vec![], vec![n(0), n(1)], vec![n(2)], vec![n(2)]];
        let order = topological_order(&succs, &preds).unwrap();
        assert_eq!(order.len(), 5);
        let mut sorted = order.clone();
        sorted.sort();
        assert_eq!(sorted, (0..5).map(n).collect::<Vec<_>>());
    }

    #[test]
    fn cycle_is_reported() {
        let succs = vec![vec![n(1)], vec![n(0)]];
        let preds = vec![vec![n(1)], vec![n(0)]];
        let err = topological_order(&succs, &preds).unwrap_err();
        assert!(err == n(0) || err == n(1));
    }

    #[test]
    fn csr_and_nested_views_agree() {
        let edges = [(n(0), n(2)), (n(1), n(2)), (n(2), n(3)), (n(2), n(4))];
        let succs_csr = CsrAdjacency::forward(5, &edges);
        let preds_csr = CsrAdjacency::backward(5, &edges);
        let succs = vec![vec![n(2)], vec![n(2)], vec![n(3), n(4)], vec![], vec![]];
        let preds = vec![vec![], vec![], vec![n(0), n(1)], vec![n(2)], vec![n(2)]];
        assert_eq!(
            topological_order(&succs_csr, &preds_csr).unwrap(),
            topological_order(&succs, &preds).unwrap()
        );
        assert_eq!(
            depths_from_roots(&succs_csr, &preds_csr),
            depths_from_roots(&succs, &preds)
        );
    }

    #[test]
    fn depths_follow_longest_path() {
        // 0 -> 1 -> 3, 0 -> 2 -> 3, 2 -> 4 -> 3  (longest path to 3 has 3 edges)
        let succs = vec![
            vec![n(1), n(2)],
            vec![n(3)],
            vec![n(3), n(4)],
            vec![],
            vec![n(3)],
        ];
        let preds = vec![
            vec![],
            vec![n(0)],
            vec![n(0)],
            vec![n(1), n(2), n(4)],
            vec![n(2)],
        ];
        assert_eq!(depths_from_roots(&succs, &preds), vec![0, 1, 1, 3, 2]);
    }

    #[test]
    fn isolated_nodes_have_depth_zero() {
        let succs: Vec<Vec<NodeId>> = vec![vec![], vec![]];
        let preds: Vec<Vec<NodeId>> = vec![vec![], vec![]];
        assert_eq!(depths_from_roots(&succs, &preds), vec![0, 0]);
    }
}
