//! Graphviz (DOT) export of data-flow graphs, with optional cut highlighting.

use std::fmt::Write as _;

use crate::bitset::DenseNodeSet;
use crate::graph::Dfg;
use crate::node::NodeId;

/// A cut-shaped value that can be highlighted in a DOT rendering: a body set plus the
/// derived input and output vertices.
///
/// `ise-enum`'s `Cut` implements this (that crate depends on this one, so the trait
/// lives here); anything exposing the same three views can be highlighted too.
pub trait CutLike {
    /// The member vertices of the cut.
    fn body_set(&self) -> &DenseNodeSet;
    /// The input vertices `I(S)`.
    fn input_nodes(&self) -> &[NodeId];
    /// The output vertices `O(S)`.
    fn output_nodes(&self) -> &[NodeId];
}

/// Rendering options for [`DotOptions::render`].
///
/// The defaults reproduce the visual conventions of Figure 1 of the paper: cut members
/// are shaded, cut outputs get a double border, cut inputs are filled grey, and
/// forbidden nodes are drawn as boxes.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_graph::{DfgBuilder, DotOptions, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let dfg = b.build()?;
/// let dot = DotOptions::new().render(&dfg);
/// assert!(dot.starts_with("digraph"));
/// assert!(dot.contains("not"));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DotOptions {
    cut: Option<DenseNodeSet>,
    inputs: Option<DenseNodeSet>,
    outputs: Option<DenseNodeSet>,
}

impl DotOptions {
    /// Creates options with no highlighting.
    pub fn new() -> Self {
        Self::default()
    }

    /// Highlights the members of a cut (shaded background).
    #[must_use]
    pub fn with_cut(mut self, cut: DenseNodeSet) -> Self {
        self.cut = Some(cut);
        self
    }

    /// Highlights the inputs of a cut (grey fill, as in Figure 1 of the paper).
    #[must_use]
    pub fn with_inputs(mut self, inputs: DenseNodeSet) -> Self {
        self.inputs = Some(inputs);
        self
    }

    /// Highlights the outputs of a cut (double border, as in Figure 1 of the paper).
    #[must_use]
    pub fn with_outputs(mut self, outputs: DenseNodeSet) -> Self {
        self.outputs = Some(outputs);
        self
    }

    /// Highlights a whole cut at once: body shaded, inputs filled, outputs
    /// double-bordered. May be called repeatedly to overlay several cuts (for example
    /// every selected ISE of a block); the highlight sets accumulate.
    ///
    /// # Panics
    ///
    /// Panics if cuts from differently sized graphs are mixed.
    #[must_use]
    pub fn highlight(mut self, cut: &impl CutLike) -> Self {
        let capacity = cut.body_set().capacity();
        let union = |slot: &mut Option<DenseNodeSet>, add: &DenseNodeSet| match slot {
            Some(set) => set.union_with(add),
            None => *slot = Some(add.clone()),
        };
        union(&mut self.cut, cut.body_set());
        union(
            &mut self.inputs,
            &DenseNodeSet::from_nodes(capacity, cut.input_nodes().iter().copied()),
        );
        union(
            &mut self.outputs,
            &DenseNodeSet::from_nodes(capacity, cut.output_nodes().iter().copied()),
        );
        self
    }

    /// Renders `dfg` as a DOT digraph.
    pub fn render(&self, dfg: &Dfg) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", escape(dfg.name()));
        let _ = writeln!(out, "  rankdir=TB;");
        let _ = writeln!(out, "  node [fontname=\"monospace\"];");
        for id in dfg.node_ids() {
            let _ = writeln!(out, "  {} [{}];", id, self.node_attrs(dfg, id));
        }
        for (from, to) in dfg.edges() {
            let _ = writeln!(out, "  {from} -> {to};");
        }
        let _ = writeln!(out, "}}");
        out
    }

    fn node_attrs(&self, dfg: &Dfg, id: NodeId) -> String {
        let node = dfg.node(id);
        let label = match node.name() {
            Some(name) => format!("{}\\n{}", node.op(), escape(name)),
            None => format!("{}\\n{}", node.op(), id),
        };
        let mut attrs = vec![format!("label=\"{label}\"")];
        if dfg.is_forbidden(id) {
            attrs.push("shape=box".to_string());
        } else {
            attrs.push("shape=ellipse".to_string());
        }
        let in_cut = self.cut.as_ref().is_some_and(|s| s.contains(id));
        let is_input = self.inputs.as_ref().is_some_and(|s| s.contains(id));
        let is_output = self.outputs.as_ref().is_some_and(|s| s.contains(id));
        if is_output {
            attrs.push("peripheries=2".to_string());
        }
        if is_input {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=gray70".to_string());
        } else if in_cut {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=lightyellow".to_string());
        }
        attrs.join(", ")
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::Operation;

    fn sample() -> (Dfg, Vec<NodeId>) {
        let mut b = DfgBuilder::new("dot \"test\"");
        let a = b.input("a");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.named_node(Operation::Add, &[ld, a], Some("x"));
        let dfg = b.build().unwrap();
        (dfg, vec![a, ld, x])
    }

    #[test]
    fn renders_all_nodes_and_edges() {
        let (dfg, nodes) = sample();
        let dot = DotOptions::new().render(&dfg);
        for id in &nodes {
            assert!(dot.contains(&format!("  {id} [")), "missing node {id}");
        }
        assert_eq!(dot.matches(" -> ").count(), dfg.edge_count());
        assert!(dot.contains("digraph \"dot \\\"test\\\"\""));
    }

    #[test]
    fn forbidden_nodes_are_boxes() {
        let (dfg, nodes) = sample();
        let dot = DotOptions::new().render(&dfg);
        let load_line = dot
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("{} [", nodes[1])))
            .unwrap();
        assert!(load_line.contains("shape=box"));
    }

    #[test]
    fn highlighting_marks_cut_inputs_and_outputs() {
        let (dfg, nodes) = sample();
        let cut = DenseNodeSet::from_nodes(dfg.len(), [nodes[2]]);
        let inputs = DenseNodeSet::from_nodes(dfg.len(), [nodes[1], nodes[0]]);
        let outputs = DenseNodeSet::from_nodes(dfg.len(), [nodes[2]]);
        let dot = DotOptions::new()
            .with_cut(cut)
            .with_inputs(inputs)
            .with_outputs(outputs)
            .render(&dfg);
        let out_line = dot
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("{} [", nodes[2])))
            .unwrap();
        assert!(out_line.contains("peripheries=2"));
        let in_line = dot
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("{} [", nodes[1])))
            .unwrap();
        assert!(in_line.contains("gray70"));
    }

    #[test]
    fn highlight_overlays_whole_cuts_and_accumulates() {
        struct FakeCut {
            body: DenseNodeSet,
            inputs: Vec<NodeId>,
            outputs: Vec<NodeId>,
        }
        impl CutLike for FakeCut {
            fn body_set(&self) -> &DenseNodeSet {
                &self.body
            }
            fn input_nodes(&self) -> &[NodeId] {
                &self.inputs
            }
            fn output_nodes(&self) -> &[NodeId] {
                &self.outputs
            }
        }
        let (dfg, nodes) = sample();
        let first = FakeCut {
            body: DenseNodeSet::from_nodes(dfg.len(), [nodes[2]]),
            inputs: vec![nodes[1]],
            outputs: vec![nodes[2]],
        };
        let second = FakeCut {
            body: DenseNodeSet::from_nodes(dfg.len(), [nodes[1]]),
            inputs: vec![nodes[0]],
            outputs: vec![nodes[1]],
        };
        let dot = DotOptions::new()
            .highlight(&first)
            .highlight(&second)
            .render(&dfg);
        for id in [nodes[1], nodes[2]] {
            let line = dot
                .lines()
                .find(|l| l.trim_start().starts_with(&format!("{id} [")))
                .unwrap();
            assert!(line.contains("peripheries=2"), "{line}");
        }
        let input_line = dot
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("{} [", nodes[0])))
            .unwrap();
        assert!(input_line.contains("gray70"), "{input_line}");
    }

    #[test]
    fn named_nodes_use_their_name_in_label() {
        let (dfg, nodes) = sample();
        let dot = DotOptions::new().render(&dfg);
        let line = dot
            .lines()
            .find(|l| l.trim_start().starts_with(&format!("{} [", nodes[2])))
            .unwrap();
        assert!(line.contains("add\\nx"));
    }
}
