//! Data-flow graph (DFG) substrate for instruction-set-extension (ISE) identification.
//!
//! This crate implements §3 ("Problem statement") and §5.4 ("Data structures") of
//! Bonzini & Pozzi, *Polynomial-Time Subgraph Enumeration for Automated Instruction Set
//! Extension* (DATE 2007):
//!
//! * [`Dfg`] — the data-flow graph of a basic block: one node per operation, edges in
//!   data-flow direction, a set of external inputs `Iext` (root vertices), a set of
//!   external outputs `Oext`, and a set of *forbidden* nodes `F` (operations that may
//!   not be part of a custom instruction, e.g. loads and stores).
//! * [`RootedDfg`] — the augmentation of a [`Dfg`] with a single artificial *source*
//!   (predecessor of every root and of every forbidden node without predecessors) and a
//!   single artificial *sink* (successor of every `Oext` vertex), so that both the graph
//!   and its reverse are rooted. Dominators and postdominators are computed on this
//!   view.
//! * [`Reachability`] — precomputed path information: for every pair of nodes whether a
//!   path exists, whether some path between them touches a forbidden node, and how many
//!   distinct forbidden predecessors hang off those paths (used by the output–input
//!   pruning of §5.3).
//! * [`DenseNodeSet`] — a cache-friendly fixed-capacity bit set over node ids, the
//!   work-horse set representation used throughout the workspace.
//! * [`CsrAdjacency`] — the flat compressed-sparse-row storage behind both graphs'
//!   `preds()`/`succs()` rows: one edge arena plus an offset table per direction, so
//!   the enumeration hot paths walk contiguous memory instead of per-row allocations.
//! * [`InterfaceGraph`] — the interface-labeled subgraph of a cut (operations,
//!   operand order, input/output roles over local ids), the representation on which
//!   canonical-form grouping (`ise-canon`) recognizes recurring candidates.
//!
//! # Example
//!
//! Build the data-flow graph of `x = (a + b) * c; y = (a + b) - d`:
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ise_graph::{DfgBuilder, Operation};
//!
//! let mut b = DfgBuilder::new("example");
//! let a = b.input("a");
//! let bb = b.input("b");
//! let c = b.input("c");
//! let d = b.input("d");
//! let sum = b.node(Operation::Add, &[a, bb]);
//! let x = b.node(Operation::Mul, &[sum, c]);
//! let y = b.node(Operation::Sub, &[sum, d]);
//! b.mark_output(x);
//! b.mark_output(y);
//! let dfg = b.build()?;
//!
//! assert_eq!(dfg.len(), 7);
//! assert_eq!(dfg.external_inputs().len(), 4);
//! assert_eq!(dfg.external_outputs().len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod builder;
mod csr;
mod dot;
mod error;
mod graph;
mod interface;
mod node;
mod op;
mod reach;
mod rooted;
mod topo;

pub use bitset::DenseNodeSet;
pub use builder::DfgBuilder;
pub use csr::CsrAdjacency;
pub use dot::{CutLike, DotOptions};
pub use error::GraphError;
pub use graph::Dfg;
pub use interface::{InterfaceGraph, InterfaceLabel, RawEncoder};
pub use node::{Node, NodeId};
pub use op::{LatencyModel, Operation, OperationClass};
pub use reach::Reachability;
pub use rooted::RootedDfg;
pub use topo::{depths_from_roots, topological_order, AdjacencyView};
