//! Error type of the graph substrate.

use std::error::Error;
use std::fmt;

use crate::node::NodeId;

/// Errors reported while constructing or validating a data-flow graph.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no nodes; an empty basic block cannot be analysed.
    Empty,
    /// An edge refers to a node id that does not exist in the graph.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
        /// Number of nodes actually present.
        len: usize,
    },
    /// An edge connects a node to itself; data-flow graphs of basic blocks are acyclic.
    SelfLoop {
        /// The node with a self edge.
        node: NodeId,
    },
    /// The edge list contains a cycle, so the graph is not a DAG.
    Cycle {
        /// A node that is part of the detected cycle.
        node: NodeId,
    },
    /// A node was marked as an external output or forbidden more than once in a way
    /// that conflicts with its role (e.g. an external input marked as output).
    InvalidMark {
        /// The node with the conflicting mark.
        node: NodeId,
        /// Human-readable description of the conflict.
        reason: &'static str,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "data-flow graph has no nodes"),
            GraphError::UnknownNode { node, len } => {
                write!(
                    f,
                    "edge refers to unknown node {node} (graph has {len} nodes)"
                )
            }
            GraphError::SelfLoop { node } => write!(f, "node {node} has a self loop"),
            GraphError::Cycle { node } => {
                write!(f, "graph is not acyclic (cycle through {node})")
            }
            GraphError::InvalidMark { node, reason } => {
                write!(f, "invalid mark on node {node}: {reason}")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::UnknownNode {
            node: NodeId::new(9),
            len: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("n9"));
        assert!(msg.contains('3'));
        assert_eq!(
            GraphError::Empty.to_string(),
            "data-flow graph has no nodes"
        );
    }

    #[test]
    fn error_is_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<GraphError>();
    }
}
