//! Incremental construction of data-flow graphs.

use crate::error::GraphError;
use crate::graph::Dfg;
use crate::node::{Node, NodeId};
use crate::op::Operation;

/// Builder for [`Dfg`]s.
///
/// The builder assigns node ids in insertion order and only allows edges from
/// already-created nodes, so the resulting graph is acyclic by construction.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("mac");
/// let a = b.input("a");
/// let x = b.input("x");
/// let acc = b.input("acc");
/// let prod = b.node(Operation::Mul, &[a, x]);
/// let sum = b.node(Operation::Add, &[prod, acc]);
/// b.mark_output(sum);
/// let dfg = b.build()?;
/// assert_eq!(dfg.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DfgBuilder {
    name: String,
    nodes: Vec<Node>,
    edges: Vec<(NodeId, NodeId)>,
    outputs: Vec<NodeId>,
    forbidden: Vec<NodeId>,
}

impl DfgBuilder {
    /// Creates an empty builder for a basic block called `name`.
    pub fn new(name: impl Into<String>) -> Self {
        DfgBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds an external input (live-in value) and returns its id.
    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Node::new(Operation::Input).with_name(name))
    }

    /// Adds a compile-time constant and returns its id.
    pub fn constant(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Node::new(Operation::Const).with_name(name))
    }

    /// Adds an operation node with the given operand producers and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any operand id has not been created by this builder yet; this keeps the
    /// graph acyclic by construction.
    pub fn node(&mut self, op: Operation, operands: &[NodeId]) -> NodeId {
        self.named_node(op, operands, None::<String>)
    }

    /// Adds a named operation node with the given operand producers and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if any operand id has not been created by this builder yet.
    pub fn named_node(
        &mut self,
        op: Operation,
        operands: &[NodeId],
        name: Option<impl Into<String>>,
    ) -> NodeId {
        let node = match name {
            Some(n) => Node::new(op).with_name(n),
            None => Node::new(op),
        };
        let id = self.push(node);
        for &operand in operands {
            assert!(
                operand.index() < id.index(),
                "operand {operand} must be created before node {id}"
            );
            self.edges.push((operand, id));
        }
        id
    }

    /// Marks `node` as an external output (`Oext`).
    pub fn mark_output(&mut self, node: NodeId) {
        self.outputs.push(node);
    }

    /// Marks `node` as forbidden (`F`): it may never be part of a cut.
    pub fn mark_forbidden(&mut self, node: NodeId) {
        self.forbidden.push(node);
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the builder is empty or the recorded marks are
    /// inconsistent (see [`Dfg::from_edges`] for the full list of conditions).
    pub fn build(self) -> Result<Dfg, GraphError> {
        Dfg::from_parts(
            self.name,
            self.nodes,
            self.edges,
            self.outputs,
            self.forbidden,
        )
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(node);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_valid_graph() {
        let mut b = DfgBuilder::new("bb");
        assert!(b.is_empty());
        let a = b.input("a");
        let c = b.constant("4");
        let s = b.named_node(Operation::Shl, &[a, c], Some("a<<4"));
        let l = b.node(Operation::Load, &[s]);
        let r = b.node(Operation::Add, &[l, a]);
        b.mark_output(r);
        assert_eq!(b.len(), 5);
        let g = b.build().unwrap();
        assert_eq!(g.name(), "bb");
        assert_eq!(g.node(s).name(), Some("a<<4"));
        assert_eq!(g.op(l), Operation::Load);
        assert!(g.is_forbidden(l));
        assert_eq!(
            g.external_inputs(),
            &[a, c],
            "constants are roots and therefore Iext"
        );
        assert_eq!(g.external_outputs(), &[r]);
        assert_eq!(g.preds(r), &[l, a]);
    }

    #[test]
    fn explicit_forbidden_mark() {
        let mut b = DfgBuilder::new("bb");
        let a = b.input("a");
        let m = b.node(Operation::Mul, &[a, a]);
        b.mark_forbidden(m);
        let g = b.build().unwrap();
        assert!(g.is_forbidden(m));
    }

    #[test]
    fn empty_builder_fails() {
        assert!(DfgBuilder::new("x").build().is_err());
    }

    #[test]
    #[should_panic(expected = "must be created before")]
    fn forward_operand_panics() {
        let mut b = DfgBuilder::new("bad");
        let a = b.input("a");
        // Using an id that has not been created yet must panic.
        let bogus = NodeId::new(10);
        let _ = b.node(Operation::Add, &[a, bogus]);
    }

    #[test]
    fn default_builder_is_empty() {
        let b = DfgBuilder::default();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }
}
