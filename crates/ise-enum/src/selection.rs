//! Greedy selection of non-overlapping custom instructions from the enumerated cuts.
//!
//! Enumeration produces every candidate; an ISE flow then picks a small number of them
//! to implement. This module implements the standard greedy selector used by the
//! toolchain the paper plugs into (§7): repeatedly take the candidate with the highest
//! estimated saving whose vertices do not overlap an already selected candidate, until
//! the requested number of custom instructions is reached or no profitable candidate is
//! left.

use ise_graph::LatencyModel;

use crate::context::EnumContext;
use crate::cut::Cut;
use crate::merit::{estimate_merit, Merit};

/// The outcome of a selection run: the chosen cuts, their individual merits and the
/// total estimated saving.
#[derive(Clone, Debug, Default)]
pub struct Selection {
    /// The chosen cuts, in selection (descending-merit) order.
    pub chosen: Vec<(Cut, Merit)>,
    /// Total cycles saved per execution of the basic block.
    pub total_saved_cycles: u32,
    /// Total software cycles of the whole basic block, for speedup estimates.
    pub block_software_cycles: u32,
}

impl Selection {
    /// Estimated speedup of the basic block with the chosen custom instructions.
    pub fn block_speedup(&self) -> f64 {
        let after = self
            .block_software_cycles
            .saturating_sub(self.total_saved_cycles);
        if after == 0 {
            return f64::from(self.block_software_cycles.max(1));
        }
        f64::from(self.block_software_cycles) / f64::from(after)
    }
}

/// Greedily selects up to `max_instructions` non-overlapping cuts with the highest
/// estimated savings.
///
/// Candidates whose estimated saving is zero are never selected. `ports_in`/`ports_out`
/// are the register-file ports available per cycle for operand transfer (see
/// [`estimate_merit`]).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{enumerate_cuts, select_ises, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, LatencyModel, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.input("x");
/// let acc = b.input("acc");
/// let mul = b.node(Operation::Mul, &[a, x]);
/// let sum = b.node(Operation::Add, &[mul, acc]);
/// b.mark_output(sum);
/// let dfg = b.build()?;
///
/// let ctx = EnumContext::new(dfg.clone());
/// let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1)?)?;
/// let selection = select_ises(&ctx, &cuts.cuts, &LatencyModel::default(), 2, 1, 4);
/// assert!(selection.chosen.len() <= 4);
/// assert!(selection.block_speedup() >= 1.0);
/// # Ok(())
/// # }
/// ```
pub fn select_ises(
    ctx: &EnumContext,
    candidates: &[Cut],
    model: &LatencyModel,
    ports_in: usize,
    ports_out: usize,
    max_instructions: usize,
) -> Selection {
    let block_software_cycles: u32 = ctx
        .dfg()
        .node_ids()
        .map(|v| model.software_cycles(ctx.dfg().op(v)))
        .sum();

    let mut scored: Vec<(usize, Merit)> = candidates
        .iter()
        .enumerate()
        .map(|(i, cut)| (i, estimate_merit(ctx, cut, model, ports_in, ports_out)))
        .filter(|(_, m)| m.saved_cycles > 0)
        .collect();
    // Highest saving first; break ties towards smaller cuts (cheaper hardware).
    scored.sort_by(|a, b| {
        b.1.saved_cycles
            .cmp(&a.1.saved_cycles)
            .then_with(|| candidates[a.0].len().cmp(&candidates[b.0].len()))
            .then_with(|| candidates[a.0].key().cmp(&candidates[b.0].key()))
    });

    let mut used = ctx.rooted().node_set();
    let mut selection = Selection {
        chosen: Vec::new(),
        total_saved_cycles: 0,
        block_software_cycles,
    };
    for (idx, merit) in scored {
        if selection.chosen.len() == max_instructions {
            break;
        }
        let cut = &candidates[idx];
        if !cut.body().is_disjoint(&used) {
            continue;
        }
        used.union_with(cut.body());
        selection.total_saved_cycles += merit.saved_cycles;
        selection.chosen.push((cut.clone(), merit));
    }
    selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Constraints;
    use crate::exhaustive::exhaustive_cuts;
    use ise_graph::{DfgBuilder, Operation};

    /// Two independent multiply-accumulate chains feeding a store each.
    fn two_macs() -> EnumContext {
        let mut b = DfgBuilder::new("two-macs");
        for i in 0..2 {
            let a = b.input(format!("a{i}"));
            let x = b.input(format!("x{i}"));
            let acc = b.input(format!("acc{i}"));
            let mul = b.node(Operation::Mul, &[a, x]);
            let sum = b.node(Operation::Add, &[mul, acc]);
            let _st = b.node(Operation::Store, &[sum]);
        }
        EnumContext::new(b.build().unwrap())
    }

    #[test]
    fn selects_non_overlapping_profitable_cuts() {
        let ctx = two_macs();
        let candidates = exhaustive_cuts(&ctx, &Constraints::new(3, 1).unwrap(), true);
        let selection = select_ises(&ctx, &candidates.cuts, &LatencyModel::default(), 2, 1, 8);
        assert!(!selection.chosen.is_empty());
        // No two selected cuts share a vertex.
        for (i, (a, _)) in selection.chosen.iter().enumerate() {
            for (b, _) in &selection.chosen[i + 1..] {
                assert!(a.body().is_disjoint(b.body()));
            }
        }
        // Both MAC chains should be covered by profitable instructions.
        assert!(selection.chosen.len() >= 2);
        assert!(selection.total_saved_cycles >= 2);
        assert!(selection.block_speedup() > 1.0);
    }

    #[test]
    fn respects_the_instruction_budget() {
        let ctx = two_macs();
        let candidates = exhaustive_cuts(&ctx, &Constraints::new(3, 1).unwrap(), true);
        let selection = select_ises(&ctx, &candidates.cuts, &LatencyModel::default(), 2, 1, 1);
        assert_eq!(selection.chosen.len(), 1);
    }

    #[test]
    fn empty_candidate_list_selects_nothing() {
        let ctx = two_macs();
        let selection = select_ises(&ctx, &[], &LatencyModel::default(), 2, 1, 4);
        assert!(selection.chosen.is_empty());
        assert_eq!(selection.total_saved_cycles, 0);
        assert!(selection.block_software_cycles > 0);
        assert!((selection.block_speedup() - 1.0).abs() < 1e-9);
    }
}
