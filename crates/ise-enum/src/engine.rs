//! The shared search core driven by every enumeration algorithm.
//!
//! Earlier revisions gave each enumerator (`incremental`, `basic`, `baseline`,
//! `exhaustive`) its own copy of the search scaffolding: a seen-set keyed by cloned
//! `(Vec<NodeId>, Vec<NodeId>)` pairs, ad-hoc budget accounting, per-call scratch
//! allocations, and — in the incremental algorithm — a full `O(n)` rebuild of the cut
//! body at every `CHECK-CUT` via the backward closure of [`crate::cone`]. This module
//! replaces all of that with one engine (see DESIGN.md for the design history):
//!
//! * [`SearchState`] — an arena-style state owning the dense bit sets (cut body,
//!   inputs, outputs, cached forbidden set), the preallocated DFS/worklist scratch, the
//!   packed-key de-duplication table and the undo stack. Algorithms borrow it for the
//!   duration of one run and report candidates through it.
//! * [`Enumerator`] — the trait the four algorithms implement; [`run`] and
//!   [`run_with_strategy`] wire an enumerator to a fresh state and collect the
//!   [`Enumeration`].
//! * **Incremental body maintenance** — the paper's §5.2 discipline: the body `S` is
//!   extended when an output is picked (forward closure of new support) and retracted
//!   when an input is picked (cascading support loss), with every mutation recorded on
//!   an undo trail so that backtracking restores the previous state exactly. A
//!   forbidden-vertex counter makes the §5.3 "pruning while building S" test `O(1)`.
//!   [`BodyStrategy::Rebuild`] keeps the legacy rebuild-per-check pipeline alive as the
//!   comparison baseline for the `engine-vs-rebuild` benchmark.
//!
//! The body invariant maintained between `push`/`pop` calls is local and cheap to
//! update: a vertex `v` is in `S` iff `v` is not a chosen input and `support[v] > 0`,
//! where `support[v]` counts the edges from `v` to *non-forbidden* body members plus
//! one if `v` is a chosen output. Forbidden vertices act as truncation boundaries:
//! they enter the body (and the forbidden counter) but never propagate support, so the
//! maintenance never walks the forbidden region behind them — the incremental
//! counterpart of the legacy closure's early abort. For bodies free of forbidden
//! vertices (the only ones that can become valid cuts) this is exactly the
//! backward-closure membership the legacy `cone()` recomputed from scratch, so the two
//! strategies report identical cuts (the property tests cross-check them against the
//! brute-force oracle under all 64 pruning combinations).
//!
//! **Threading.** A [`SearchState`] (and everything it owns) is `Send`, and the
//! read-only inputs ([`EnumContext`], [`Constraints`]) are `Sync`; batch drivers such
//! as the `ise` CLI exploit this by giving each worker thread its own state over its
//! own block. Nothing here is `Sync`-shareable mid-run by design — a run owns its
//! mutable arena exclusively. The `search_state_and_friends_are_send` test pins this
//! contract at compile time.

use ise_graph::{DenseNodeSet, NodeId};
use ise_obs::Recorder;

use crate::cone::cone;
use crate::config::Constraints;
use crate::context::EnumContext;
use crate::cut::Cut;
use crate::obs::{phase, PhaseClock};
use crate::result::Enumeration;
use crate::stats::EnumStats;

/// When the engine de-duplicates a candidate relative to validating it (the DESIGN.md
/// §1.2 time-for-memory trade, selectable per run).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DedupMode {
    /// De-duplicate on the packed body key *before* validation (the default): repeated
    /// candidates skip the convexity and I/O-condition checks entirely, at the cost of
    /// retaining every distinct *examined* body (valid or not) in the seen-set arena —
    /// ~11M keys on the committed scaling workload's largest row.
    #[default]
    DedupFirst,
    /// Validate *before* de-duplicating: only valid cuts enter the seen-set, so the
    /// arena is bounded by the number of valid cuts instead of the number of distinct
    /// candidates — the memory fallback for sweeps over huge blocks. Duplicated
    /// candidates pay re-validation, and the rejection counters count every
    /// occurrence rather than the first; the reported cut set is identical.
    ValidateFirst,
}

impl DedupMode {
    /// The stable lowercase name used in CLI flags, JSON reports and cache keys.
    pub fn as_str(self) -> &'static str {
        match self {
            DedupMode::DedupFirst => "dedup-first",
            DedupMode::ValidateFirst => "validate-first",
        }
    }
}

/// Per-run engine settings bundled for the entry points that need more than the
/// defaults ([`run_with_options`], `incremental_cuts_opts`, the `par` module).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineOptions {
    /// Search budget in recursion steps (`None` = unbounded). In task-parallel runs
    /// the budget applies *per task*.
    pub max_search_nodes: Option<usize>,
    /// How the cut body is obtained at each `CHECK-CUT`.
    pub strategy: BodyStrategy,
    /// When candidates are de-duplicated relative to validation.
    pub dedup_mode: DedupMode,
}

impl EngineOptions {
    /// A stable, unambiguous serialization of every field, for content-addressed
    /// cache keys: two runs whose options produce the same token report the same
    /// enumeration on the same graph (given equal constraints and prunings).
    ///
    /// The token is part of the `ise serve` cache-key derivation (DESIGN.md §7), so
    /// its format is load-bearing: changing it invalidates every persisted cache
    /// entry — which is exactly the safe failure mode when a new field changes what
    /// the engine computes.
    ///
    /// # Example
    ///
    /// ```
    /// use ise_enum::EngineOptions;
    ///
    /// let defaults = EngineOptions::default();
    /// assert_eq!(
    ///     defaults.cache_token(),
    ///     "budget=none;strategy=incremental;dedup=dedup-first"
    /// );
    /// let budgeted = EngineOptions {
    ///     max_search_nodes: Some(1_000_000),
    ///     ..defaults
    /// };
    /// assert_ne!(budgeted.cache_token(), EngineOptions::default().cache_token());
    /// ```
    pub fn cache_token(&self) -> String {
        let budget = match self.max_search_nodes {
            None => "none".to_string(),
            Some(limit) => limit.to_string(),
        };
        let strategy = match self.strategy {
            BodyStrategy::Incremental => "incremental",
            BodyStrategy::Rebuild => "rebuild",
        };
        format!(
            "budget={budget};strategy={strategy};dedup={}",
            self.dedup_mode.as_str()
        )
    }
}

/// How the engine obtains the cut body at each `CHECK-CUT`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BodyStrategy {
    /// Maintain the body incrementally through the `push`/`pop` transactions (the
    /// paper's §5.2 discipline); `CHECK-CUT` reads the maintained set in `O(1)` plus
    /// the cost of materializing the reported cut.
    #[default]
    Incremental,
    /// Reproduce the pre-engine pipeline: rebuild the body from the chosen inputs and
    /// outputs at every `CHECK-CUT` with the backward closure of [`crate::cone`],
    /// materialize a fresh dominator tree per `PICK-INPUTS` run, and validate before
    /// de-duplicating. Kept as the measurable baseline for the `engine-vs-rebuild`
    /// benchmark; results are identical to [`BodyStrategy::Incremental`].
    Rebuild,
}

/// A search algorithm that enumerates cuts through a [`SearchState`].
///
/// Implementations own only their algorithm-specific state (recursion arguments,
/// caches, auxiliary markings); everything shared — statistics, the search budget, the
/// de-duplication table, candidate reporting and the incremental body machinery — lives
/// in the state.
pub trait Enumerator {
    /// Short human-readable name, used in diagnostics and benchmarks.
    fn name(&self) -> &'static str;

    /// Runs the search, reporting every candidate through `state`.
    fn search(&mut self, state: &mut SearchState<'_>);
}

/// Runs `enumerator` over `ctx` with the default [`BodyStrategy::Incremental`].
pub fn run<E: Enumerator + ?Sized>(
    enumerator: &mut E,
    ctx: &EnumContext,
    constraints: &Constraints,
    max_search_nodes: Option<usize>,
) -> Enumeration {
    run_with_strategy(
        enumerator,
        ctx,
        constraints,
        max_search_nodes,
        BodyStrategy::Incremental,
    )
}

/// Runs `enumerator` over `ctx` with an explicit [`BodyStrategy`].
pub fn run_with_strategy<E: Enumerator + ?Sized>(
    enumerator: &mut E,
    ctx: &EnumContext,
    constraints: &Constraints,
    max_search_nodes: Option<usize>,
    strategy: BodyStrategy,
) -> Enumeration {
    run_with_options(
        enumerator,
        ctx,
        constraints,
        &EngineOptions {
            max_search_nodes,
            strategy,
            dedup_mode: DedupMode::default(),
        },
    )
}

/// Runs `enumerator` over `ctx` with explicit [`EngineOptions`].
pub fn run_with_options<E: Enumerator + ?Sized>(
    enumerator: &mut E,
    ctx: &EnumContext,
    constraints: &Constraints,
    options: &EngineOptions,
) -> Enumeration {
    run_with_observer(enumerator, ctx, constraints, options, None)
}

/// Runs `enumerator` over `ctx` with explicit [`EngineOptions`] and an optional
/// [`Recorder`] receiving per-phase timings, search-progress counters, and a span
/// covering the whole run.
///
/// Observability is strictly write-only: the recorder never influences the search,
/// so the returned [`Enumeration`] is byte-for-byte the one
/// [`run_with_options`] produces.
pub fn run_with_observer<E: Enumerator + ?Sized>(
    enumerator: &mut E,
    ctx: &EnumContext,
    constraints: &Constraints,
    options: &EngineOptions,
    rec: Option<&dyn Recorder>,
) -> Enumeration {
    let mut state = SearchState::new(ctx, constraints, options.max_search_nodes, options.strategy);
    state.set_dedup_mode(options.dedup_mode);
    if let Some(rec) = rec {
        state.set_recorder(rec);
    }
    let span = match rec {
        Some(rec) => rec.span_begin("engine", enumerator.name()),
        None => ise_obs::SpanToken::NONE,
    };
    enumerator.search(&mut state);
    let enumeration = state.finish();
    if let Some(rec) = rec {
        rec.span_end(span);
    }
    enumeration
}

/// One entry of the undo trail; popping a frame replays these in reverse.
#[derive(Clone, Copy, Debug)]
enum TrailEntry {
    /// `support[v]` was incremented.
    SupportInc(NodeId),
    /// `support[v]` was decremented.
    SupportDec(NodeId),
    /// `v` entered the body.
    BodyAdd(NodeId),
    /// `v` left the body.
    BodyRemove(NodeId),
}

/// The arena-style shared search state (see the module docs).
///
/// The transactional API ([`SearchState::push_output`], [`SearchState::push_input`],
/// [`SearchState::pop_output`], [`SearchState::pop_input`]) maintains the cut body
/// incrementally and must be used with strict LIFO discipline. Algorithms that build
/// bodies directly (the exhaustive oracle, the Atasu/Pozzi baseline) instead use the
/// raw body accessors ([`SearchState::body_insert`], [`SearchState::body_remove`],
/// [`SearchState::body_clear`]) and must not mix them with the transactional API.
pub struct SearchState<'a> {
    ctx: &'a EnumContext,
    constraints: &'a Constraints,
    strategy: BodyStrategy,
    dedup_mode: DedupMode,
    /// When set, every first-seen key inserted into `seen` gets one classification
    /// byte appended here (see [`CandidateClass`]) — the trace the task-parallel
    /// merge replays to reconstruct the serial run's statistics exactly.
    class_log: Option<Vec<u8>>,
    max_search_nodes: Option<usize>,
    /// Cached `ctx.rooted().forbidden()` for hot membership tests.
    forbidden: &'a DenseNodeSet,
    // --- cut body S, maintained incrementally ---
    body: DenseNodeSet,
    /// `support[v]` = edges from `v` into the body, plus 1 if `v` is a chosen output.
    support: Vec<u32>,
    /// Number of forbidden vertices currently in the body (`O(1)` build-S pruning).
    forbidden_in_body: usize,
    trail: Vec<TrailEntry>,
    frames: Vec<usize>,
    worklist: Vec<NodeId>,
    // --- chosen inputs and outputs ---
    inputs: Vec<NodeId>,
    input_set: DenseNodeSet,
    outputs: Vec<NodeId>,
    output_set: DenseNodeSet,
    // --- scratch for dominance DFS ---
    scratch_set: DenseNodeSet,
    scratch_stack: Vec<NodeId>,
    // --- results ---
    seen: CutKeySet,
    /// `(inputs, outputs)`-keyed seen-set used only by [`BodyStrategy::Rebuild`], for
    /// fidelity with the pre-engine de-duplication it benchmarks against.
    legacy_seen: std::collections::HashSet<(Vec<NodeId>, Vec<NodeId>)>,
    cuts: Vec<Cut>,
    stats: EnumStats,
    // --- observability (write-only; never influences the search) ---
    rec: Option<&'a dyn Recorder>,
    clock: PhaseClock,
}

impl<'a> SearchState<'a> {
    /// Creates a fresh state for one enumeration run.
    pub fn new(
        ctx: &'a EnumContext,
        constraints: &'a Constraints,
        max_search_nodes: Option<usize>,
        strategy: BodyStrategy,
    ) -> Self {
        let n = ctx.rooted().num_nodes();
        SearchState {
            ctx,
            constraints,
            strategy,
            dedup_mode: DedupMode::default(),
            class_log: None,
            max_search_nodes,
            forbidden: ctx.rooted().forbidden(),
            body: DenseNodeSet::new(n),
            support: vec![0; n],
            forbidden_in_body: 0,
            trail: Vec::new(),
            frames: Vec::new(),
            worklist: Vec::new(),
            inputs: Vec::new(),
            input_set: DenseNodeSet::new(n),
            outputs: Vec::new(),
            output_set: DenseNodeSet::new(n),
            scratch_set: DenseNodeSet::new(n),
            scratch_stack: Vec::new(),
            seen: CutKeySet::new(n.div_ceil(64)),
            legacy_seen: std::collections::HashSet::new(),
            cuts: Vec::new(),
            stats: EnumStats::new(),
            rec: None,
            clock: PhaseClock::disabled(),
        }
    }

    /// Attaches a recorder: per-phase self-time attribution arms immediately
    /// when the recorder is live, and the accumulated counters flush when the
    /// run finishes. A disabled recorder (`enabled() == false`, e.g.
    /// [`ise_obs::NoopRecorder`]) keeps the phase clock disarmed so every
    /// transition stays a single predictable branch — the ≤1% disabled-path
    /// bound asserted by the `obs_overhead` bench. Recording is write-only —
    /// it never changes what the search explores or reports.
    pub fn set_recorder(&mut self, rec: &'a dyn Recorder) {
        self.rec = Some(rec);
        if rec.enabled() {
            self.clock.enable();
        }
    }

    /// Switches the phase clock (no-op without a recorder); see
    /// [`crate::obs::PhaseClock::enter`].
    #[inline]
    pub(crate) fn phase_enter(&mut self, phase: u8) -> u8 {
        self.clock.enter(phase)
    }

    /// Restores the phase clock (no-op without a recorder); see
    /// [`crate::obs::PhaseClock::restore`].
    #[inline]
    pub(crate) fn phase_restore(&mut self, phase: u8) {
        self.clock.restore(phase)
    }

    /// Flushes the per-phase timings and the progress counters to the attached
    /// recorder (bulk, once per run or per parallel task — never per event).
    fn flush_obs(&mut self) {
        let Some(rec) = self.rec else { return };
        let (ns, entries) = self.clock.finalize();
        for (i, name) in phase::NAMES.iter().enumerate() {
            if ns[i] > 0 {
                rec.add(
                    &format!("ise_engine_phase_ns_total{{phase=\"{name}\"}}"),
                    ns[i],
                );
            }
            if entries[i] > 0 {
                rec.add(
                    &format!("ise_engine_phase_entries_total{{phase=\"{name}\"}}"),
                    entries[i],
                );
            }
        }
        rec.add("ise_engine_runs_total", 1);
        rec.add(
            "ise_engine_search_nodes_total",
            self.stats.search_nodes as u64,
        );
        rec.add(
            "ise_engine_candidates_total",
            self.stats.candidates_checked as u64,
        );
        rec.add("ise_engine_valid_cuts_total", self.stats.valid_cuts as u64);
        rec.add(
            "ise_engine_duplicates_total",
            self.stats.rejected_duplicate as u64,
        );
        rec.add(
            "ise_engine_dominator_runs_total",
            self.stats.dominator_runs as u64,
        );
    }

    /// The shared analysis context of this run.
    pub fn ctx(&self) -> &'a EnumContext {
        self.ctx
    }

    /// The microarchitectural constraints of this run.
    pub fn constraints(&self) -> &'a Constraints {
        self.constraints
    }

    /// The body strategy of this run.
    pub fn strategy(&self) -> BodyStrategy {
        self.strategy
    }

    /// The de-duplication mode of this run.
    pub fn dedup_mode(&self) -> DedupMode {
        self.dedup_mode
    }

    /// Selects when candidates are de-duplicated relative to validation (see
    /// [`DedupMode`]). Must be called before the search reports any candidate.
    pub fn set_dedup_mode(&mut self, mode: DedupMode) {
        debug_assert!(
            self.seen.len() == 0 && self.cuts.is_empty(),
            "dedup mode must be fixed before candidates are reported"
        );
        self.dedup_mode = mode;
    }

    /// Turns on the candidate-classification log consumed by the task-parallel merge
    /// (`crate::par`). Only meaningful with [`DedupMode::DedupFirst`] under
    /// [`BodyStrategy::Incremental`]; one byte is appended per first-seen key, in
    /// seen-set insertion order.
    pub(crate) fn enable_class_log(&mut self) {
        self.class_log = Some(Vec::new());
    }

    /// Read access to the statistics accumulated so far.
    pub fn stats(&self) -> &EnumStats {
        &self.stats
    }

    /// Mutable access to the statistics, for algorithm-specific pruning counters.
    pub fn stats_mut(&mut self) -> &mut EnumStats {
        &mut self.stats
    }

    /// Whether the search budget is exhausted.
    pub fn out_of_budget(&self) -> bool {
        self.max_search_nodes
            .is_some_and(|limit| self.stats.search_nodes >= limit)
    }

    /// Accounts one recursion step against the budget: returns `false` (and counts
    /// nothing) if the budget is already exhausted, otherwise bumps `search_nodes`.
    pub fn try_enter(&mut self) -> bool {
        if self.out_of_budget() {
            return false;
        }
        self.stats.search_nodes += 1;
        true
    }

    /// The chosen input vertices, in pick order.
    pub fn chosen_inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The chosen output vertices, in pick order.
    pub fn chosen_outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// The chosen inputs as a set.
    pub fn input_set(&self) -> &DenseNodeSet {
        &self.input_set
    }

    /// The chosen outputs as a set.
    pub fn output_set(&self) -> &DenseNodeSet {
        &self.output_set
    }

    /// The current cut body `S`.
    ///
    /// Only meaningful under [`BodyStrategy::Incremental`] (or for algorithms that
    /// maintain the body through the raw accessors).
    pub fn body(&self) -> &DenseNodeSet {
        &self.body
    }

    /// Whether the maintained body currently contains a forbidden vertex (the `O(1)`
    /// form of §5.3's "pruning while building S").
    pub fn body_has_forbidden(&self) -> bool {
        self.forbidden_in_body > 0
    }

    /// Whether the chosen input set blocks every source path to `target` (condition 1
    /// of the generalized-dominator definition), using the preallocated DFS scratch.
    pub fn inputs_dominate(&mut self, target: NodeId) -> bool {
        self.ctx.set_dominates_in(
            &self.input_set,
            target,
            &mut self.scratch_set,
            &mut self.scratch_stack,
        )
    }

    // ------------------------------------------------------------------
    // Transactional body maintenance (§5.2): push/pop in LIFO order.
    // ------------------------------------------------------------------

    /// Chooses `o` as an output, extending the body with every vertex that now reaches
    /// an output through a path free of chosen inputs.
    ///
    /// # Panics
    ///
    /// Panics if `o` is already a chosen output.
    pub fn push_output(&mut self, o: NodeId) {
        self.frames.push(self.trail.len());
        assert!(self.output_set.insert(o), "output {o} pushed twice");
        self.outputs.push(o);
        if self.strategy == BodyStrategy::Incremental {
            debug_assert!(self.worklist.is_empty());
            let ctx = self.ctx;
            self.bump_support(o);
            while let Some(v) = self.worklist.pop() {
                for &p in ctx.rooted().preds(v) {
                    self.bump_support(p);
                }
            }
        }
    }

    /// Reverts the most recent [`SearchState::push_output`].
    pub fn pop_output(&mut self) {
        let o = self.outputs.pop().expect("pop_output without push_output");
        self.output_set.remove(o);
        self.unwind_frame();
    }

    /// Chooses `w` as an input, retracting from the body `w` itself and every vertex
    /// whose every input-free path to an output ran through `w`.
    ///
    /// # Panics
    ///
    /// Panics if `w` is already a chosen input.
    pub fn push_input(&mut self, w: NodeId) {
        self.frames.push(self.trail.len());
        assert!(self.input_set.insert(w), "input {w} pushed twice");
        self.inputs.push(w);
        if self.strategy == BodyStrategy::Incremental && self.body.contains(w) {
            debug_assert!(self.worklist.is_empty());
            let ctx = self.ctx;
            self.drop_from_body(w);
            while let Some(v) = self.worklist.pop() {
                for &p in ctx.rooted().preds(v) {
                    self.drop_support(p);
                }
            }
        }
    }

    /// Reverts the most recent [`SearchState::push_input`].
    pub fn pop_input(&mut self) {
        let w = self.inputs.pop().expect("pop_input without push_input");
        self.input_set.remove(w);
        self.unwind_frame();
    }

    fn bump_support(&mut self, v: NodeId) {
        let i = v.index();
        self.support[i] += 1;
        self.trail.push(TrailEntry::SupportInc(v));
        if self.support[i] == 1 && !self.input_set.contains(v) {
            self.add_to_body(v);
        }
    }

    fn drop_support(&mut self, v: NodeId) {
        let i = v.index();
        self.support[i] -= 1;
        self.trail.push(TrailEntry::SupportDec(v));
        if self.support[i] == 0 && self.body.contains(v) {
            self.drop_from_body(v);
        }
    }

    fn add_to_body(&mut self, v: NodeId) {
        self.body.insert(v);
        self.trail.push(TrailEntry::BodyAdd(v));
        // Forbidden vertices are truncation boundaries: they enter the body (so the
        // O(1) build-S test sees them) but never propagate support to their
        // predecessors. This is the incremental counterpart of the legacy closure's
        // early abort — the maintenance never walks the forbidden region behind them.
        // Valid cut bodies contain no forbidden vertices, so their maintained bodies
        // are exact; truncated bodies are invalid and rejected either way.
        if self.forbidden.contains(v) {
            self.forbidden_in_body += 1;
        } else {
            self.worklist.push(v);
        }
    }

    fn drop_from_body(&mut self, v: NodeId) {
        self.body.remove(v);
        self.trail.push(TrailEntry::BodyRemove(v));
        // Mirror of `add_to_body`: forbidden vertices contributed no support to their
        // predecessors, so their retraction must not cascade either.
        if self.forbidden.contains(v) {
            self.forbidden_in_body -= 1;
        } else {
            self.worklist.push(v);
        }
    }

    fn unwind_frame(&mut self) {
        let mark = self.frames.pop().expect("unbalanced push/pop frames");
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail shorter than its frame mark") {
                TrailEntry::SupportInc(v) => self.support[v.index()] -= 1,
                TrailEntry::SupportDec(v) => self.support[v.index()] += 1,
                TrailEntry::BodyAdd(v) => {
                    self.body.remove(v);
                    if self.forbidden.contains(v) {
                        self.forbidden_in_body -= 1;
                    }
                }
                TrailEntry::BodyRemove(v) => {
                    self.body.insert(v);
                    if self.forbidden.contains(v) {
                        self.forbidden_in_body += 1;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Raw body access, for algorithms without the transactional discipline.
    // ------------------------------------------------------------------

    /// Adds `v` to the body directly, bypassing the incremental machinery.
    pub fn body_insert(&mut self, v: NodeId) {
        self.body.insert(v);
    }

    /// Removes `v` from the body directly, bypassing the incremental machinery.
    pub fn body_remove(&mut self, v: NodeId) {
        self.body.remove(v);
    }

    /// Empties the body directly, bypassing the incremental machinery.
    pub fn body_clear(&mut self) {
        self.body.clear();
    }

    // ------------------------------------------------------------------
    // Candidate reporting.
    // ------------------------------------------------------------------

    /// `CHECK-CUT` for the transactional algorithms: materializes the candidate
    /// identified by the chosen inputs and outputs and reports it.
    ///
    /// Under [`BodyStrategy::Incremental`] the maintained body is used: the §5.3
    /// build-S pruning degenerates to the `O(1)` forbidden counter test, and the
    /// candidate is de-duplicated on its packed body key *before* validation, so
    /// repeated candidates skip the convexity and I/O-condition checks entirely. Under
    /// [`BodyStrategy::Rebuild`] the legacy pipeline runs instead: a fresh backward
    /// closure per call, with validation before de-duplication.
    pub fn check_cut(&mut self, abort_on_forbidden: bool) {
        let prev = self.clock.enter(phase::DEDUP);
        self.check_cut_inner(abort_on_forbidden);
        self.clock.restore(prev);
    }

    fn check_cut_inner(&mut self, abort_on_forbidden: bool) {
        match self.strategy {
            BodyStrategy::Incremental => {
                if abort_on_forbidden && self.forbidden_in_body > 0 {
                    self.stats.pruned_build_s += 1;
                    return;
                }
                self.stats.candidates_checked += 1;
                match self.dedup_mode {
                    DedupMode::DedupFirst => {
                        if !self.seen.insert(self.body.words()) {
                            self.stats.rejected_duplicate += 1;
                            return;
                        }
                        let cut = Cut::from_body(self.ctx, self.body.clone());
                        let class = match cut.validate(self.ctx, self.constraints, true) {
                            Ok(()) => {
                                self.stats.valid_cuts += 1;
                                self.cuts.push(cut);
                                CandidateClass::VALID
                            }
                            Err(rejection) => {
                                self.stats.record_rejection(rejection);
                                CandidateClass::of(rejection)
                            }
                        };
                        if let Some(log) = &mut self.class_log {
                            log.push(class);
                        }
                    }
                    DedupMode::ValidateFirst => {
                        let cut = Cut::from_body(self.ctx, self.body.clone());
                        match cut.validate(self.ctx, self.constraints, true) {
                            Ok(()) => {
                                if self.seen.insert(self.body.words()) {
                                    self.stats.valid_cuts += 1;
                                    self.cuts.push(cut);
                                    if let Some(log) = &mut self.class_log {
                                        log.push(CandidateClass::VALID);
                                    }
                                } else {
                                    self.stats.rejected_duplicate += 1;
                                }
                            }
                            Err(rejection) => self.stats.record_rejection(rejection),
                        }
                    }
                }
            }
            BodyStrategy::Rebuild => {
                match cone(
                    self.ctx.rooted(),
                    &self.input_set,
                    &self.outputs,
                    abort_on_forbidden,
                ) {
                    Ok(body) => {
                        self.stats.candidates_checked += 1;
                        let cut = Cut::from_body(self.ctx, body);
                        match cut.validate(self.ctx, self.constraints, true) {
                            Ok(()) => {
                                // Legacy fidelity: the pre-engine seen-set cloned the
                                // sorted input/output vectors as its key.
                                let key = (cut.inputs().to_vec(), cut.outputs().to_vec());
                                if self.legacy_seen.insert(key) {
                                    self.stats.valid_cuts += 1;
                                    self.cuts.push(cut);
                                } else {
                                    self.stats.rejected_duplicate += 1;
                                }
                            }
                            Err(rejection) => self.stats.record_rejection(rejection),
                        }
                    }
                    Err(_) => self.stats.pruned_build_s += 1,
                }
            }
        }
    }

    /// Reports an owned candidate body with packed-key de-duplication (used by the
    /// basic algorithm, whose output/dominator couplings revisit cuts).
    pub fn report_deduped(&mut self, body: DenseNodeSet, require_io_condition: bool) {
        self.stats.candidates_checked += 1;
        match self.dedup_mode {
            DedupMode::DedupFirst => {
                if !self.seen.insert(body.words()) {
                    self.stats.rejected_duplicate += 1;
                    return;
                }
                let cut = Cut::from_body(self.ctx, body);
                let class = match cut.validate(self.ctx, self.constraints, require_io_condition) {
                    Ok(()) => {
                        self.stats.valid_cuts += 1;
                        self.cuts.push(cut);
                        CandidateClass::VALID
                    }
                    Err(rejection) => {
                        self.stats.record_rejection(rejection);
                        CandidateClass::of(rejection)
                    }
                };
                if let Some(log) = &mut self.class_log {
                    log.push(class);
                }
            }
            DedupMode::ValidateFirst => {
                let cut = Cut::from_body(self.ctx, body);
                match cut.validate(self.ctx, self.constraints, require_io_condition) {
                    Ok(()) => {
                        if self.seen.insert(cut.body().words()) {
                            self.stats.valid_cuts += 1;
                            self.cuts.push(cut);
                            if let Some(log) = &mut self.class_log {
                                log.push(CandidateClass::VALID);
                            }
                        } else {
                            self.stats.rejected_duplicate += 1;
                        }
                    }
                    Err(rejection) => self.stats.record_rejection(rejection),
                }
            }
        }
    }

    /// Reports the current raw body without de-duplication (used by the exhaustive
    /// oracle and the Atasu/Pozzi baseline, whose searches visit each body once).
    pub fn report_current(&mut self, require_io_condition: bool) {
        self.stats.candidates_checked += 1;
        let cut = Cut::from_body(self.ctx, self.body.clone());
        match cut.validate(self.ctx, self.constraints, require_io_condition) {
            Ok(()) => {
                self.stats.valid_cuts += 1;
                self.cuts.push(cut);
            }
            Err(rejection) => self.stats.record_rejection(rejection),
        }
    }

    /// Consumes the state, yielding the collected cuts and statistics.
    pub fn finish(mut self) -> Enumeration {
        self.flush_obs();
        Enumeration {
            cuts: self.cuts,
            stats: self.stats,
        }
    }

    /// Consumes the state, yielding everything the task-parallel merge needs: the
    /// cuts, the statistics, the seen-set (whose arena lists every first-seen key in
    /// insertion order) and the classification log paired with it.
    pub(crate) fn finish_task(mut self) -> TaskHarvest {
        self.flush_obs();
        TaskHarvest {
            cuts: self.cuts,
            stats: self.stats,
            seen: self.seen,
            classes: self.class_log.unwrap_or_default(),
        }
    }
}

/// Classification byte appended to the candidate log per first-seen key: how the
/// candidate fared when it was first examined. The task-parallel merge replays these
/// to reconstruct the serial run's counters exactly (see `crate::par`).
pub(crate) struct CandidateClass;

impl CandidateClass {
    /// The candidate validated as a cut.
    pub const VALID: u8 = 0;
    /// Rejected with a forbidden vertex in the body.
    pub const FORBIDDEN: u8 = 1;
    /// Rejected for exceeding the input or output port budget.
    pub const IO: u8 = 2;
    /// Rejected by the connectedness requirement.
    pub const DISCONNECTED: u8 = 3;
    /// Rejected by the depth limit.
    pub const DEPTH: u8 = 4;
    /// Structurally not a cut (empty, non-convex, or violating the §3 technical
    /// condition) — rejections without a dedicated counter.
    pub const STRUCTURAL: u8 = 5;

    /// Maps a rejection to its classification byte, mirroring
    /// [`EnumStats::record_rejection`].
    pub fn of(rejection: crate::cut::CutRejection) -> u8 {
        use crate::cut::CutRejection::*;
        match rejection {
            Empty | NotConvex | IoCondition(_) => Self::STRUCTURAL,
            Forbidden(_) => Self::FORBIDDEN,
            TooManyInputs(_) | TooManyOutputs(_) => Self::IO,
            Disconnected => Self::DISCONNECTED,
            TooDeep(_) => Self::DEPTH,
        }
    }

    /// Replays a classification into `stats` the way the first examination counted
    /// it (the inverse of [`CandidateClass::of`] + `record_rejection`).
    pub fn replay(class: u8, stats: &mut EnumStats) {
        match class {
            Self::VALID => stats.valid_cuts += 1,
            Self::FORBIDDEN => stats.rejected_forbidden += 1,
            Self::IO => stats.rejected_io += 1,
            Self::DISCONNECTED => stats.rejected_disconnected += 1,
            Self::DEPTH => stats.rejected_depth += 1,
            _ => {}
        }
    }
}

/// What one task of a task-parallel run hands to the merge (see `crate::par`).
pub(crate) struct TaskHarvest {
    /// The task's cuts, in discovery order.
    pub cuts: Vec<Cut>,
    /// The task's local statistics.
    pub stats: EnumStats,
    /// The task's seen-set; its arena lists every first-seen key in insertion order.
    pub seen: CutKeySet,
    /// One [`CandidateClass`] byte per first-seen key (empty unless the class log was
    /// enabled).
    pub classes: Vec<u8>,
}

/// Insert-only hash set of packed cut-body keys.
///
/// Keys are fixed-width word slices (one stride per graph) stored back to back in a
/// single arena; the open-addressing table stores arena indices. Hashing is FNV-1a one
/// 64-bit word at a time. This replaces the legacy
/// `HashSet<(Vec<NodeId>, Vec<NodeId>)>` seen-sets, which allocated two vectors per
/// candidate and hashed node ids one by one.
#[derive(Clone, Debug)]
pub(crate) struct CutKeySet {
    stride: usize,
    arena: Vec<u64>,
    /// Open-addressing table of key indices; `EMPTY_SLOT` marks a free slot.
    table: Vec<u32>,
    len: usize,
}

const EMPTY_SLOT: u32 = u32::MAX;

impl CutKeySet {
    pub(crate) fn new(stride: usize) -> Self {
        CutKeySet {
            stride,
            arena: Vec::new(),
            table: vec![EMPTY_SLOT; 64],
            len: 0,
        }
    }

    /// Number of distinct keys stored.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The `idx`-th inserted key (insertion order); the arena doubles as the ordered
    /// log of first-seen candidates that the task-parallel merge walks.
    pub(crate) fn key(&self, idx: usize) -> &[u64] {
        let start = idx * self.stride;
        &self.arena[start..start + self.stride]
    }

    /// Hash of a packed key. Exposed crate-wide so the task merge can shard keys by
    /// the *high* hash bits (the table index below uses the low bits, so the two
    /// partitions stay independent — the same split `CanonMemo` uses for its stripes).
    pub(crate) fn hash_key(words: &[u64]) -> u64 {
        Self::hash(words)
    }

    fn hash(words: &[u64]) -> u64 {
        // FNV-1a over 64-bit words, followed by a murmur3-style finalizer. The
        // finalizer matters: the FNV multiply only propagates entropy towards the high
        // bits, and the table index is taken from the *low* bits — without the final
        // avalanche, bodies differing only in high vertex indices cluster into the
        // same slots and the linear probing degenerates.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &w in words {
            h = (h ^ w).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        h ^ (h >> 33)
    }

    /// Inserts `words`; returns `true` if the key was not already present.
    pub(crate) fn insert(&mut self, words: &[u64]) -> bool {
        self.insert_prehashed(words, Self::hash(words))
    }

    /// [`insert`](Self::insert) with the hash supplied by the caller — the sharded
    /// merge computes every key's hash once for shard routing and reuses it here.
    pub(crate) fn insert_prehashed(&mut self, words: &[u64], hash: u64) -> bool {
        debug_assert_eq!(words.len(), self.stride);
        debug_assert_eq!(hash, Self::hash(words));
        if (self.len + 1) * 4 >= self.table.len() * 3 {
            self.grow();
        }
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            match self.table[slot] {
                EMPTY_SLOT => {
                    self.table[slot] = self.len as u32;
                    self.arena.extend_from_slice(words);
                    self.len += 1;
                    return true;
                }
                idx => {
                    let start = idx as usize * self.stride;
                    if &self.arena[start..start + self.stride] == words {
                        return false;
                    }
                    slot = (slot + 1) & mask;
                }
            }
        }
    }

    fn grow(&mut self) {
        let new_cap = self.table.len() * 2;
        let mask = new_cap - 1;
        let mut table = vec![EMPTY_SLOT; new_cap];
        for idx in 0..self.len {
            let start = idx * self.stride;
            let words = &self.arena[start..start + self.stride];
            let mut slot = (Self::hash(words) as usize) & mask;
            while table[slot] != EMPTY_SLOT {
                slot = (slot + 1) & mask;
            }
            table[slot] = idx as u32;
        }
        self.table = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PruningConfig;
    use crate::incremental::{incremental_cuts_with, IncrementalEnumerator};
    use ise_graph::{DfgBuilder, Operation};

    #[test]
    fn cut_key_set_deduplicates_and_grows() {
        let mut set = CutKeySet::new(3);
        // Insert enough distinct keys to force several growth rounds.
        for i in 0..500u64 {
            assert!(set.insert(&[i, i.wrapping_mul(7), !i]));
        }
        for i in 0..500u64 {
            assert!(!set.insert(&[i, i.wrapping_mul(7), !i]), "key {i} twice");
        }
        assert!(set.insert(&[0, 0, 0]));
        assert_eq!(set.len, 501);
    }

    #[test]
    fn cut_key_set_handles_colliding_hashes() {
        // Zero-stride keys all hash identically; the first insert wins, the rest dup.
        let mut set = CutKeySet::new(0);
        assert!(set.insert(&[]));
        assert!(!set.insert(&[]));
    }

    /// The body maintained through push/pop transactions must always equal the legacy
    /// backward closure of the same (inputs, outputs) choice.
    #[test]
    fn transactional_body_matches_the_backward_closure() {
        // a, c inputs; n = a + c; x = n << 1; y = n - c; z = x ^ y
        let mut b = DfgBuilder::new("engine");
        let a = b.input("a");
        let c = b.input("c");
        let nn = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Shl, &[nn]);
        let y = b.node(Operation::Sub, &[nn, c]);
        let z = b.node(Operation::Xor, &[x, y]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(4, 2).unwrap();
        let mut state = SearchState::new(&ctx, &constraints, None, BodyStrategy::Incremental);

        let expect = |state: &SearchState, inputs: &[NodeId], outputs: &[NodeId]| {
            let set = DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), inputs.iter().copied());
            let closure = cone(ctx.rooted(), &set, outputs, false).unwrap();
            assert_eq!(
                state.body(),
                &closure,
                "inputs {inputs:?} outputs {outputs:?}"
            );
        };

        state.push_output(z);
        // No inputs chosen: the closure reaches the forbidden external inputs, which
        // enter the body as truncation boundaries.
        assert!(state.body_has_forbidden());
        state.push_input(a);
        state.push_input(c);
        expect(&state, &[a, c], &[z]);
        assert!(!state.body_has_forbidden());

        // Adding n as input retracts n (and nothing else reaches z only through n —
        // x and y survive via their own support).
        state.push_input(nn);
        expect(&state, &[a, c, nn], &[z]);
        state.pop_input();
        expect(&state, &[a, c], &[z]);

        // A second output extends the body; popping it restores the previous state.
        state.push_output(y);
        expect(&state, &[a, c], &[z, y]);
        state.pop_output();
        expect(&state, &[a, c], &[z]);

        // Full unwind leaves an empty body.
        state.pop_input();
        state.pop_input();
        state.pop_output();
        assert!(state.body().is_empty());
        assert!(!state.body_has_forbidden());
    }

    #[test]
    fn retraction_cascades_through_dependent_vertices() {
        // a -> m -> p -> q; choosing q as output pulls in the whole chain, then
        // choosing m as input must retract p's ancestors... i.e. only m (p and q keep
        // support from q), while choosing p as input retracts nothing above it but p.
        let mut b = DfgBuilder::new("cascade");
        let a = b.input("a");
        let m = b.node(Operation::Not, &[a]);
        let p = b.node(Operation::Shl, &[m]);
        let q = b.node(Operation::Add, &[p]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(4, 2).unwrap();
        let mut state = SearchState::new(&ctx, &constraints, None, BodyStrategy::Incremental);

        state.push_output(q);
        assert!(state.body().contains(m) && state.body().contains(a));
        state.push_input(m);
        // m's removal cascades upwards: a (and the source) lose their only support.
        assert!(!state.body().contains(m));
        assert!(!state.body().contains(a));
        assert!(state.body().contains(p) && state.body().contains(q));
        assert!(!state.body_has_forbidden(), "a and the source retracted");
        state.pop_input();
        assert!(state.body().contains(a), "undo restores the cascade");
        state.pop_output();
        assert!(state.body().is_empty());
    }

    /// The §1.2 memory fallback: validate-first keeps only valid cuts in the
    /// seen-set arena, at the cost of re-validating duplicates — the reported cut
    /// set must be identical to dedup-first's.
    #[test]
    fn dedup_modes_report_identical_cuts() {
        let mut b = DfgBuilder::new("modes");
        let a = b.input("a");
        let c = b.input("c");
        let nn = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Mul, &[nn, c]);
        let y = b.node(Operation::Sub, &[nn, a]);
        let z = b.node(Operation::Xor, &[x, y]);
        b.mark_output(y);
        b.mark_output(z);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(4, 2).unwrap();
        let pruning = PruningConfig::all();
        let run = |mode: DedupMode| {
            let mut enumerator = IncrementalEnumerator::new(&ctx, &pruning);
            run_with_options(
                &mut enumerator,
                &ctx,
                &constraints,
                &EngineOptions {
                    dedup_mode: mode,
                    ..EngineOptions::default()
                },
            )
        };
        let dedup_first = run(DedupMode::DedupFirst);
        let validate_first = run(DedupMode::ValidateFirst);
        fn keys(r: &Enumeration) -> Vec<crate::cut::CutKey<'_>> {
            r.cuts.iter().map(Cut::key).collect()
        }
        assert_eq!(keys(&dedup_first), keys(&validate_first));
        // The search shape is identical; only the dedup-dependent counters differ.
        assert_eq!(
            dedup_first.stats.search_nodes,
            validate_first.stats.search_nodes
        );
        assert_eq!(
            dedup_first.stats.valid_cuts,
            validate_first.stats.valid_cuts
        );
        assert!(
            dedup_first.stats.rejected_duplicate > 0,
            "the fixture must revisit candidates"
        );
    }

    /// The memory fallback must also cover the `report_deduped` path (the basic
    /// algorithm), not just the transactional `check_cut`.
    #[test]
    fn dedup_modes_agree_on_the_report_deduped_path() {
        use crate::basic::BasicEnumerator;
        let mut b = DfgBuilder::new("basic-modes");
        let a = b.input("a");
        let c = b.input("c");
        let nn = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Mul, &[nn, c]);
        let _y = b.node(Operation::Sub, &[nn, x]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(3, 2).unwrap();
        let run = |mode: DedupMode| {
            let mut enumerator = BasicEnumerator::new(&ctx);
            run_with_options(
                &mut enumerator,
                &ctx,
                &constraints,
                &EngineOptions {
                    dedup_mode: mode,
                    ..EngineOptions::default()
                },
            )
        };
        let dedup_first = run(DedupMode::DedupFirst);
        let validate_first = run(DedupMode::ValidateFirst);
        let mut df: Vec<_> = dedup_first.cuts.iter().map(Cut::key).collect();
        let mut vf: Vec<_> = validate_first.cuts.iter().map(Cut::key).collect();
        df.sort();
        vf.sort();
        assert_eq!(df, vf);
        assert_eq!(
            dedup_first.stats.valid_cuts,
            validate_first.stats.valid_cuts
        );
    }

    #[test]
    fn rebuild_strategy_produces_identical_cuts() {
        let mut b = DfgBuilder::new("strategies");
        let a = b.input("a");
        let c = b.input("c");
        let nn = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Mul, &[nn, c]);
        let y = b.node(Operation::Sub, &[nn, a]);
        b.mark_output(x);
        b.mark_output(y);
        let ctx = EnumContext::new(b.build().unwrap());
        for (nin, nout) in [(2, 1), (3, 2), (4, 2)] {
            let constraints = Constraints::new(nin, nout).unwrap();
            let fast = incremental_cuts_with(
                &ctx,
                &constraints,
                &PruningConfig::all(),
                None,
                BodyStrategy::Incremental,
            );
            let slow = incremental_cuts_with(
                &ctx,
                &constraints,
                &PruningConfig::all(),
                None,
                BodyStrategy::Rebuild,
            );
            let mut fk: Vec<_> = fast.cuts.iter().map(Cut::key).collect();
            let mut sk: Vec<_> = slow.cuts.iter().map(Cut::key).collect();
            fk.sort();
            sk.sort();
            assert_eq!(fk, sk, "Nin={nin} Nout={nout}");
            assert_eq!(fast.stats.valid_cuts, slow.stats.valid_cuts);
        }
    }

    /// `Send` audit: batch drivers (the `ise` CLI) shard blocks across worker threads,
    /// each owning its context and search state. Everything the engine touches must
    /// therefore be `Send` (and the shared read-only inputs `Sync`); this is a
    /// compile-time assertion, so any future `Rc`/raw-pointer regression fails here.
    #[test]
    fn search_state_and_friends_are_send() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<SearchState<'_>>();
        assert_send::<EnumContext>();
        assert_send::<Enumeration>();
        assert_send::<Cut>();
        assert_send::<CutKeySet>();
        assert_sync::<EnumContext>();
        assert_sync::<ise_graph::Dfg>();
        assert_sync::<Constraints>();
    }

    #[test]
    fn budget_is_enforced_by_try_enter() {
        let mut bld = DfgBuilder::new("budget");
        let a = bld.input("a");
        let _x = bld.node(Operation::Not, &[a]);
        let ctx = EnumContext::new(bld.build().unwrap());
        let constraints = Constraints::new(2, 1).unwrap();
        let mut state = SearchState::new(&ctx, &constraints, Some(2), BodyStrategy::Incremental);
        assert!(state.try_enter());
        assert!(state.try_enter());
        assert!(!state.try_enter(), "third step exceeds the budget");
        assert!(state.out_of_budget());
        assert_eq!(state.stats().search_nodes, 2);
    }
}
