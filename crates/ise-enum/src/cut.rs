//! Convex cuts: candidate instruction-set extensions.

use std::fmt;

use ise_graph::{CutLike, DenseNodeSet, InterfaceGraph, NodeId};

use crate::config::Constraints;
use crate::context::EnumContext;

/// A cut of the data-flow graph: a candidate custom instruction (Definition 1/2).
///
/// A `Cut` stores the member vertices (the *body* `S`), the derived input vertices
/// `I(S)` (producers of values consumed by the cut but computed outside it) and the
/// derived output vertices `O(S)` (members whose value is consumed outside the cut,
/// including externally-visible values). Inputs and outputs are stored sorted, so two
/// cuts compare equal iff they are the same subgraph.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{Cut, EnumContext};
/// use ise_graph::{DenseNodeSet, DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let x = b.node(Operation::Shl, &[n]);
/// let ctx = EnumContext::new(b.build()?);
///
/// let body = DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), [n, x]);
/// let cut = Cut::from_body(&ctx, body);
/// assert_eq!(cut.inputs(), &[a, c]);
/// assert_eq!(cut.outputs(), &[x]);
/// assert!(cut.is_convex(&ctx));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cut {
    body: DenseNodeSet,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
}

/// Allocation-free identity key of a [`Cut`], borrowing the packed words of its body
/// bit set (see [`Cut::key`]).
///
/// Keys of cuts from the *same* graph compare equal iff the cuts are the same subgraph;
/// comparing keys across different graphs is meaningless (indices refer to different
/// vertices).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct CutKey<'a> {
    words: &'a [u64],
}

/// The reason a candidate cut was rejected by [`Cut::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CutRejection {
    /// The body is empty.
    Empty,
    /// The body contains a forbidden vertex (memory operation, external input, or the
    /// artificial source/sink).
    Forbidden(NodeId),
    /// The cut needs more register-file read ports than allowed.
    TooManyInputs(usize),
    /// The cut needs more register-file write ports than allowed.
    TooManyOutputs(usize),
    /// The cut is not convex.
    NotConvex,
    /// The cut violates the paper's input/output technical condition (§3): some input
    /// is reachable from the root only through other inputs.
    IoCondition(NodeId),
    /// The cut is not connected but only connected cuts were requested.
    Disconnected,
    /// The cut exceeds the configured depth limit.
    TooDeep(u32),
}

impl Cut {
    /// Builds a cut from its body, deriving the input and output sets.
    ///
    /// Inputs are predecessors (in the original graph) of body members that are not
    /// themselves members; outputs are members with a successor outside the body *in
    /// the augmented graph*, so that externally-visible values (members of `Oext`,
    /// which feed the artificial sink) count against the output-port budget.
    pub fn from_body(ctx: &EnumContext, body: DenseNodeSet) -> Self {
        let rooted = ctx.rooted();
        debug_assert_eq!(body.capacity(), rooted.num_nodes());
        let mut input_set = rooted.node_set();
        let mut outputs = Vec::new();
        for v in body.iter() {
            // Inputs: real operand producers outside the cut (skip the artificial
            // source feeding roots).
            for &p in rooted.preds(v) {
                if !body.contains(p) && p != rooted.source() {
                    input_set.insert(p);
                }
            }
            // Outputs: any consumer outside the cut, including the artificial sink.
            if rooted.succs(v).iter().any(|s| !body.contains(*s)) {
                outputs.push(v);
            }
        }
        Cut {
            body,
            inputs: input_set.to_vec(),
            outputs,
        }
    }

    /// The member vertices of the cut.
    pub fn body(&self) -> &DenseNodeSet {
        &self.body
    }

    /// Number of member vertices.
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// Whether the cut has no members.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Whether `node` is a member of the cut.
    pub fn contains(&self, node: NodeId) -> bool {
        self.body.contains(node)
    }

    /// The input vertices `I(S)`, sorted by node id.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// The output vertices `O(S)`, sorted by node id.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// A compact, allocation-free key identifying the cut within its graph.
    ///
    /// The key borrows the packed words of the body bit set: two cuts of the same graph
    /// have equal keys iff they are the same subgraph (and by Theorem 2 a convex cut is
    /// equally identified by its input/output sets, which earlier revisions used as the
    /// key at the cost of two vector clones per call). Keys are `Ord` and `Hash`
    /// (hashed one 64-bit word at a time), so they can be sorted and set-collected for
    /// cross-algorithm comparisons.
    pub fn key(&self) -> CutKey<'_> {
        CutKey {
            words: self.body.words(),
        }
    }

    /// Exports the cut as its interface-labeled subgraph — the reporting-path hook
    /// used by canonical-form grouping (`ise-canon`): operations, operand order and
    /// input/output roles over local ids, independent of the host block's node ids.
    ///
    /// The extraction re-derives the interface from the body on the original graph;
    /// in debug builds it is asserted to agree with the cut's own (sink-augmented)
    /// input/output derivation.
    pub fn interface_graph(&self, ctx: &EnumContext) -> InterfaceGraph {
        let graph = InterfaceGraph::extract(ctx.dfg(), &self.body);
        debug_assert_eq!(
            (0..graph.num_inputs())
                .map(|i| graph.original(i))
                .collect::<Vec<_>>(),
            self.inputs,
            "interface extraction must agree with the cut's input derivation"
        );
        debug_assert_eq!(
            (graph.num_inputs()..graph.len())
                .filter(|&v| graph.is_output(v))
                .map(|v| graph.original(v))
                .collect::<Vec<_>>(),
            self.outputs,
            "interface extraction must agree with the cut's output derivation"
        );
        graph
    }

    /// Whether the cut is convex (Definition 2): no path between two members leaves the
    /// cut.
    ///
    /// Checked through an equivalent formulation that is linear in the (small) input
    /// set instead of the body: a body is convex iff no derived input is reachable
    /// from a body member. (If a path between members leaves the cut, the last outside
    /// vertex before re-entry is a predecessor of a member — an input — reachable from
    /// the first member; conversely a member-reachable input `w` yields the escaping
    /// path member → `w` → member, since `w` feeds a member by definition.)
    pub fn is_convex(&self, ctx: &EnumContext) -> bool {
        self.inputs
            .iter()
            .all(|&w| ctx.reach().ancestors(w).is_disjoint(&self.body))
    }

    /// Whether the cut satisfies the paper's technical input condition (§3): for every
    /// input `w` there is a path from the root to `w` that avoids all other inputs (so
    /// that `w` genuinely feeds the cut rather than only other inputs).
    ///
    /// Returns the first offending input on failure.
    pub fn io_condition_violation(&self, ctx: &EnumContext) -> Option<NodeId> {
        let rooted = ctx.rooted();
        let input_set = DenseNodeSet::from_nodes(rooted.num_nodes(), self.inputs.iter().copied());
        // One DFS per input, reusing the visited set and stack across inputs.
        let mut visited = rooted.node_set();
        let mut stack = Vec::new();
        'inputs: for &w in &self.inputs {
            // DFS from the source avoiding every other input; succeed if w is reached.
            visited.clear();
            visited.insert(rooted.source());
            stack.clear();
            stack.push(rooted.source());
            while let Some(v) = stack.pop() {
                for &s in rooted.succs(v) {
                    if s == w {
                        continue 'inputs;
                    }
                    if !input_set.contains(s) && visited.insert(s) {
                        stack.push(s);
                    }
                }
            }
            return Some(w);
        }
        None
    }

    /// Whether the cut is connected (Definition 4): it has a single output, or every
    /// pair of outputs shares an input that reaches both.
    pub fn is_connected(&self, ctx: &EnumContext) -> bool {
        if self.outputs.len() <= 1 {
            return true;
        }
        for (i, &o1) in self.outputs.iter().enumerate() {
            for &o2 in &self.outputs[i + 1..] {
                let shared = self
                    .inputs
                    .iter()
                    .any(|&inp| ctx.reach().reaches(inp, o1) && ctx.reach().reaches(inp, o2));
                if !shared {
                    return false;
                }
            }
        }
        true
    }

    /// The depth of the cut: the number of edges on the longest path that stays inside
    /// the body. Single-node cuts have depth 0.
    pub fn depth(&self, ctx: &EnumContext) -> u32 {
        let rooted = ctx.rooted();
        let mut depth = vec![0u32; rooted.num_nodes()];
        let mut max = 0;
        for &v in rooted.topological_order() {
            if !self.body.contains(v) {
                continue;
            }
            for &s in rooted.succs(v) {
                if self.body.contains(s) {
                    depth[s.index()] = depth[s.index()].max(depth[v.index()] + 1);
                    max = max.max(depth[s.index()]);
                }
            }
        }
        max
    }

    /// Checks the cut against the full validity definition of §3: non-empty, free of
    /// forbidden vertices, within the input/output port budget, convex, satisfying the
    /// technical input condition, and — if requested by `constraints` — connected and
    /// within the depth limit.
    ///
    /// When `require_io_condition` is `false` the technical condition is not enforced;
    /// this is how the exhaustive baseline of Pozzi et al. defines validity.
    ///
    /// # Errors
    ///
    /// Returns the first [`CutRejection`] encountered.
    pub fn validate(
        &self,
        ctx: &EnumContext,
        constraints: &Constraints,
        require_io_condition: bool,
    ) -> Result<(), CutRejection> {
        if self.body.is_empty() {
            return Err(CutRejection::Empty);
        }
        for v in self.body.iter() {
            if ctx.rooted().is_forbidden(v) {
                return Err(CutRejection::Forbidden(v));
            }
        }
        if self.inputs.len() > constraints.max_inputs() {
            return Err(CutRejection::TooManyInputs(self.inputs.len()));
        }
        if self.outputs.len() > constraints.max_outputs() {
            return Err(CutRejection::TooManyOutputs(self.outputs.len()));
        }
        if !self.is_convex(ctx) {
            return Err(CutRejection::NotConvex);
        }
        if require_io_condition {
            if let Some(w) = self.io_condition_violation(ctx) {
                return Err(CutRejection::IoCondition(w));
            }
        }
        if constraints.is_connected_only() && !self.is_connected(ctx) {
            return Err(CutRejection::Disconnected);
        }
        if let Some(limit) = constraints.max_depth() {
            let d = self.depth(ctx);
            if d > limit {
                return Err(CutRejection::TooDeep(d));
            }
        }
        Ok(())
    }
}

impl CutLike for Cut {
    fn body_set(&self) -> &DenseNodeSet {
        &self.body
    }

    fn input_nodes(&self) -> &[NodeId] {
        &self.inputs
    }

    fn output_nodes(&self) -> &[NodeId] {
        &self.outputs
    }
}

impl fmt::Debug for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cut")
            .field("body", &self.body)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish()
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cut of {} nodes, {} inputs, {} outputs",
            self.len(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DfgBuilder, Operation};

    /// a, c inputs; n = a + c; x = n << 1; y = n - c; z = x ^ y; store(z)
    fn sample() -> (EnumContext, [NodeId; 7]) {
        let mut b = DfgBuilder::new("cut");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Shl, &[n]);
        let y = b.node(Operation::Sub, &[n, c]);
        let z = b.node(Operation::Xor, &[x, y]);
        let st = b.node(Operation::Store, &[z]);
        let ctx = EnumContext::new(b.build().unwrap());
        (ctx, [a, c, n, x, y, z, st])
    }

    fn cut_of(ctx: &EnumContext, nodes: &[NodeId]) -> Cut {
        Cut::from_body(
            ctx,
            DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), nodes.iter().copied()),
        )
    }

    #[test]
    fn inputs_and_outputs_are_derived() {
        let (ctx, [a, c, n, x, y, z, _]) = sample();
        let cut = cut_of(&ctx, &[n, x, y, z]);
        assert_eq!(cut.inputs(), &[a, c]);
        assert_eq!(cut.outputs(), &[z]);
        assert_eq!(cut.len(), 4);
        assert!(cut.contains(x));
        assert!(!cut.contains(a));
        assert!(!cut.is_empty());
    }

    #[test]
    fn internal_fanout_to_outside_creates_outputs() {
        let (ctx, [a, c, n, x, _, _, _]) = sample();
        let cut = cut_of(&ctx, &[n, x]);
        // n also feeds y, which is outside, so n is an output too.
        assert_eq!(cut.outputs(), &[n, x]);
        assert_eq!(cut.inputs(), &[a, c]);
    }

    #[test]
    fn external_outputs_count_via_the_sink() {
        let mut b = DfgBuilder::new("liveout");
        let a = b.input("a");
        let n = b.node(Operation::Not, &[a]);
        let m = b.node(Operation::Add, &[n, a]);
        b.mark_output(n); // n is live out of the block
        let ctx = EnumContext::new(b.build().unwrap());
        let cut = cut_of(&ctx, &[n, m]);
        assert_eq!(
            cut.outputs(),
            &[n, m],
            "live-out n must occupy a write port"
        );
    }

    #[test]
    fn convexity_detects_holes() {
        let (ctx, [_, _, n, x, y, z, _]) = sample();
        assert!(cut_of(&ctx, &[n, x, y, z]).is_convex(&ctx));
        assert!(cut_of(&ctx, &[n, x]).is_convex(&ctx));
        // n and z without the middle layer is not convex: n -> x -> z leaves the cut.
        assert!(!cut_of(&ctx, &[n, z]).is_convex(&ctx));
        // x and y are incomparable, so {x, y} is convex even though disconnected-ish.
        assert!(cut_of(&ctx, &[x, y]).is_convex(&ctx));
    }

    #[test]
    fn io_condition_flags_inputs_hidden_behind_inputs() {
        // r -> i -> x -> z -> y -> o1; i -> y   (z's only root path goes through i)
        let mut b = DfgBuilder::new("hidden");
        let i = b.input("i");
        let x = b.node(Operation::Not, &[i]);
        let z = b.node(Operation::Shl, &[x]);
        let y = b.node(Operation::Add, &[z, i]);
        let o1 = b.node(Operation::Xor, &[y]);
        let ctx = EnumContext::new(b.build().unwrap());
        let cut = cut_of(&ctx, &[y, o1]);
        assert_eq!(cut.inputs(), &[i, z]);
        // Every source path to z goes through the other input i.
        assert_eq!(cut.io_condition_violation(&ctx), Some(z));
        // The full cone has no such problem.
        let full = cut_of(&ctx, &[x, z, y, o1]);
        assert_eq!(full.io_condition_violation(&ctx), None);
    }

    #[test]
    fn connectedness_requires_a_shared_input() {
        let (ctx, [_, _, _n, x, y, _, _]) = sample();
        // x and y share the input n.
        let cut = cut_of(&ctx, &[x, y]);
        assert!(cut.is_connected(&ctx));
        // Two unrelated single-node cuts in one: build a graph with two components.
        let mut b = DfgBuilder::new("two");
        let a1 = b.input("a1");
        let a2 = b.input("a2");
        let m1 = b.node(Operation::Not, &[a1]);
        let m2 = b.node(Operation::Not, &[a2]);
        let ctx2 = EnumContext::new(b.build().unwrap());
        let cut2 = cut_of(&ctx2, &[m1, m2]);
        assert!(!cut2.is_connected(&ctx2));
        assert!(cut_of(&ctx2, &[m1]).is_connected(&ctx2));
    }

    #[test]
    fn depth_measures_internal_paths() {
        let (ctx, [_, _, n, x, y, z, _]) = sample();
        assert_eq!(cut_of(&ctx, &[n]).depth(&ctx), 0);
        assert_eq!(cut_of(&ctx, &[n, x]).depth(&ctx), 1);
        assert_eq!(cut_of(&ctx, &[n, x, y, z]).depth(&ctx), 2);
        assert_eq!(cut_of(&ctx, &[x, y]).depth(&ctx), 0);
    }

    #[test]
    fn validate_applies_every_rule() {
        let (ctx, [_, _, n, x, y, z, st]) = sample();
        let four = Constraints::new(4, 2).unwrap();
        assert!(cut_of(&ctx, &[n, x, y, z])
            .validate(&ctx, &four, true)
            .is_ok());

        let narrow = Constraints::new(1, 2).unwrap();
        assert_eq!(
            cut_of(&ctx, &[n, x, y, z]).validate(&ctx, &narrow, true),
            Err(CutRejection::TooManyInputs(2))
        );
        let one_out = Constraints::new(4, 1).unwrap();
        assert_eq!(
            cut_of(&ctx, &[n, x]).validate(&ctx, &one_out, true),
            Err(CutRejection::TooManyOutputs(2))
        );
        assert_eq!(
            cut_of(&ctx, &[n, z]).validate(&ctx, &four, true),
            Err(CutRejection::NotConvex)
        );
        assert_eq!(
            cut_of(&ctx, &[st]).validate(&ctx, &four, true),
            Err(CutRejection::Forbidden(st))
        );
        let empty = Cut::from_body(&ctx, ctx.rooted().node_set());
        assert_eq!(empty.validate(&ctx, &four, true), Err(CutRejection::Empty));
        let deep = Constraints::new(4, 2).unwrap().with_max_depth(1);
        assert_eq!(
            cut_of(&ctx, &[n, x, y, z]).validate(&ctx, &deep, true),
            Err(CutRejection::TooDeep(2))
        );
    }

    #[test]
    fn validate_connectedness_only_when_requested() {
        let mut b = DfgBuilder::new("two");
        let a1 = b.input("a1");
        let a2 = b.input("a2");
        let m1 = b.node(Operation::Not, &[a1]);
        let m2 = b.node(Operation::Not, &[a2]);
        let ctx = EnumContext::new(b.build().unwrap());
        let cut = Cut::from_body(
            &ctx,
            DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), [m1, m2]),
        );
        let free = Constraints::new(4, 2).unwrap();
        assert!(cut.validate(&ctx, &free, true).is_ok());
        let connected = free.clone().connected_only(true);
        assert_eq!(
            cut.validate(&ctx, &connected, true),
            Err(CutRejection::Disconnected)
        );
    }

    #[test]
    fn interface_graph_export_matches_the_cut_interface() {
        let (ctx, [a, c, n, x, y, z, _]) = sample();
        for body in [vec![n, x, y, z], vec![n, x], vec![x, y]] {
            let cut = cut_of(&ctx, &body);
            let g = cut.interface_graph(&ctx);
            assert_eq!(g.num_inputs(), cut.inputs().len());
            assert_eq!(g.num_body(), cut.len());
            assert_eq!(g.num_outputs(), cut.outputs().len());
        }
        // Externally visible members count as outputs through the sink on the cut
        // side and through Oext on the interface side.
        let _ = (a, c, z);
    }

    #[test]
    fn cut_like_views_match_the_accessors() {
        let (ctx, [_, _, n, x, _, _, _]) = sample();
        let cut = cut_of(&ctx, &[n, x]);
        assert_eq!(CutLike::body_set(&cut), cut.body());
        assert_eq!(CutLike::input_nodes(&cut), cut.inputs());
        assert_eq!(CutLike::output_nodes(&cut), cut.outputs());
    }

    #[test]
    fn key_and_display() {
        let (ctx, [_, _, n, x, y, _, _]) = sample();
        let cut = cut_of(&ctx, &[n, x]);
        let same = cut_of(&ctx, &[n, x]);
        let other = cut_of(&ctx, &[n, y]);
        assert_eq!(cut.key(), same.key(), "equal bodies give equal keys");
        assert_ne!(
            cut.key(),
            other.key(),
            "different bodies give different keys"
        );
        // Keys are ordered and hashable without allocating.
        let mut keys = [other.key(), cut.key()];
        keys.sort();
        let set: std::collections::HashSet<_> = keys.iter().copied().collect();
        assert_eq!(set.len(), 2);
        let text = cut.to_string();
        assert!(text.contains("2 nodes"));
        assert!(format!("{cut:?}").contains("inputs"));
    }
}
