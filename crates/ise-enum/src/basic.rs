//! The basic polynomial-time enumeration (§5.1, Figure 2 of the paper).
//!
//! For every admissible combination of output vertices (at most `Nout`, pairwise
//! unrelated by postdominance), the algorithm couples each output with one of its
//! generalized dominators (at most `Nin` vertices in total across all outputs), rebuilds
//! the unique cut identified by those inputs and outputs (Theorems 2/3) and validates
//! it. The search space is `O(n^(Nin+Nout))` candidate combinations with an `O(n)`
//! reconstruction each, giving the `O(n^(Nin+Nout+1))` bound of the paper.
//!
//! This implementation favours clarity over speed: the generalized dominators of every
//! candidate output are enumerated eagerly with
//! [`ise_dominators::multi::enumerate_generalized_dominators`], candidates are rebuilt
//! with the backward closure and reported through the shared [`crate::engine`], which
//! de-duplicates them on their packed body key. It is the *reference* enumerator used
//! to cross-check the incremental algorithm of §5.2; use [`crate::incremental_cuts`]
//! for large blocks.

use std::collections::HashMap;

use ise_dominators::multi::enumerate_generalized_dominators;
use ise_dominators::Forward;
use ise_graph::{DenseNodeSet, NodeId};

use crate::cone::cone;
use crate::config::Constraints;
use crate::context::EnumContext;
use crate::engine::{self, Enumerator, SearchState};
use crate::result::Enumeration;

/// Enumerates all valid cuts with the basic polynomial algorithm of Figure 2.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{basic_cuts, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let c = b.input("c");
/// let n = b.node(Operation::Add, &[a, c]);
/// let x = b.node(Operation::Shl, &[n]);
/// let ctx = EnumContext::new(b.build()?);
/// let result = basic_cuts(&ctx, &Constraints::new(2, 1)?);
/// assert!(result.cuts.iter().any(|cut| cut.len() == 2));
/// # Ok(())
/// # }
/// ```
pub fn basic_cuts(ctx: &EnumContext, constraints: &Constraints) -> Enumeration {
    let mut enumerator = BasicEnumerator::new(ctx);
    engine::run(&mut enumerator, ctx, constraints, None)
}

/// The Figure 2 search as an [`Enumerator`] over the shared engine.
pub struct BasicEnumerator<'a> {
    ctx: &'a EnumContext,
    /// Cache of the generalized dominators (up to `Nin` vertices) of each output.
    dominators: HashMap<NodeId, Vec<Vec<NodeId>>>,
}

impl<'a> BasicEnumerator<'a> {
    /// Creates the enumerator for one analysis context.
    pub fn new(ctx: &'a EnumContext) -> Self {
        BasicEnumerator {
            ctx,
            dominators: HashMap::new(),
        }
    }

    /// Picks output combinations in increasing vertex order, skipping pairs related by
    /// postdominance (§5.1: such pairs can never both be outputs of a convex cut).
    fn choose_outputs(
        &mut self,
        state: &mut SearchState<'_>,
        candidates: &[NodeId],
        start: usize,
        outputs: &mut Vec<NodeId>,
    ) {
        if !outputs.is_empty() {
            self.couple_with_inputs(state, outputs);
        }
        if outputs.len() == state.constraints().max_outputs() {
            return;
        }
        for idx in start..candidates.len() {
            let o = candidates[idx];
            state.stats_mut().search_nodes += 1;
            let postdom = self.ctx.postdominator_tree();
            if outputs
                .iter()
                .any(|&p| postdom.dominates(p, o) || postdom.dominates(o, p))
            {
                state.stats_mut().pruned_output_output += 1;
                continue;
            }
            outputs.push(o);
            self.choose_outputs(state, candidates, idx + 1, outputs);
            outputs.pop();
        }
    }

    /// For a fixed output set, couples every output with each of its generalized
    /// dominators (respecting the shared `Nin` budget) and validates the induced cut.
    fn couple_with_inputs(&mut self, state: &mut SearchState<'_>, outputs: &[NodeId]) {
        let n = self.ctx.rooted().num_nodes();
        let mut inputs = DenseNodeSet::new(n);
        self.assign_dominator(state, outputs, 0, &mut inputs, 0);
    }

    fn assign_dominator(
        &mut self,
        state: &mut SearchState<'_>,
        outputs: &[NodeId],
        position: usize,
        inputs: &mut DenseNodeSet,
        used: usize,
    ) {
        if position == outputs.len() {
            self.check_candidate(state, inputs, outputs);
            return;
        }
        let output = outputs[position];
        let dominators = self.dominators_of(state, output).to_vec();
        for dominator in dominators {
            // Respect the shared input budget: count only the vertices not already used
            // by earlier outputs.
            let fresh: Vec<NodeId> = dominator
                .iter()
                .copied()
                .filter(|&d| !inputs.contains(d))
                .collect();
            if used + fresh.len() > state.constraints().max_inputs() {
                continue;
            }
            for &d in &fresh {
                inputs.insert(d);
            }
            self.assign_dominator(state, outputs, position + 1, inputs, used + fresh.len());
            for &d in &fresh {
                inputs.remove(d);
            }
        }
    }

    fn dominators_of(&mut self, state: &mut SearchState<'_>, output: NodeId) -> &Vec<Vec<NodeId>> {
        if !self.dominators.contains_key(&output) {
            let doms = enumerate_generalized_dominators(
                &Forward(self.ctx.rooted()),
                output,
                state.constraints().max_inputs(),
                self.ctx.artificial(),
            );
            state.stats_mut().dominator_runs += 1;
            self.dominators.insert(output, doms);
        }
        &self.dominators[&output]
    }

    fn check_candidate(
        &mut self,
        state: &mut SearchState<'_>,
        inputs: &DenseNodeSet,
        outputs: &[NodeId],
    ) {
        let body = match cone(self.ctx.rooted(), inputs, outputs, false) {
            Ok(body) => body,
            Err(_) => unreachable!("cone never aborts when abort_on_forbidden is false"),
        };
        state.report_deduped(body, true);
    }
}

impl Enumerator for BasicEnumerator<'_> {
    fn name(&self) -> &'static str {
        "basic"
    }

    fn search(&mut self, state: &mut SearchState<'_>) {
        let candidates = self.ctx.candidate_outputs();
        let mut outputs = Vec::new();
        self.choose_outputs(state, candidates, 0, &mut outputs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{Cut, CutKey};
    use crate::exhaustive::exhaustive_cuts;
    use ise_graph::{DfgBuilder, Operation};

    fn keys(result: &Enumeration) -> Vec<CutKey<'_>> {
        let mut keys: Vec<_> = result.cuts.iter().map(Cut::key).collect();
        keys.sort();
        keys
    }

    /// The Figure 1 graph of the paper.
    fn figure1() -> EnumContext {
        let mut b = DfgBuilder::new("figure1");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let n = b.named_node(Operation::Add, &[a, bb], Some("N"));
        let x = b.named_node(Operation::Mul, &[n, bb], Some("X"));
        let y = b.named_node(Operation::Sub, &[n, c], Some("Y"));
        b.mark_output(x);
        b.mark_output(y);
        EnumContext::new(b.build().unwrap())
    }

    #[test]
    fn matches_exhaustive_on_figure1() {
        let ctx = figure1();
        for (nin, nout) in [(1, 1), (2, 1), (2, 2), (3, 2), (4, 2)] {
            let constraints = Constraints::new(nin, nout).unwrap();
            let fast = basic_cuts(&ctx, &constraints);
            let oracle = exhaustive_cuts(&ctx, &constraints, true);
            assert_eq!(
                keys(&fast),
                keys(&oracle),
                "mismatch for Nin={nin}, Nout={nout}"
            );
        }
    }

    #[test]
    fn figure1_three_input_two_output_cut_is_found() {
        // Figure 1(d): the valid 2-output cut {N, X, Y} with inputs {A, B, C}.
        let ctx = figure1();
        let result = basic_cuts(&ctx, &Constraints::new(3, 2).unwrap());
        let expected_inputs = vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)];
        let expected_outputs = vec![NodeId::new(4), NodeId::new(5)];
        assert!(
            result
                .cuts
                .iter()
                .any(|c| c.inputs() == expected_inputs && c.outputs() == expected_outputs),
            "the Figure 1(d) cut must be enumerated"
        );
    }

    #[test]
    fn respects_forbidden_nodes() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let c = b.input("c");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, c]);
        let _y = b.node(Operation::Shl, &[x]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(2, 2).unwrap();
        let result = basic_cuts(&ctx, &constraints);
        assert!(result.cuts.iter().all(|cut| !cut.contains(ld)));
        let oracle = exhaustive_cuts(&ctx, &constraints, true);
        assert_eq!(keys(&result), keys(&oracle));
    }

    #[test]
    fn stats_are_populated() {
        let ctx = figure1();
        let result = basic_cuts(&ctx, &Constraints::new(4, 2).unwrap());
        assert_eq!(result.stats.valid_cuts, result.cuts.len());
        assert!(result.stats.candidates_checked >= result.cuts.len());
        assert!(result.stats.dominator_runs > 0);
        assert!(result.stats.search_nodes > 0);
    }
}
