//! Constraints and pruning configuration for cut enumeration.

use std::error::Error;
use std::fmt;

/// Microarchitectural constraints on a valid cut (§3 of the paper).
///
/// `max_inputs` (`Nin`) models the number of read ports of the register file available
/// to a custom instruction and bounds `|I(S)|`; `max_outputs` (`Nout`) models the write
/// ports and bounds `|O(S)|`. Optionally the search can be restricted to *connected*
/// cuts (Definition 4) and to cuts whose depth (longest path, in operations) does not
/// exceed a bound, as done by accelerator styles such as CCA (§5.3).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::Constraints;
///
/// let c = Constraints::new(4, 2)?.connected_only(true);
/// assert_eq!(c.max_inputs(), 4);
/// assert_eq!(c.max_outputs(), 2);
/// assert!(c.is_connected_only());
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Constraints {
    max_inputs: usize,
    max_outputs: usize,
    connected: bool,
    max_depth: Option<u32>,
}

impl Constraints {
    /// Creates a constraint set with `max_inputs` read ports and `max_outputs` write
    /// ports.
    ///
    /// # Errors
    ///
    /// Returns [`ConstraintError`] if either bound is zero (a cut always has at least
    /// one input and one output).
    pub fn new(max_inputs: usize, max_outputs: usize) -> Result<Self, ConstraintError> {
        if max_inputs == 0 {
            return Err(ConstraintError::ZeroInputs);
        }
        if max_outputs == 0 {
            return Err(ConstraintError::ZeroOutputs);
        }
        Ok(Constraints {
            max_inputs,
            max_outputs,
            connected: false,
            max_depth: None,
        })
    }

    /// The input-port constraint `Nin`.
    pub fn max_inputs(&self) -> usize {
        self.max_inputs
    }

    /// The output-port constraint `Nout`.
    pub fn max_outputs(&self) -> usize {
        self.max_outputs
    }

    /// Restricts (or lifts the restriction of) the search to connected cuts
    /// (Definition 4: any two outputs share an input).
    #[must_use]
    pub fn connected_only(mut self, connected: bool) -> Self {
        self.connected = connected;
        self
    }

    /// Whether only connected cuts are accepted.
    pub fn is_connected_only(&self) -> bool {
        self.connected
    }

    /// Restricts valid cuts to a maximum operation depth (longest internal path, in
    /// edges, from any input-fed node to any output), as done for depth-limited
    /// accelerators (§5.3).
    #[must_use]
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// The depth limit, if any.
    pub fn max_depth(&self) -> Option<u32> {
        self.max_depth
    }

    /// A stable serialization of every constraint field, for content-addressed cache
    /// keys (see [`crate::EngineOptions::cache_token`] for the contract).
    ///
    /// # Example
    ///
    /// ```
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// use ise_enum::Constraints;
    ///
    /// let c = Constraints::new(4, 2)?;
    /// assert_eq!(c.cache_token(), "nin=4;nout=2;connected=false;depth=none");
    /// assert_ne!(c.cache_token(), c.clone().connected_only(true).cache_token());
    /// # Ok(())
    /// # }
    /// ```
    pub fn cache_token(&self) -> String {
        let depth = match self.max_depth {
            None => "none".to_string(),
            Some(d) => d.to_string(),
        };
        format!(
            "nin={};nout={};connected={};depth={depth}",
            self.max_inputs, self.max_outputs, self.connected
        )
    }
}

/// Error returned by [`Constraints::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConstraintError {
    /// `max_inputs` was zero.
    ZeroInputs,
    /// `max_outputs` was zero.
    ZeroOutputs,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::ZeroInputs => write!(f, "input constraint must be at least 1"),
            ConstraintError::ZeroOutputs => write!(f, "output constraint must be at least 1"),
        }
    }
}

impl Error for ConstraintError {}

/// Individually switchable pruning techniques of §5.3.
///
/// All prunings are enabled by default; the ablation experiment (E4 in DESIGN.md)
/// toggles them one at a time. None of them changes which cuts are *reported valid*;
/// they only reduce the portion of the search space that is explored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruningConfig {
    /// Output–output pruning: never choose an output that is an ancestor of an
    /// already-chosen output (such cuts are discovered through internal outputs), and
    /// never pair outputs related by postdominance.
    pub output_output: bool,
    /// Connectedness-driven pruning of new outputs when the search is restricted to
    /// connected cuts.
    pub connectedness: bool,
    /// Abort building the cut body as soon as a forbidden vertex enters it.
    pub build_s: bool,
    /// Output–input pruning: discard candidate inputs whose every path to the current
    /// output crosses a forbidden vertex.
    pub output_input: bool,
    /// Input–input pruning: discard seed sets in which one input postdominates another.
    pub input_input: bool,
    /// Dominator–input pruning: discard seed candidates that are already dominated by
    /// the current seed (they could never satisfy the technical input condition of §3).
    /// This is a lossless reformulation of the paper's simplified dominator–input test;
    /// see DESIGN.md for the rationale.
    pub dominator_input: bool,
}

impl Default for PruningConfig {
    fn default() -> Self {
        PruningConfig::all()
    }
}

impl PruningConfig {
    /// All pruning techniques enabled (the paper's configuration).
    pub fn all() -> Self {
        PruningConfig {
            output_output: true,
            connectedness: true,
            build_s: true,
            output_input: true,
            input_input: true,
            dominator_input: true,
        }
    }

    /// Every pruning technique disabled; the algorithm still has polynomial complexity
    /// but explores many more candidates.
    pub fn none() -> Self {
        PruningConfig {
            output_output: false,
            connectedness: false,
            build_s: false,
            output_input: false,
            input_input: false,
            dominator_input: false,
        }
    }

    /// Returns `all()` with exactly one technique disabled, keyed by its name; used by
    /// the ablation harness. Valid names: `output_output`, `connectedness`, `build_s`,
    /// `output_input`, `input_input`, `dominator_input`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not one of the technique names above.
    pub fn all_except(name: &str) -> Self {
        let mut p = PruningConfig::all();
        match name {
            "output_output" => p.output_output = false,
            "connectedness" => p.connectedness = false,
            "build_s" => p.build_s = false,
            "output_input" => p.output_input = false,
            "input_input" => p.input_input = false,
            "dominator_input" => p.dominator_input = false,
            other => panic!("unknown pruning technique {other:?}"),
        }
        p
    }

    /// Names of every pruning technique, in a stable order.
    pub fn technique_names() -> &'static [&'static str] {
        &[
            "output_output",
            "connectedness",
            "build_s",
            "output_input",
            "input_input",
            "dominator_input",
        ]
    }

    /// A stable serialization of the enabled techniques, for content-addressed cache
    /// keys (see [`crate::EngineOptions::cache_token`] for the contract). Prunings
    /// never change which cuts are valid, but they do change the search statistics a
    /// budgeted run reports — so they belong in any key over reported results.
    ///
    /// # Example
    ///
    /// ```
    /// use ise_enum::PruningConfig;
    ///
    /// assert_eq!(PruningConfig::all().cache_token(), "prune=111111");
    /// assert_eq!(PruningConfig::none().cache_token(), "prune=000000");
    /// ```
    pub fn cache_token(&self) -> String {
        let bits = [
            self.output_output,
            self.connectedness,
            self.build_s,
            self.output_input,
            self.input_input,
            self.dominator_input,
        ];
        let mask: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        format!("prune={mask}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constraints_round_trip() {
        let c = Constraints::new(4, 2).unwrap();
        assert_eq!(c.max_inputs(), 4);
        assert_eq!(c.max_outputs(), 2);
        assert!(!c.is_connected_only());
        assert_eq!(c.max_depth(), None);
        let c = c.connected_only(true).with_max_depth(3);
        assert!(c.is_connected_only());
        assert_eq!(c.max_depth(), Some(3));
    }

    #[test]
    fn zero_ports_are_rejected() {
        assert_eq!(
            Constraints::new(0, 2).unwrap_err(),
            ConstraintError::ZeroInputs
        );
        assert_eq!(
            Constraints::new(3, 0).unwrap_err(),
            ConstraintError::ZeroOutputs
        );
        assert!(ConstraintError::ZeroInputs.to_string().contains("input"));
    }

    #[test]
    fn pruning_defaults_enable_everything() {
        let p = PruningConfig::default();
        assert!(p.output_output && p.connectedness && p.build_s);
        assert!(p.output_input && p.input_input && p.dominator_input);
        let q = PruningConfig::none();
        assert!(!q.output_output && !q.input_input);
    }

    #[test]
    fn all_except_disables_exactly_one() {
        for &name in PruningConfig::technique_names() {
            let p = PruningConfig::all_except(name);
            let disabled = [
                p.output_output,
                p.connectedness,
                p.build_s,
                p.output_input,
                p.input_input,
                p.dominator_input,
            ]
            .iter()
            .filter(|&&b| !b)
            .count();
            assert_eq!(disabled, 1, "technique {name}");
        }
    }

    #[test]
    #[should_panic(expected = "unknown pruning technique")]
    fn all_except_rejects_unknown_names() {
        let _ = PruningConfig::all_except("turbo");
    }
}
