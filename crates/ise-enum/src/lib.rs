//! Polynomial-time enumeration of convex subgraphs (Instruction Set Extension
//! candidates) under input/output constraints.
//!
//! This crate is the core contribution of the reproduced paper — Bonzini & Pozzi,
//! *Polynomial-Time Subgraph Enumeration for Automated Instruction Set Extension*
//! (DATE 2007). Given the data-flow graph of a basic block, a read-port constraint
//! `Nin`, a write-port constraint `Nout` and a set of forbidden operations, it
//! enumerates every *convex cut* (candidate custom instruction) satisfying the
//! constraints:
//!
//! * [`incremental_cuts`] — the incremental algorithm of §5.2/Figure 3 with the pruning
//!   techniques of §5.3; polynomial `O(n^(Nin+Nout+1))` and the engine meant for real
//!   basic blocks. [`enumerate_cuts`] is the one-call convenience wrapper around it.
//! * [`basic_cuts`] — the basic algorithm of §5.1/Figure 2, used as a readable
//!   reference implementation and cross-check.
//! * [`baseline_cuts`] — the pruned exhaustive search of Atasu/Pozzi et al. (refs.
//!   \[4\]/\[15\]), the exponential-worst-case comparison baseline of the evaluation.
//! * [`exhaustive_cuts`] — a brute-force oracle over all vertex subsets, for testing.
//! * [`estimate_merit`] / [`select_ises`] — the downstream use of the enumeration: a
//!   latency-based speedup model per cut and a greedy selector of non-overlapping
//!   custom instructions (§1/§7 of the paper).
//!
//! All four algorithms drive the shared [`engine`]: an arena-style [`SearchState`]
//! owning the incremental cut-body maintenance of §5.2 (extend on output pick, retract
//! on input pick, undo on backtrack), the packed-key de-duplication table and the
//! search budget, behind one [`Enumerator`] trait. See DESIGN.md for the design
//! history, including the earlier rebuild-per-`CHECK-CUT` pipeline that survives as
//! [`BodyStrategy::Rebuild`] for benchmarking.
//!
//! For large blocks the [`par`] module splits the incremental search at the
//! first-output level into independent tasks — recursively re-split past a
//! node-count threshold, scheduled by a work-stealing pool, and merged through a
//! hash-sharded deterministic reduction — and [`par::parallel_cuts`] reproduces the
//! serial enumeration (cuts and statistics) exactly for any task count, split
//! threshold and thread count on unbudgeted runs. [`DedupMode`] selects the §1.2
//! memory fallback (validate-before-dedup) per run.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use ise_enum::{enumerate_cuts, Constraints};
//! use ise_graph::{DfgBuilder, Operation};
//!
//! // x = (a + b) << 1;  y = (a + b) - c
//! let mut b = DfgBuilder::new("example");
//! let a = b.input("a");
//! let bb = b.input("b");
//! let c = b.input("c");
//! let sum = b.node(Operation::Add, &[a, bb]);
//! let x = b.node(Operation::Shl, &[sum]);
//! let y = b.node(Operation::Sub, &[sum, c]);
//! b.mark_output(x);
//! b.mark_output(y);
//!
//! let result = enumerate_cuts(&b.build()?, &Constraints::new(4, 2)?)?;
//! // The whole block is one of the candidates: inputs {a, b, c}, outputs {x, y}.
//! assert!(result.cuts.iter().any(|cut| cut.len() == 3));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baseline;
mod basic;
mod cone;
mod config;
mod context;
mod cut;
pub mod engine;
mod exhaustive;
mod incremental;
mod merit;
mod obs;
pub mod par;
mod result;
mod selection;
mod stats;

pub use baseline::{baseline_cuts, baseline_cuts_bounded, BaselineEnumerator};
pub use basic::{basic_cuts, BasicEnumerator};
pub use cone::cone;
pub use config::{ConstraintError, Constraints, PruningConfig};
pub use context::EnumContext;
pub use cut::{Cut, CutKey, CutRejection};
pub use engine::{BodyStrategy, DedupMode, EngineOptions, Enumerator, SearchState};
pub use exhaustive::{exhaustive_cuts, ExhaustiveEnumerator, MAX_EXHAUSTIVE_CANDIDATES};
pub use incremental::{
    incremental_cuts, incremental_cuts_bounded, incremental_cuts_obs, incremental_cuts_opts,
    incremental_cuts_with, IncrementalEnumerator,
};
pub use merit::{estimate_merit, Merit};
pub use result::Enumeration;
pub use selection::{select_ises, Selection};
pub use stats::{EnumStats, TaskLoadSummary};

use ise_graph::{Dfg, GraphError};

/// Enumerates every valid cut of `dfg` under `constraints` with the incremental
/// polynomial algorithm and all pruning techniques enabled.
///
/// This is the convenience entry point; to reuse the precomputed analyses across several
/// runs (different constraints, pruning ablations, baselines) build an [`EnumContext`]
/// once and call [`incremental_cuts`] directly.
///
/// # Errors
///
/// Currently never fails for a well-formed [`Dfg`]; the `Result` return type leaves room
/// for future validation (for example, rejecting graphs whose size would make the run
/// infeasible).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{enumerate_cuts, Constraints};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("mac");
/// let a = b.input("a");
/// let x = b.input("x");
/// let acc = b.input("acc");
/// let mul = b.node(Operation::Mul, &[a, x]);
/// let sum = b.node(Operation::Add, &[mul, acc]);
/// b.mark_output(sum);
///
/// let result = enumerate_cuts(&b.build()?, &Constraints::new(3, 1)?)?;
/// assert!(result.cuts.iter().any(|cut| cut.len() == 2), "the MAC itself is a candidate");
/// # Ok(())
/// # }
/// ```
pub fn enumerate_cuts(dfg: &Dfg, constraints: &Constraints) -> Result<Enumeration, GraphError> {
    let ctx = EnumContext::new(dfg.clone());
    Ok(incremental_cuts(&ctx, constraints, &PruningConfig::all()))
}

/// Runs the incremental polynomial enumeration on one graph with explicit pruning and
/// budget settings — the entry point for batch drivers (the `ise` CLI, regression
/// harnesses) that process many independent blocks and do not reuse an
/// [`EnumContext`] across runs.
///
/// The context is built internally and dropped; pass `max_search_nodes` to bound the
/// search on adversarial blocks (the run reports whatever it found within the budget,
/// see [`EnumStats::search_nodes`]). Everything involved is `Send`, so calls on
/// different graphs can run on different threads with no shared state (the engine's
/// `SearchState` is audited for this; see the `engine` module).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{run_on_graph, Constraints, PruningConfig};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("mac");
/// let a = b.input("a");
/// let x = b.input("x");
/// let acc = b.input("acc");
/// let mul = b.node(Operation::Mul, &[a, x]);
/// let sum = b.node(Operation::Add, &[mul, acc]);
/// b.mark_output(sum);
/// let dfg = b.build()?;
///
/// let constraints = Constraints::new(4, 2)?;
/// let result = run_on_graph(&dfg, &constraints, &PruningConfig::all(), None);
/// assert!(result.cuts.iter().any(|cut| cut.contains(mul) && cut.contains(sum)));
///
/// // A zero budget reports nothing but still terminates cleanly.
/// let bounded = run_on_graph(&dfg, &constraints, &PruningConfig::all(), Some(0));
/// assert!(bounded.cuts.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn run_on_graph(
    dfg: &Dfg,
    constraints: &Constraints,
    pruning: &PruningConfig,
    max_search_nodes: Option<usize>,
) -> Enumeration {
    let ctx = EnumContext::new(dfg.clone());
    incremental_cuts_bounded(&ctx, constraints, pruning, max_search_nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ise_graph::{DfgBuilder, Operation};

    #[test]
    fn enumerate_cuts_wraps_the_incremental_engine() {
        let mut b = DfgBuilder::new("wrap");
        let a = b.input("a");
        let c = b.input("c");
        let n = b.node(Operation::Add, &[a, c]);
        let x = b.node(Operation::Shl, &[n]);
        let dfg = b.build().unwrap();
        let constraints = Constraints::new(2, 2).unwrap();
        let wrapped = enumerate_cuts(&dfg, &constraints).unwrap();
        let ctx = EnumContext::new(dfg);
        let direct = incremental_cuts(&ctx, &constraints, &PruningConfig::all());
        assert_eq!(wrapped.cuts.len(), direct.cuts.len());
        assert!(wrapped.cuts.iter().any(|cut| cut.contains(x)));
        assert!(wrapped.cuts.iter().any(|cut| cut.contains(n)));
    }
}
