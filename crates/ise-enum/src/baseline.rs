//! The exhaustive-search baseline of Atasu/Pozzi et al. (refs. [4] and [15] of the
//! paper): every vertex is either in or out of the cut, giving a binary search tree of
//! depth `n` that is pruned with microarchitectural constraint propagation.
//!
//! Following the published algorithm, vertices are decided in topological order
//! (producers before consumers). With that order two constraints can be propagated as
//! soon as a vertex is decided, because they only depend on already-decided vertices:
//!
//! * the *input* count — an excluded vertex becomes an input the moment one of its
//!   consumers is selected, and can never stop being one;
//! * *convexity* — selecting a vertex is illegal if one of its excluded predecessors is
//!   reachable from a selected vertex;
//! * selecting an externally live (`Oext`) vertex immediately consumes a write port.
//!
//! The *output* count for internal vertices, however, depends on successors that have
//! not been decided yet, so it can only be checked once the whole assignment is
//! complete. This is precisely the weakness the literature reports for these
//! algorithms — "performance quickly deteriorates if the custom instructions can have
//! multiple outputs" — and it is what makes tree-shaped fan-out graphs (Figure 4) their
//! `O(1.6^n)` worst case, which the run-time comparison of Figure 5 exposes against the
//! polynomial algorithm.

use ise_graph::{DenseNodeSet, NodeId};

use crate::config::Constraints;
use crate::context::EnumContext;
use crate::engine::{self, Enumerator, SearchState};
use crate::result::Enumeration;

/// Enumerates all valid cuts by pruned exhaustive search over the binary in/out space.
///
/// Validity here follows refs. \[4\]/\[15\]: non-empty, convex, free of forbidden vertices
/// and within the I/O port budget (the technical input condition of §3 is *not*
/// required, so the result is a superset of what the polynomial algorithms report).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{baseline_cuts, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, Operation};
///
/// let mut b = DfgBuilder::new("bb");
/// let a = b.input("a");
/// let x = b.node(Operation::Not, &[a]);
/// let _y = b.node(Operation::Add, &[x, a]);
/// let ctx = EnumContext::new(b.build()?);
/// let result = baseline_cuts(&ctx, &Constraints::new(2, 2)?);
/// assert_eq!(result.cuts.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn baseline_cuts(ctx: &EnumContext, constraints: &Constraints) -> Enumeration {
    baseline_cuts_bounded(ctx, constraints, None)
}

/// Like [`baseline_cuts`] but gives up after `max_search_nodes` decisions, reporting the
/// cuts found so far; the benchmark harness uses this to bound the exponential blow-up
/// on large blocks. `None` means no limit.
pub fn baseline_cuts_bounded(
    ctx: &EnumContext,
    constraints: &Constraints,
    max_search_nodes: Option<usize>,
) -> Enumeration {
    let mut enumerator = BaselineEnumerator::new(ctx);
    engine::run(&mut enumerator, ctx, constraints, max_search_nodes)
}

/// The Atasu/Pozzi-style binary search as an [`Enumerator`] over the shared engine:
/// the cut under construction lives in the engine's body bit set (via the raw
/// accessors), while the per-vertex decision markings stay here.
pub struct BaselineEnumerator<'a> {
    ctx: &'a EnumContext,
    /// Topological order restricted to original vertices: producers first, as in the
    /// published algorithm.
    order: Vec<NodeId>,
    excluded: DenseNodeSet,
    /// For decided excluded vertices: whether they already feed a selected vertex.
    is_input: Vec<bool>,
    /// For decided excluded vertices: whether a selected vertex reaches them through a
    /// chain of excluded vertices (used for the incremental convexity check).
    reached_from_selected: Vec<bool>,
    input_count: usize,
    /// Selected vertices that are externally live (`Oext`) and therefore already known
    /// to consume a write port.
    live_out_count: usize,
}

impl<'a> BaselineEnumerator<'a> {
    /// Creates the enumerator for one analysis context.
    pub fn new(ctx: &'a EnumContext) -> Self {
        let n = ctx.rooted().num_nodes();
        let order: Vec<NodeId> = ctx
            .rooted()
            .topological_order()
            .iter()
            .copied()
            .filter(|&v| !ctx.rooted().is_artificial(v))
            .collect();
        BaselineEnumerator {
            ctx,
            order,
            excluded: DenseNodeSet::new(n),
            is_input: vec![false; n],
            reached_from_selected: vec![false; n],
            input_count: 0,
            live_out_count: 0,
        }
    }

    fn recurse(&mut self, state: &mut SearchState<'_>, idx: usize) {
        if !state.try_enter() {
            return;
        }
        if idx == self.order.len() {
            if !state.body().is_empty() {
                state.report_current(false);
            }
            return;
        }
        let v = self.order[idx];
        let rooted = self.ctx.rooted();

        // Branch 1: exclude v from the cut. Whether v is reachable from the selected
        // region through excluded vertices is final now, because all predecessors of v
        // are already decided.
        {
            let reached = rooted.preds(v).iter().any(|p| {
                state.body().contains(*p)
                    || (self.excluded.contains(*p) && self.reached_from_selected[p.index()])
            });
            self.excluded.insert(v);
            self.reached_from_selected[v.index()] = reached;
            self.recurse(state, idx + 1);
            self.excluded.remove(v);
            self.reached_from_selected[v.index()] = false;
        }

        // Branch 2: include v in the cut (never possible for forbidden vertices).
        if !rooted.is_forbidden(v) {
            // Convexity: a path from a selected vertex through excluded vertices must
            // not re-enter the cut at v.
            let breaks_convexity = rooted
                .preds(v)
                .iter()
                .any(|p| self.excluded.contains(*p) && self.reached_from_selected[p.index()]);
            if breaks_convexity {
                state.stats_mut().pruned_build_s += 1;
                return;
            }
            // Input propagation: excluded predecessors of v become inputs now.
            let mut newly_inputs: Vec<NodeId> = Vec::new();
            for &p in rooted.preds(v) {
                if self.excluded.contains(p) && !self.is_input[p.index()] && p != rooted.source() {
                    self.is_input[p.index()] = true;
                    newly_inputs.push(p);
                }
            }
            self.input_count += newly_inputs.len();
            let is_live_out = rooted.succs(v).contains(&rooted.sink());
            if is_live_out {
                self.live_out_count += 1;
            }
            state.body_insert(v);

            if self.input_count <= state.constraints().max_inputs()
                && self.live_out_count <= state.constraints().max_outputs()
            {
                self.recurse(state, idx + 1);
            } else {
                state.stats_mut().rejected_io += 1;
            }

            state.body_remove(v);
            if is_live_out {
                self.live_out_count -= 1;
            }
            self.input_count -= newly_inputs.len();
            for p in newly_inputs {
                self.is_input[p.index()] = false;
            }
        }
    }
}

impl Enumerator for BaselineEnumerator<'_> {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn search(&mut self, state: &mut SearchState<'_>) {
        self.recurse(state, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{Cut, CutKey};
    use crate::exhaustive::exhaustive_cuts;
    use ise_graph::{DfgBuilder, Operation};

    fn keys(result: &Enumeration) -> Vec<CutKey<'_>> {
        let mut keys: Vec<_> = result.cuts.iter().map(Cut::key).collect();
        keys.sort();
        keys
    }

    fn figure1() -> EnumContext {
        let mut b = DfgBuilder::new("figure1");
        let a = b.input("A");
        let bb = b.input("B");
        let c = b.input("C");
        let n = b.named_node(Operation::Add, &[a, bb], Some("N"));
        let x = b.named_node(Operation::Mul, &[n, bb], Some("X"));
        let y = b.named_node(Operation::Sub, &[n, c], Some("Y"));
        b.mark_output(x);
        b.mark_output(y);
        EnumContext::new(b.build().unwrap())
    }

    #[test]
    fn matches_exhaustive_without_io_condition() {
        let ctx = figure1();
        for (nin, nout) in [(1, 1), (2, 2), (3, 2), (4, 2)] {
            let constraints = Constraints::new(nin, nout).unwrap();
            let fast = baseline_cuts(&ctx, &constraints);
            let oracle = exhaustive_cuts(&ctx, &constraints, false);
            assert_eq!(keys(&fast), keys(&oracle), "Nin={nin}, Nout={nout}");
        }
    }

    #[test]
    fn matches_exhaustive_with_forbidden_nodes() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let c = b.input("c");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, c]);
        let y = b.node(Operation::Shl, &[x]);
        let z = b.node(Operation::Xor, &[y, c]);
        let _st = b.node(Operation::Store, &[z]);
        let ctx = EnumContext::new(b.build().unwrap());
        let constraints = Constraints::new(2, 2).unwrap();
        let fast = baseline_cuts(&ctx, &constraints);
        assert!(fast.cuts.iter().all(|cut| !cut.contains(ld)));
        let oracle = exhaustive_cuts(&ctx, &constraints, false);
        assert_eq!(keys(&fast), keys(&oracle));
    }

    #[test]
    fn forbidden_nodes_are_never_selected() {
        let mut b = DfgBuilder::new("mem");
        let a = b.input("a");
        let ld = b.node(Operation::Load, &[a]);
        let x = b.node(Operation::Add, &[ld, a]);
        let st = b.node(Operation::Store, &[x]);
        let ctx = EnumContext::new(b.build().unwrap());
        let result = baseline_cuts(&ctx, &Constraints::new(4, 4).unwrap());
        assert!(result
            .cuts
            .iter()
            .all(|c| !c.contains(ld) && !c.contains(st)));
        assert_eq!(result.cuts.len(), 1);
    }

    #[test]
    fn every_reported_cut_is_valid() {
        let ctx = figure1();
        let constraints = Constraints::new(2, 1).unwrap();
        let result = baseline_cuts(&ctx, &constraints);
        for cut in &result.cuts {
            assert!(cut.validate(&ctx, &constraints, false).is_ok());
            assert!(cut.inputs().len() <= 2);
            assert_eq!(cut.outputs().len(), 1);
        }
    }

    #[test]
    fn budget_bounds_the_search() {
        let ctx = figure1();
        let constraints = Constraints::new(4, 2).unwrap();
        let full = baseline_cuts(&ctx, &constraints);
        let bounded = baseline_cuts_bounded(&ctx, &constraints, Some(3));
        assert!(bounded.stats.search_nodes <= 3 + 2);
        assert!(bounded.cuts.len() <= full.cuts.len());
    }

    #[test]
    fn superset_of_polynomial_results() {
        let ctx = figure1();
        let constraints = Constraints::new(3, 2).unwrap();
        let poly = crate::incremental_cuts(&ctx, &constraints, &crate::PruningConfig::all());
        let base = baseline_cuts(&ctx, &constraints);
        let base_keys: std::collections::HashSet<_> = base.cuts.iter().map(Cut::key).collect();
        for cut in &poly.cuts {
            assert!(
                base_keys.contains(&cut.key()),
                "baseline must contain every cut the polynomial algorithm finds"
            );
        }
    }
}
