//! Latency-based merit (estimated speedup) of a cut when turned into a custom
//! instruction.
//!
//! The paper motivates subgraph enumeration with the speedups (up to 6x, §7) achieved by
//! the custom instructions that a selector picks out of the enumerated candidates. This
//! module provides the standard latency model used throughout the ISE literature (and by
//! refs. [4]/[15]): executing the cut in software costs the sum of its operations'
//! software latencies; executing it as a custom instruction costs the cut's critical
//! path measured in hardware delays (rounded up to whole cycles) plus the extra cycles
//! needed to transfer inputs and outputs beyond the register-file ports available in a
//! single instruction.

use ise_graph::{LatencyModel, NodeId};

use crate::context::EnumContext;
use crate::cut::Cut;

/// Estimated cost/benefit of turning one cut into a custom instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Merit {
    /// Cycles the cut costs when executed as ordinary software instructions.
    pub software_cycles: u32,
    /// Cycles the cut costs as a custom instruction (critical path + operand transfer).
    pub hardware_cycles: u32,
    /// Cycles saved per execution (`software_cycles - hardware_cycles`, clamped at 0).
    pub saved_cycles: u32,
}

impl Merit {
    /// The speedup factor of the isolated cut (software over hardware cycles).
    pub fn speedup(&self) -> f64 {
        if self.hardware_cycles == 0 {
            return 1.0;
        }
        f64::from(self.software_cycles) / f64::from(self.hardware_cycles)
    }
}

/// Estimates the merit of `cut` under `model`, assuming `ports_in` register-file read
/// ports and `ports_out` write ports per cycle (extra operands cost one extra cycle per
/// port group).
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// use ise_enum::{enumerate_cuts, estimate_merit, Constraints, EnumContext};
/// use ise_graph::{DfgBuilder, LatencyModel, Operation};
///
/// let mut b = DfgBuilder::new("mac");
/// let a = b.input("a");
/// let x = b.input("x");
/// let acc = b.input("acc");
/// let mul = b.node(Operation::Mul, &[a, x]);
/// let sum = b.node(Operation::Add, &[mul, acc]);
/// b.mark_output(sum);
/// let dfg = b.build()?;
/// let ctx = EnumContext::new(dfg.clone());
/// let cuts = enumerate_cuts(&dfg, &Constraints::new(3, 1)?)?;
/// let best = cuts
///     .cuts
///     .iter()
///     .map(|c| estimate_merit(&ctx, c, &LatencyModel::default(), 2, 1))
///     .max_by_key(|m| m.saved_cycles)
///     .expect("at least one candidate");
/// assert!(best.software_cycles >= best.hardware_cycles);
/// # Ok(())
/// # }
/// ```
pub fn estimate_merit(
    ctx: &EnumContext,
    cut: &Cut,
    model: &LatencyModel,
    ports_in: usize,
    ports_out: usize,
) -> Merit {
    let dfg = ctx.dfg();
    let software_cycles: u32 = cut
        .body()
        .iter()
        .map(|v| model.software_cycles(dfg.op(v)))
        .sum();

    // Critical path through the cut in hardware-delay units.
    let mut delay = vec![0.0f64; ctx.rooted().num_nodes()];
    let mut critical = 0.0f64;
    for &v in ctx.rooted().topological_order() {
        if !cut.contains(v) {
            continue;
        }
        let own = model.hardware_delay(dfg.op(v));
        let arrival = ctx
            .rooted()
            .preds(v)
            .iter()
            .filter(|p| cut.contains(**p))
            .map(|p| delay[p.index()])
            .fold(0.0f64, f64::max);
        delay[v.index()] = arrival + own;
        critical = critical.max(delay[v.index()]);
    }
    let datapath_cycles = critical.ceil() as u32;

    // Operand-transfer overhead: each group of `ports_in` inputs beyond the first group
    // costs an extra cycle, and similarly for outputs.
    let extra_in = extra_transfer_cycles(cut.inputs(), ports_in);
    let extra_out = extra_transfer_cycles(cut.outputs(), ports_out);
    let hardware_cycles = datapath_cycles.max(1) + extra_in + extra_out;

    Merit {
        software_cycles,
        hardware_cycles,
        saved_cycles: software_cycles.saturating_sub(hardware_cycles),
    }
}

fn extra_transfer_cycles(operands: &[NodeId], ports: usize) -> u32 {
    if ports == 0 {
        return operands.len() as u32;
    }
    let groups = operands.len().div_ceil(ports);
    groups.saturating_sub(1) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Constraints;
    use crate::exhaustive::exhaustive_cuts;
    use ise_graph::{DenseNodeSet, DfgBuilder, Operation};

    fn mac_ctx() -> (EnumContext, [NodeId; 5]) {
        let mut b = DfgBuilder::new("mac");
        let a = b.input("a");
        let x = b.input("x");
        let acc = b.input("acc");
        let mul = b.node(Operation::Mul, &[a, x]);
        let sum = b.node(Operation::Add, &[mul, acc]);
        b.mark_output(sum);
        let ctx = EnumContext::new(b.build().unwrap());
        (ctx, [a, x, acc, mul, sum])
    }

    fn cut_of(ctx: &EnumContext, nodes: &[NodeId]) -> Cut {
        Cut::from_body(
            ctx,
            DenseNodeSet::from_nodes(ctx.rooted().num_nodes(), nodes.iter().copied()),
        )
    }

    #[test]
    fn mac_cut_saves_cycles() {
        let (ctx, [_, _, _, mul, sum]) = mac_ctx();
        let cut = cut_of(&ctx, &[mul, sum]);
        let merit = estimate_merit(&ctx, &cut, &LatencyModel::default(), 2, 1);
        // Software: mul (3) + add (1) = 4 cycles; hardware: ceil(1.6 + 0.3) = 2 cycles
        // plus one extra cycle to read the third operand.
        assert_eq!(merit.software_cycles, 4);
        assert_eq!(merit.hardware_cycles, 3);
        assert_eq!(merit.saved_cycles, 1);
        assert!(merit.speedup() > 1.0);
    }

    #[test]
    fn single_alu_node_never_wins() {
        let (ctx, [_, _, _, _, sum]) = mac_ctx();
        let cut = cut_of(&ctx, &[sum]);
        let merit = estimate_merit(&ctx, &cut, &LatencyModel::default(), 2, 1);
        assert_eq!(merit.software_cycles, 1);
        assert_eq!(merit.hardware_cycles, 1);
        assert_eq!(merit.saved_cycles, 0);
        assert!((merit.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn wide_cuts_pay_transfer_overhead() {
        // Eight independent adds merged pairwise: many inputs, few levels.
        let mut b = DfgBuilder::new("wide");
        let inputs: Vec<NodeId> = (0..8).map(|i| b.input(format!("i{i}"))).collect();
        let l1: Vec<NodeId> = inputs
            .chunks(2)
            .map(|p| b.node(Operation::Add, p))
            .collect();
        let l2: Vec<NodeId> = l1.chunks(2).map(|p| b.node(Operation::Xor, p)).collect();
        let root = b.node(Operation::Or, &l2);
        b.mark_output(root);
        let ctx = EnumContext::new(b.build().unwrap());
        let everything: Vec<NodeId> = l1.iter().chain(&l2).chain([&root]).copied().collect();
        let cut = cut_of(&ctx, &everything);
        let merit2 = estimate_merit(&ctx, &cut, &LatencyModel::default(), 2, 1);
        let merit8 = estimate_merit(&ctx, &cut, &LatencyModel::default(), 8, 1);
        assert!(
            merit8.hardware_cycles < merit2.hardware_cycles,
            "more ports means fewer transfer cycles"
        );
        assert!(merit8.saved_cycles > 0);
    }

    #[test]
    fn merit_is_defined_for_every_enumerated_cut() {
        let (ctx, _) = mac_ctx();
        let all = exhaustive_cuts(&ctx, &Constraints::new(4, 2).unwrap(), true);
        for cut in &all.cuts {
            let merit = estimate_merit(&ctx, cut, &LatencyModel::default(), 2, 1);
            assert!(merit.hardware_cycles >= 1);
            assert_eq!(
                merit.saved_cycles,
                merit.software_cycles.saturating_sub(merit.hardware_cycles)
            );
        }
    }

    #[test]
    fn zero_ports_degenerate_case() {
        let (ctx, [_, _, _, mul, sum]) = mac_ctx();
        let cut = cut_of(&ctx, &[mul, sum]);
        let merit = estimate_merit(&ctx, &cut, &LatencyModel::default(), 0, 0);
        assert!(
            merit.hardware_cycles >= 4,
            "every operand transferred separately"
        );
    }
}
