//! Search statistics reported by the enumeration algorithms.

use std::fmt;
use std::ops::AddAssign;

/// Counters describing one enumeration run.
///
/// The counters are what the evaluation section of the paper reasons about informally
/// ("at least 70 % of the time is spent in [Lengauer–Tarjan]", effectiveness of the
/// pruning techniques): how many candidate (input, output) combinations were examined,
/// how many dominator-tree computations were needed, how many candidates each pruning
/// rejected, and how many distinct valid cuts were found.
///
/// # Example
///
/// ```
/// use ise_enum::EnumStats;
///
/// let mut total = EnumStats::default();
/// let mut partial = EnumStats::default();
/// partial.valid_cuts = 3;
/// total += partial;
/// assert_eq!(total.valid_cuts, 3);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EnumStats {
    /// Distinct valid cuts reported.
    pub valid_cuts: usize,
    /// Candidate cuts that were fully materialized and checked.
    pub candidates_checked: usize,
    /// Candidate cuts rejected because they contained a forbidden vertex.
    pub rejected_forbidden: usize,
    /// Candidate cuts rejected because they had too many inputs or outputs.
    pub rejected_io: usize,
    /// Candidate cuts skipped because an identical body had already been examined
    /// (packed-key de-duplication; for the engine's dedup-first algorithms this counts
    /// repeats of *any* examined body, valid or not).
    pub rejected_duplicate: usize,
    /// Candidate cuts rejected by the connectedness requirement.
    pub rejected_disconnected: usize,
    /// Candidate cuts rejected by the depth limit.
    pub rejected_depth: usize,
    /// Dominator-tree computations performed (Lengauer–Tarjan invocations).
    pub dominator_runs: usize,
    /// Output choices skipped by the output–output pruning.
    pub pruned_output_output: usize,
    /// Input candidates skipped by the output–input pruning.
    pub pruned_output_input: usize,
    /// Seed candidates skipped by the input–input pruning.
    pub pruned_input_input: usize,
    /// Seed candidates skipped by the dominator–input pruning.
    pub pruned_dominator_input: usize,
    /// Output choices skipped by the connectedness pruning.
    pub pruned_connectedness: usize,
    /// Candidate bodies abandoned early because a forbidden vertex entered them.
    pub pruned_build_s: usize,
    /// Recursion nodes visited (an upper bound on the explored search-space size).
    pub search_nodes: usize,
}

impl EnumStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a rejected candidate under the counter matching its rejection reason.
    pub fn record_rejection(&mut self, rejection: crate::cut::CutRejection) {
        use crate::cut::CutRejection::*;
        match rejection {
            Empty | NotConvex | IoCondition(_) => {
                // Candidates that are structurally not cuts (or violate the technical
                // condition) are not counted as near-misses of a specific resource.
            }
            Forbidden(_) => self.rejected_forbidden += 1,
            TooManyInputs(_) | TooManyOutputs(_) => self.rejected_io += 1,
            Disconnected => self.rejected_disconnected += 1,
            TooDeep(_) => self.rejected_depth += 1,
        }
    }

    /// Total number of candidates rejected for any reason.
    pub fn rejected_total(&self) -> usize {
        self.rejected_forbidden
            + self.rejected_io
            + self.rejected_duplicate
            + self.rejected_disconnected
            + self.rejected_depth
    }

    /// Total number of search-space elements skipped by prunings.
    pub fn pruned_total(&self) -> usize {
        self.pruned_output_output
            + self.pruned_output_input
            + self.pruned_input_input
            + self.pruned_dominator_input
            + self.pruned_connectedness
            + self.pruned_build_s
    }
}

/// Load-balance summary of a task decomposition: how evenly the per-task
/// `search_nodes` counts spread over the tasks of one parallel run.
///
/// The headline number is [`skew_ratio`](Self::skew_ratio) = max / mean. A perfectly
/// balanced fan-out scores 1.0; a single-split fan-out whose heaviest first-output
/// subtree dwarfs the rest scores close to the task count (one task owns nearly
/// everything) — the tail-serialization pathology recursive task splitting removes.
/// The E7 scaling bench records this per row.
///
/// # Example
///
/// ```
/// use ise_enum::TaskLoadSummary;
///
/// let balanced = TaskLoadSummary::from_task_nodes(&[100, 100, 100, 100]);
/// assert_eq!(balanced.skew_ratio(), 1.0);
/// let skewed = TaskLoadSummary::from_task_nodes(&[970, 10, 10, 10]);
/// assert!(skewed.skew_ratio() > 3.8);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TaskLoadSummary {
    /// Number of tasks summarized.
    pub tasks: usize,
    /// Search nodes of the heaviest task.
    pub max_nodes: usize,
    /// Search nodes summed over all tasks.
    pub total_nodes: usize,
}

impl TaskLoadSummary {
    /// Summarizes the per-task `search_nodes` counts of one decomposition (the
    /// `task_nodes` of a traced parallel run).
    pub fn from_task_nodes(task_nodes: &[usize]) -> Self {
        TaskLoadSummary {
            tasks: task_nodes.len(),
            max_nodes: task_nodes.iter().copied().max().unwrap_or(0),
            total_nodes: task_nodes.iter().sum(),
        }
    }

    /// Mean search nodes per task (0.0 for an empty decomposition).
    pub fn mean_nodes(&self) -> f64 {
        if self.tasks == 0 {
            0.0
        } else {
            self.total_nodes as f64 / self.tasks as f64
        }
    }

    /// Load skew: heaviest task over mean task (1.0 = perfectly balanced; the
    /// wall-clock floor of the decomposition is `max_nodes`, so lower is better).
    /// Returns 0.0 for an empty or all-zero decomposition.
    pub fn skew_ratio(&self) -> f64 {
        let mean = self.mean_nodes();
        if mean == 0.0 {
            0.0
        } else {
            self.max_nodes as f64 / mean
        }
    }
}

impl AddAssign for EnumStats {
    fn add_assign(&mut self, rhs: EnumStats) {
        self.valid_cuts += rhs.valid_cuts;
        self.candidates_checked += rhs.candidates_checked;
        self.rejected_forbidden += rhs.rejected_forbidden;
        self.rejected_io += rhs.rejected_io;
        self.rejected_duplicate += rhs.rejected_duplicate;
        self.rejected_disconnected += rhs.rejected_disconnected;
        self.rejected_depth += rhs.rejected_depth;
        self.dominator_runs += rhs.dominator_runs;
        self.pruned_output_output += rhs.pruned_output_output;
        self.pruned_output_input += rhs.pruned_output_input;
        self.pruned_input_input += rhs.pruned_input_input;
        self.pruned_dominator_input += rhs.pruned_dominator_input;
        self.pruned_connectedness += rhs.pruned_connectedness;
        self.pruned_build_s += rhs.pruned_build_s;
        self.search_nodes += rhs.search_nodes;
    }
}

impl fmt::Display for EnumStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} valid cuts ({} candidates checked, {} rejected, {} pruned, {} dominator runs, {} search nodes)",
            self.valid_cuts,
            self.candidates_checked,
            self.rejected_total(),
            self.pruned_total(),
            self.dominator_runs,
            self.search_nodes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_the_right_fields() {
        let mut s = EnumStats::new();
        s.rejected_forbidden = 1;
        s.rejected_io = 2;
        s.rejected_duplicate = 3;
        s.rejected_disconnected = 4;
        s.rejected_depth = 5;
        assert_eq!(s.rejected_total(), 15);
        s.pruned_output_output = 1;
        s.pruned_output_input = 2;
        s.pruned_input_input = 3;
        s.pruned_dominator_input = 4;
        s.pruned_connectedness = 5;
        s.pruned_build_s = 6;
        assert_eq!(s.pruned_total(), 21);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = EnumStats::new();
        a.valid_cuts = 2;
        a.dominator_runs = 10;
        let mut b = EnumStats::new();
        b.valid_cuts = 3;
        b.dominator_runs = 5;
        b.search_nodes = 7;
        a += b;
        assert_eq!(a.valid_cuts, 5);
        assert_eq!(a.dominator_runs, 15);
        assert_eq!(a.search_nodes, 7);
    }

    #[test]
    fn display_is_informative() {
        let mut s = EnumStats::new();
        s.valid_cuts = 4;
        s.candidates_checked = 9;
        let text = s.to_string();
        assert!(text.contains("4 valid cuts"));
        assert!(text.contains("9 candidates"));
    }
}
