//! Per-phase self-time attribution for the search engine.
//!
//! The engine's recursion interleaves four instrumented activities — dominator
//! computations, `PICK-OUTPUT`, `PICK-INPUTS`, and candidate de-duplication /
//! validation — inside one call tree. [`PhaseClock`] attributes *self time* to
//! whichever phase is current: entering a phase charges the elapsed interval
//! to the previous one, so nested phases never double-count.
//!
//! Disabled-path cost is the whole design: when no recorder is attached the
//! clock stays disabled and every [`PhaseClock::enter`] / [`PhaseClock::restore`]
//! reduces to a single predictable branch. Accumulated nanoseconds live in a
//! plain array and are flushed to the [`ise_obs::Recorder`] once per run (or
//! per parallel task), never per event.

use std::time::Instant;

/// Phase indices used by the engine and the incremental enumerator.
pub(crate) mod phase {
    /// Generic search driving (the residue not covered by a specific phase).
    pub const SEARCH: u8 = 0;
    /// Dominator computations: Lengauer–Tarjan completions and set-dominance DFS.
    pub const DOMINATORS: u8 = 1;
    /// `PICK-OUTPUT` of Figure 3 (admissibility and output prunings).
    pub const PICK_OUTPUT: u8 = 2;
    /// `PICK-INPUTS` of Figure 3 (completion windows and seed growth).
    pub const PICK_INPUTS: u8 = 3;
    /// `CHECK-CUT`: packed-key de-duplication and candidate validation.
    pub const DEDUP: u8 = 4;
    /// Number of phases.
    pub const COUNT: usize = 5;
    /// Prometheus label values, indexed by phase.
    pub const NAMES: [&str; COUNT] = [
        "search",
        "dominators",
        "pick_output",
        "pick_inputs",
        "dedup",
    ];
}

/// A self-time stopwatch over the engine phases. Created disabled (the common
/// case); [`PhaseClock::enable`] arms it when a recorder is attached.
pub(crate) struct PhaseClock {
    enabled: bool,
    current: u8,
    last: Instant,
    /// Accumulated self-time per phase, nanoseconds.
    ns: [u64; phase::COUNT],
    /// Number of `enter` transitions into each phase.
    entries: [u64; phase::COUNT],
}

impl PhaseClock {
    /// A disarmed clock whose transitions are single-branch no-ops.
    pub fn disabled() -> Self {
        PhaseClock {
            enabled: false,
            current: phase::SEARCH,
            last: Instant::now(),
            ns: [0; phase::COUNT],
            entries: [0; phase::COUNT],
        }
    }

    /// Arms the clock and restarts the epoch at the call instant.
    pub fn enable(&mut self) {
        self.enabled = true;
        self.last = Instant::now();
    }

    /// Switches to `phase`, charging the elapsed interval to the previous
    /// phase. Returns the previous phase for [`PhaseClock::restore`].
    #[inline]
    pub fn enter(&mut self, phase: u8) -> u8 {
        if !self.enabled {
            return self.current;
        }
        let prev = self.current;
        self.tick(phase);
        self.entries[phase as usize] += 1;
        prev
    }

    /// Returns to a phase previously yielded by [`PhaseClock::enter`],
    /// charging the elapsed interval to the phase being left.
    #[inline]
    pub fn restore(&mut self, phase: u8) {
        if !self.enabled {
            return;
        }
        self.tick(phase);
    }

    fn tick(&mut self, phase: u8) {
        let now = Instant::now();
        self.ns[self.current as usize] += now.duration_since(self.last).as_nanos() as u64;
        self.last = now;
        self.current = phase;
    }

    /// Charges the trailing interval to the current phase and returns the
    /// per-phase `(self_ns, entries)` totals. Call once, at run end.
    pub fn finalize(&mut self) -> ([u64; phase::COUNT], [u64; phase::COUNT]) {
        if self.enabled {
            let current = self.current;
            self.tick(current);
        }
        (self.ns, self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_clock_accumulates_nothing() {
        let mut clock = PhaseClock::disabled();
        let prev = clock.enter(phase::DEDUP);
        assert_eq!(prev, phase::SEARCH);
        clock.restore(prev);
        let (ns, entries) = clock.finalize();
        assert_eq!(ns, [0; phase::COUNT]);
        assert_eq!(entries, [0; phase::COUNT]);
    }

    #[test]
    fn nested_phases_attribute_self_time_once() {
        let mut clock = PhaseClock::disabled();
        clock.enable();
        let outer = clock.enter(phase::PICK_OUTPUT);
        let inner = clock.enter(phase::DOMINATORS);
        std::thread::sleep(std::time::Duration::from_millis(2));
        clock.restore(inner);
        clock.restore(outer);
        let (ns, entries) = clock.finalize();
        assert_eq!(entries[phase::PICK_OUTPUT as usize], 1);
        assert_eq!(entries[phase::DOMINATORS as usize], 1);
        assert!(ns[phase::DOMINATORS as usize] >= 1_000_000);
        // The sleep happened inside DOMINATORS; PICK_OUTPUT keeps only its
        // (tiny) self time.
        assert!(ns[phase::PICK_OUTPUT as usize] < ns[phase::DOMINATORS as usize]);
    }
}
